//! # gLLM — global balanced pipeline parallelism with Token Throttling
//!
//! A from-scratch Rust reproduction of *"gLLM: Global Balanced Pipeline
//! Parallelism Systems for Distributed LLMs Serving with Token Throttling"*
//! (SC '25). This facade crate re-exports the whole workspace:
//!
//! * [`model`] — architecture descriptors, GPU specs and analytic cost models,
//! * [`kvcache`] — PagedAttention-style block allocator and page tables,
//! * [`workload`] — ShareGPT/Azure-like synthetic workloads and Poisson arrivals,
//! * [`metrics`] — TTFT/TPOT/E2EL/throughput/SLO recording,
//! * [`core`] — the schedulers: Token Throttling and all baselines,
//! * [`sim`] — the discrete-event cluster simulator (regenerates the paper's figures),
//! * [`transformer`] — an executable CPU transformer for functional validation,
//! * [`runtime`] — the threaded asynchronous serving runtime (§3.3),
//! * [`frontend`] — RESTful OpenAI-compatible API, tokenizer and the
//!   `gllm` CLI (§3.4).
//!
//! See `examples/quickstart.rs` for a five-minute tour, and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

pub use gllm_core as core;
pub use gllm_frontend as frontend;
pub use gllm_kvcache as kvcache;
pub use gllm_metrics as metrics;
pub use gllm_model as model;
pub use gllm_runtime as runtime;
pub use gllm_sim as sim;
pub use gllm_transformer as transformer;
pub use gllm_workload as workload;
