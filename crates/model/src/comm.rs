//! α–β communication model.
//!
//! The paper's two interconnect regimes are reproduced with their measured
//! numbers (§4.1): PCIe point-to-point at 20.79 GB/s intra-node, and a
//! simulated cross-node network (NCCL with P2P and SHM disabled) at
//! 73.28 Gbps ≈ 9.16 GB/s. Transfer time of a message follows the standard
//! α–β model: `latency + bytes / bandwidth`.

use serde::{Deserialize, Serialize};

/// One interconnect link: fixed per-message latency plus stream bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Link name (e.g. `"PCIe"`).
    pub name: String,
    /// Per-message latency in seconds (software + wire setup).
    pub latency_s: f64,
    /// Sustained point-to-point bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Fraction of the p2p bandwidth a ring collective achieves (NCCL's
    /// algorithm bandwidth through a PCIe root complex or a socket stack is
    /// well below the p2p number). Applies to all-reduce only.
    pub collective_efficiency: f64,
}

impl LinkSpec {
    /// Time to move `bytes` point-to-point across this link.
    #[inline]
    pub fn p2p_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Time of a ring all-reduce of `bytes` over `n` ranks on this link.
    ///
    /// Standard ring cost: `2·(n−1)/n · bytes / bw` plus `2·(n−1)` latency
    /// hops. With `n == 1` the operation is free.
    pub fn allreduce_time(&self, bytes: u64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let n_f = n as f64;
        let steps = 2.0 * (n_f - 1.0);
        steps * self.latency_s
            + (steps / n_f) * bytes as f64
                / (self.bandwidth_bytes_per_s * self.collective_efficiency)
    }

    /// Time to broadcast `bytes` from one rank to `n − 1` peers
    /// (pipelined tree; approximated as a single serialised send per peer on
    /// PCIe-class links, which is what the paper's metadata broadcast does).
    pub fn broadcast_time(&self, bytes: u64, n: usize) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        self.latency_s + (n - 1) as f64 * bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Intra-node PCIe, at the paper's measured 20.79 GB/s. The
    /// per-message latency reflects NCCL collectives over PCIe *without*
    /// NVLink: ~25 µs of launch + DMA setup per step.
    pub fn pcie() -> Self {
        Self {
            name: "PCIe".into(),
            latency_s: 25e-6,
            bandwidth_bytes_per_s: 20.79e9,
            collective_efficiency: 0.6,
        }
    }

    /// The paper's simulated cross-node network: NCCL with
    /// `NCCL_P2P_DISABLE=1` and `NCCL_SHM_DISABLE=1`, measured at
    /// 73.28 Gbps. Forcing all traffic through the network stack makes
    /// each collective step pay full socket-path latency (~250 µs), which
    /// is what buries per-layer all-reduce parallelism cross-node.
    pub fn sim_network() -> Self {
        Self {
            name: "SimNet-73Gbps".into(),
            latency_s: 250e-6,
            bandwidth_bytes_per_s: 73.28e9 / 8.0,
            collective_efficiency: 0.7,
        }
    }

    /// A loopback link for single-GPU deployments: zero cost.
    pub fn loopback() -> Self {
        Self {
            name: "loopback".into(),
            latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
            collective_efficiency: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_time_is_affine_in_bytes() {
        let l = LinkSpec::pcie();
        let t1 = l.p2p_time(1_000_000);
        let t2 = l.p2p_time(2_000_000);
        assert!((t2 - t1 - 1_000_000.0 / l.bandwidth_bytes_per_s).abs() < 1e-12);
    }

    #[test]
    fn network_is_slower_than_pcie() {
        let bytes = 10 * 1024 * 1024;
        assert!(LinkSpec::sim_network().p2p_time(bytes) > LinkSpec::pcie().p2p_time(bytes));
    }

    #[test]
    fn allreduce_is_free_for_single_rank() {
        assert_eq!(LinkSpec::pcie().allreduce_time(1 << 20, 1), 0.0);
    }

    #[test]
    fn allreduce_cost_grows_with_ranks() {
        let l = LinkSpec::pcie();
        assert!(l.allreduce_time(1 << 24, 4) > l.allreduce_time(1 << 24, 2));
    }

    #[test]
    fn allreduce_bandwidth_term_approaches_2x_bytes() {
        // For large n the ring moves ~2× the payload through each link.
        let l = LinkSpec {
            name: "t".into(),
            latency_s: 0.0,
            bandwidth_bytes_per_s: 1e9,
            collective_efficiency: 1.0,
        };
        let t = l.allreduce_time(1_000_000_000, 1000);
        assert!((t - 2.0 * (999.0 / 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn loopback_is_free() {
        assert_eq!(LinkSpec::loopback().p2p_time(u64::MAX), 0.0);
    }

    #[test]
    fn broadcast_scales_with_peers() {
        let l = LinkSpec::pcie();
        assert!(l.broadcast_time(4096, 4) > l.broadcast_time(4096, 2));
        assert_eq!(l.broadcast_time(4096, 1), 0.0);
    }
}
