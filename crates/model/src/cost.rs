//! Roofline batch-latency model.
//!
//! This is the substitute for real CUDA execution: given the composition of
//! a micro-batch (prefill chunks + decode tokens, each with its KV context),
//! it predicts the forward-pass time of one pipeline stage as
//!
//! ```text
//! T = max(FLOPs / effective_flops, bytes / effective_bandwidth)
//!     + layers × layer_overhead + base_overhead
//! ```
//!
//! Prefill chunks are compute-bound (dense GEMMs over many tokens), decode
//! batches are bandwidth-bound (weights and KV cache are re-read for a
//! handful of tokens) — exactly the asymmetry the paper's Token Throttling
//! exploits. The model includes the quadratic attention term by default
//! because the *hardware* cost is quadratic in context; the paper notes
//! (§6) that gLLM's scheduler nevertheless *assumes* linearity in token
//! count, and the `include_attention_term` switch lets the ablation benches
//! quantify that gap.

use serde::{Deserialize, Serialize};

use crate::comm::LinkSpec;
use crate::config::ModelConfig;
use crate::gpu::GpuSpec;

/// The slice of one sequence processed by one forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceChunk {
    /// New tokens processed in this pass (1 for a decode step, the chunk
    /// size for a chunked prefill).
    pub tokens: usize,
    /// Tokens already resident in the KV cache before this pass.
    pub context_before: usize,
}

impl SequenceChunk {
    /// A single decode step over `context_before` cached tokens.
    pub fn decode(context_before: usize) -> Self {
        Self { tokens: 1, context_before }
    }

    /// A prefill chunk of `tokens` appended after `context_before` cached
    /// tokens.
    pub fn prefill(tokens: usize, context_before: usize) -> Self {
        Self { tokens, context_before }
    }

    /// KV context length after this pass completes.
    #[inline]
    pub fn context_after(&self) -> usize {
        self.context_before + self.tokens
    }
}

/// Composition of one micro-batch: which prefill chunks and decode steps are
/// fused into a single forward pass (Sarathi-style hybrid batching).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchWorkload {
    /// Chunked-prefill slices in this batch.
    pub prefill: Vec<SequenceChunk>,
    /// Decode steps in this batch (each contributes exactly one token).
    pub decode: Vec<SequenceChunk>,
}

impl BatchWorkload {
    /// An empty batch (zero cost).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Total new tokens processed by this batch.
    pub fn total_tokens(&self) -> usize {
        self.prefill_tokens() + self.decode_tokens()
    }

    /// New prefill tokens in this batch.
    pub fn prefill_tokens(&self) -> usize {
        self.prefill.iter().map(|c| c.tokens).sum()
    }

    /// Decode tokens in this batch (= number of decode sequences).
    pub fn decode_tokens(&self) -> usize {
        self.decode.len()
    }

    /// Whether the batch contains no work at all.
    pub fn is_empty(&self) -> bool {
        self.prefill.is_empty() && self.decode.is_empty()
    }

    /// Number of tokens that require an LM-head projection and sampling:
    /// every decode token, plus each prefill chunk that completes its prompt
    /// cannot be distinguished here, so callers pass it explicitly; this
    /// helper counts the upper bound (all sequences).
    pub fn sampled_tokens_upper_bound(&self) -> usize {
        self.decode.len() + self.prefill.len()
    }
}

/// Analytic forward-pass latency model for one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The transformer being served.
    pub model: ModelConfig,
    /// The GPU executing a stage.
    pub gpu: GpuSpec,
    /// Fixed kernel-launch/dispatch overhead per decoder layer, seconds.
    pub layer_overhead_s: f64,
    /// Fixed per-forward overhead per stage (scheduling handoff, final
    /// sync), seconds.
    pub base_overhead_s: f64,
    /// Model the quadratic attention-score cost (true = physical hardware
    /// behaviour; false = the linear-in-tokens idealisation the paper's
    /// scheduler assumes, used by ablation benches).
    pub include_attention_term: bool,
    /// Activation traffic per token per layer, expressed as a multiple of
    /// `hidden_size × dtype_bytes` (reads + writes around GEMMs/norms).
    pub activation_traffic_factor: f64,
    /// Token count scale of the GEMM-efficiency saturation curve: small
    /// batches under-utilise the GPU (partially-empty tiles), so compute
    /// throughput scales as `floor + (1 − floor) · t / (t + saturation)`.
    /// This is what makes conservative token budgets (`#MaxP = 512`) cost
    /// real prefill rate (§4.6.2).
    pub compute_saturation_tokens: f64,
    /// Mixture-of-experts execution-time variance (the paper's §6:
    /// "variability in expert activation introduces additional imbalance").
    /// 0 models a dense model; `v > 0` multiplies each forward pass by a
    /// deterministic pseudo-random factor in `[1, 1 + v]` derived from the
    /// batch composition — identical batches route identically, different
    /// batches diverge, exactly the imbalance expert routing creates.
    pub expert_imbalance: f64,
}

impl CostModel {
    /// A cost model with default micro-architecture constants.
    pub fn new(model: ModelConfig, gpu: GpuSpec) -> Self {
        Self {
            model,
            gpu,
            layer_overhead_s: 35e-6,
            base_overhead_s: 150e-6,
            include_attention_term: true,
            activation_traffic_factor: 12.0,
            compute_saturation_tokens: 256.0,
            expert_imbalance: 0.0,
        }
    }

    /// Model MoE routing variance of magnitude `v` (each forward pass costs
    /// a deterministic batch-dependent factor in `[1, 1 + v]` extra).
    pub fn with_expert_imbalance(mut self, v: f64) -> Self {
        assert!(v >= 0.0);
        self.expert_imbalance = v;
        self
    }

    /// Deterministic per-batch imbalance factor in `[1, 1 + expert_imbalance]`.
    fn imbalance_factor(&self, layers: usize, batch: &BatchWorkload) -> f64 {
        if self.expert_imbalance == 0.0 {
            return 1.0;
        }
        // Splitmix64 over the batch's composition.
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (layers as u64);
        for c in batch.prefill.iter().chain(batch.decode.iter()) {
            h ^= (c.tokens as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ (c.context_before as u64).rotate_left(23);
            h = (h ^ (h >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.expert_imbalance * u
    }

    /// Disable the quadratic attention term (linear-in-tokens idealisation).
    pub fn without_attention_term(mut self) -> Self {
        self.include_attention_term = false;
        self
    }

    /// Total FLOPs for `layers` decoder layers over this batch, plus an
    /// LM-head projection for `lm_head_tokens` tokens (pass 0 for
    /// non-terminal pipeline stages).
    pub fn flops(&self, layers: usize, batch: &BatchWorkload, lm_head_tokens: usize) -> f64 {
        let m = &self.model;
        let tokens = batch.total_tokens() as f64;
        let linear = tokens * m.linear_flops_per_token_per_layer() as f64 * layers as f64;
        let attn = if self.include_attention_term {
            let per_layer: f64 = batch
                .prefill
                .iter()
                .chain(batch.decode.iter())
                .map(|c| Self::chunk_attn_units(c) * 4.0 * m.q_dim() as f64)
                .sum();
            per_layer * layers as f64
        } else {
            0.0
        };
        let head = lm_head_tokens as f64 * m.lm_head_flops_per_token() as f64;
        linear + attn + head
    }

    /// Sum over tokens of the context length each attends to:
    /// `Σ_{j=1..tokens} (context_before + j)`.
    fn chunk_attn_units(c: &SequenceChunk) -> f64 {
        let t = c.tokens as f64;
        t * c.context_before as f64 + t * (t + 1.0) / 2.0
    }

    /// Bytes moved through device memory for `layers` decoder layers over
    /// this batch: weights (read once per forward), KV-cache reads/writes
    /// and activation traffic.
    pub fn mem_bytes(&self, layers: usize, batch: &BatchWorkload) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let m = &self.model;
        let weights = m.layer_weight_bytes(layers) as f64;
        let kv_per_tok_layer = m.kv_bytes_per_token_per_layer() as f64;
        // Flash-attention-style IO: each chunk streams its full KV once
        // (context_after reads) and writes its new tokens.
        let kv: f64 = batch
            .prefill
            .iter()
            .chain(batch.decode.iter())
            .map(|c| (c.context_after() + c.tokens) as f64 * kv_per_tok_layer)
            .sum::<f64>()
            * layers as f64;
        let act = batch.total_tokens() as f64
            * m.hidden_size as f64
            * m.dtype_bytes as f64
            * self.activation_traffic_factor
            * layers as f64;
        weights + kv + act
    }

    /// Forward-pass time of one pipeline stage holding `layers` layers.
    ///
    /// `lm_head_tokens` is the number of tokens sampled at this stage (only
    /// nonzero for the last stage). An empty batch costs nothing.
    pub fn stage_forward_time(
        &self,
        layers: usize,
        batch: &BatchWorkload,
        lm_head_tokens: usize,
    ) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let compute = self.flops(layers, batch, lm_head_tokens)
            / (self.gpu.effective_flops() * self.batch_efficiency(batch.total_tokens()));
        let memory = self.mem_bytes(layers, batch) / self.gpu.effective_bandwidth();
        compute.max(memory) * self.imbalance_factor(layers, batch)
            + layers as f64 * self.layer_overhead_s
            + self.base_overhead_s
    }

    /// Fraction of asymptotic GEMM efficiency a batch of `tokens` achieves.
    ///
    /// The curve is floor-bounded: small batches lose some tile occupancy
    /// (the floor, ~40 % loss at the limit) but never fall off a cliff —
    /// their latency is dominated by the memory term anyway, which the
    /// roofline `max` already captures.
    #[inline]
    fn batch_efficiency(&self, tokens: usize) -> f64 {
        const FLOOR: f64 = 0.6;
        let t = tokens as f64;
        FLOOR + (1.0 - FLOOR) * t / (t + self.compute_saturation_tokens)
    }

    /// Forward-pass time of the whole model under tensor parallelism of
    /// degree `tp` over `link`, including the two per-layer all-reduces of
    /// the activation (`tokens × hidden × dtype` bytes each).
    ///
    /// Compute and weight traffic are divided by `tp`; KV traffic is also
    /// sharded across ranks. The per-layer fixed overhead is *not* divided
    /// (every rank launches every kernel) — this is why TP shines on fast
    /// links and collapses on the paper's 73 Gbps simulated network.
    pub fn tp_forward_time(&self, batch: &BatchWorkload, tp: usize, link: &LinkSpec) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        assert!(tp >= 1, "tensor parallel degree must be >= 1");
        let layers = self.model.num_layers;
        let sampled = batch.sampled_tokens_upper_bound();
        let compute = self.flops(layers, batch, sampled)
            / (self.gpu.effective_flops() * self.batch_efficiency(batch.total_tokens()))
            / tp as f64;
        let memory = self.mem_bytes(layers, batch) / self.gpu.effective_bandwidth() / tp as f64;
        let act_bytes =
            (batch.total_tokens() * self.model.hidden_size * self.model.dtype_bytes) as u64;
        let comm = 2.0 * layers as f64 * link.allreduce_time(act_bytes, tp);
        compute.max(memory)
            + comm
            + layers as f64 * self.layer_overhead_s
            + self.base_overhead_s
    }

    /// Bytes of the activation tensor handed between adjacent pipeline
    /// stages for this batch.
    pub fn activation_bytes(&self, batch: &BatchWorkload) -> u64 {
        (batch.total_tokens() * self.model.hidden_size * self.model.dtype_bytes) as u64
    }
}

/// Small deterministic memo of [`CostModel::stage_forward_time`] results
/// for **one fixed `(cost model, batch)` pair**.
///
/// A micro-batch's composition is frozen when it is scheduled, yet the
/// engine re-prices it once per pipeline stage. Under an even layer
/// partition most stages share the same `(layers, lm_head_tokens)` key, so
/// a depth-`D` traversal collapses from `D` full roofline evaluations
/// (each `O(chunks)`) to the number of *distinct* keys — typically 2 (the
/// interior stages plus the LM-head stage).
///
/// Determinism/bit-identity: a hit returns the exact `f64` produced by the
/// first (and only) evaluation of `stage_forward_time` for that key, so a
/// memoized run is bit-identical to an unmemoized one by construction.
/// The cache is a linear-scanned vec: entry counts are tiny (≤ pipeline
/// depth) and insertion order is deterministic.
///
/// Invariant: a cache must never be shared across batches or cost models —
/// the key deliberately omits both. The engine stores one per in-flight
/// micro-batch.
#[derive(Debug, Clone, Default)]
pub struct StageTimeCache {
    entries: Vec<((usize, usize), f64)>,
}

impl StageTimeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`CostModel::stage_forward_time`] memoized on
    /// `(layers, lm_head_tokens)`.
    pub fn stage_forward_time(
        &mut self,
        cost: &CostModel,
        layers: usize,
        batch: &BatchWorkload,
        lm_head_tokens: usize,
    ) -> f64 {
        let key = (layers, lm_head_tokens);
        if let Some(&(_, t)) = self.entries.iter().find(|&&(k, _)| k == key) {
            return t;
        }
        let t = cost.stage_forward_time(layers, batch, lm_head_tokens);
        self.entries.push((key, t));
        t
    }

    /// Number of distinct keys evaluated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_32b_on_l20() -> CostModel {
        CostModel::new(ModelConfig::qwen2_5_32b(), GpuSpec::l20_48g())
    }

    fn prefill_batch(tokens: usize) -> BatchWorkload {
        BatchWorkload {
            prefill: vec![SequenceChunk::prefill(tokens, 0)],
            decode: vec![],
        }
    }

    fn decode_batch(seqs: usize, ctx: usize) -> BatchWorkload {
        BatchWorkload {
            prefill: vec![],
            decode: (0..seqs).map(|_| SequenceChunk::decode(ctx)).collect(),
        }
    }

    #[test]
    fn empty_batch_is_free() {
        let cm = model_32b_on_l20();
        assert_eq!(cm.stage_forward_time(16, &BatchWorkload::empty(), 0), 0.0);
    }

    #[test]
    fn forward_time_is_in_papers_range() {
        // The paper reports 20–800 ms per forward pass for its testbeds.
        let cm = model_32b_on_l20();
        let t = cm.stage_forward_time(16, &prefill_batch(2048), 1);
        assert!((0.02..0.8).contains(&t), "2048-token chunk took {t} s");
        let t = cm.stage_forward_time(16, &decode_batch(64, 512), 64);
        assert!((0.005..0.8).contains(&t), "decode batch took {t} s");
    }

    #[test]
    fn prefill_is_compute_bound_decode_is_memory_bound() {
        let cm = model_32b_on_l20();
        let p = prefill_batch(2048);
        assert!(
            cm.flops(16, &p, 0) / cm.gpu.effective_flops()
                > cm.mem_bytes(16, &p) / cm.gpu.effective_bandwidth()
        );
        let d = decode_batch(16, 512);
        assert!(
            cm.flops(16, &d, 0) / cm.gpu.effective_flops()
                < cm.mem_bytes(16, &d) / cm.gpu.effective_bandwidth()
        );
    }

    #[test]
    fn decode_time_is_flat_in_batch_size_until_roofline() {
        // Doubling a small decode batch should barely move the latency
        // (weights dominate the traffic) — the batching win the paper
        // describes in §2.2.
        let cm = model_32b_on_l20();
        let t1 = cm.stage_forward_time(16, &decode_batch(8, 256), 8);
        let t2 = cm.stage_forward_time(16, &decode_batch(16, 256), 16);
        assert!(t2 < t1 * 1.25, "t1={t1} t2={t2}");
    }

    #[test]
    fn prefill_time_scales_with_tokens() {
        let cm = model_32b_on_l20();
        let t1 = cm.stage_forward_time(16, &prefill_batch(1024), 0);
        let t2 = cm.stage_forward_time(16, &prefill_batch(2048), 0);
        assert!(t2 > t1 * 1.6, "t1={t1} t2={t2}");
    }

    #[test]
    fn attention_term_increases_cost_for_long_contexts() {
        let with = model_32b_on_l20();
        let without = with.clone().without_attention_term();
        let b = BatchWorkload {
            prefill: vec![SequenceChunk::prefill(512, 8192)],
            decode: vec![],
        };
        assert!(with.stage_forward_time(16, &b, 0) > without.stage_forward_time(16, &b, 0));
    }

    #[test]
    fn tp_reduces_latency_on_fast_links_only() {
        let cm = model_32b_on_l20();
        let b = prefill_batch(2048);
        let t1 = cm.tp_forward_time(&b, 1, &LinkSpec::pcie());
        let t4_pcie = cm.tp_forward_time(&b, 4, &LinkSpec::pcie());
        let t4_net = cm.tp_forward_time(&b, 4, &LinkSpec::sim_network());
        assert!(t4_pcie < t1, "TP should help intra-node: {t4_pcie} vs {t1}");
        assert!(t4_net > t4_pcie, "network TP must pay more for all-reduce");
    }

    #[test]
    fn activation_bytes_match_tokens_times_hidden() {
        let cm = model_32b_on_l20();
        let b = prefill_batch(100);
        assert_eq!(cm.activation_bytes(&b), (100 * 5120 * 2) as u64);
    }

    #[test]
    fn chunk_attention_units_closed_form() {
        // 3 tokens after 10 context: (10+1) + (10+2) + (10+3) = 36.
        let c = SequenceChunk::prefill(3, 10);
        assert_eq!(CostModel::chunk_attn_units(&c), 36.0);
    }

    #[test]
    fn small_batches_pay_an_efficiency_penalty_per_token() {
        let cm = model_32b_on_l20();
        let t_small = cm.stage_forward_time(16, &prefill_batch(256), 0);
        let t_large = cm.stage_forward_time(16, &prefill_batch(2048), 0);
        let per_tok_small = t_small / 256.0;
        let per_tok_large = t_large / 2048.0;
        assert!(
            per_tok_small > per_tok_large * 1.12,
            "small {per_tok_small} vs large {per_tok_large}"
        );
    }

    #[test]
    fn expert_imbalance_is_deterministic_and_bounded() {
        let cm = model_32b_on_l20().with_expert_imbalance(0.3);
        let base = model_32b_on_l20();
        let b = decode_batch(16, 300);
        let t = cm.stage_forward_time(16, &b, 16);
        let t0 = base.stage_forward_time(16, &b, 16);
        assert!(t >= t0 && t <= t0 * 1.3 + 1e-9, "t={t} t0={t0}");
        assert_eq!(t, cm.stage_forward_time(16, &b, 16), "must be deterministic");
        // A different batch composition routes differently.
        let b2 = decode_batch(16, 301);
        let t2 = cm.stage_forward_time(16, &b2, 16);
        assert_ne!(t / t0, t2 / base.stage_forward_time(16, &b2, 16));
    }

    #[test]
    fn zero_imbalance_is_identity() {
        let cm = model_32b_on_l20().with_expert_imbalance(0.0);
        let b = decode_batch(8, 100);
        assert_eq!(
            cm.stage_forward_time(16, &b, 8),
            model_32b_on_l20().stage_forward_time(16, &b, 8)
        );
    }

    #[test]
    fn lm_head_only_charged_when_requested() {
        let cm = model_32b_on_l20();
        let b = decode_batch(4, 128);
        assert!(cm.flops(16, &b, 4) > cm.flops(16, &b, 0));
    }

    /// Deterministic xorshift64* for the randomized shape sweep below (the
    /// model crate has no rand dependency).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn memoized_stage_times_are_bit_identical_across_random_shapes() {
        // Satellite test (b): the memoized path must return *identical*
        // times to the unmemoized path — compared via to_bits, not an
        // epsilon — across a randomized sweep of batch shapes, layer
        // counts, lm-head token counts and model variants (attention term
        // on/off, expert imbalance on/off).
        let mut rng = 0x5EED_u64;
        let base = model_32b_on_l20();
        let variants = [
            base.clone(),
            base.clone().without_attention_term(),
            base.clone().with_expert_imbalance(0.25),
        ];
        for round in 0..200 {
            let cm = &variants[round % variants.len()];
            let n_prefill = (xorshift(&mut rng) % 4) as usize;
            let n_decode = (xorshift(&mut rng) % 64) as usize;
            let batch = BatchWorkload {
                prefill: (0..n_prefill)
                    .map(|_| {
                        SequenceChunk::prefill(
                            1 + (xorshift(&mut rng) % 2048) as usize,
                            (xorshift(&mut rng) % 8192) as usize,
                        )
                    })
                    .collect(),
                decode: (0..n_decode)
                    .map(|_| SequenceChunk::decode(1 + (xorshift(&mut rng) % 4096) as usize))
                    .collect(),
            };
            let mut cache = StageTimeCache::new();
            // Query each key twice: first populates, second must hit.
            for layers in [1usize, 7, 16, 16, 17] {
                for lm_head in [0usize, batch.decode.len(), 0] {
                    let direct = cm.stage_forward_time(layers, &batch, lm_head);
                    let memo = cache.stage_forward_time(cm, layers, &batch, lm_head);
                    assert_eq!(
                        direct.to_bits(),
                        memo.to_bits(),
                        "round {round}: layers={layers} lm_head={lm_head} \
                         direct={direct} memo={memo}"
                    );
                }
            }
            // 5 distinct layer counts × up to 2 distinct lm_head values.
            assert!(cache.len() <= 8, "cache grew past its key space: {}", cache.len());
            assert!(!cache.is_empty());
        }
    }
}
