//! Model architecture descriptors, GPU hardware specifications and the
//! analytic performance models that stand in for real CUDA execution in this
//! reproduction of gLLM (SC '25).
//!
//! The paper evaluates on 4×L20 / 4×A100 / 4×A800 nodes serving Qwen2.5-14B,
//! Qwen2.5-32B and a down-scaled Llama-3.1-100B. None of that hardware is
//! available to a CPU-only reproduction, so this crate provides:
//!
//! * [`config::ModelConfig`] — transformer shape descriptors with exact
//!   parameter / FLOP / KV-footprint accounting,
//! * [`gpu::GpuSpec`] — peak compute, memory bandwidth and capacity of the
//!   paper's GPUs,
//! * [`comm::LinkSpec`] — an α–β communication model parameterised with the
//!   paper's measured PCIe (20.79 GB/s) and simulated-network (73.28 Gbps)
//!   numbers,
//! * [`cost::CostModel`] — a roofline batch-latency model
//!   (max(compute, memory) + fixed overhead) used by the discrete-event
//!   simulator, and
//! * [`partition::PipelinePartition`] — layer-to-stage assignment plus the
//!   KV-cache capacity math that the Token Throttling scheduler depends on.
//!
//! Everything here is deterministic and pure: the same inputs always produce
//! the same latencies, which keeps the whole simulation bit-reproducible.

pub mod comm;
pub mod config;
pub mod cost;
pub mod gpu;
pub mod partition;

pub use comm::LinkSpec;
pub use config::ModelConfig;
pub use cost::{BatchWorkload, CostModel, SequenceChunk, StageTimeCache};
pub use gpu::GpuSpec;
pub use partition::{ClusterSpec, PipelinePartition, StageResources};
