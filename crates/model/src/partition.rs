//! Pipeline stage partitioning and KV-cache capacity accounting.
//!
//! The Token Throttling scheduler's UT component (§3.1.2) is driven by the
//! KV-cache free rate, so the simulator must know exactly how many tokens of
//! KV cache a deployment can hold. This module assigns decoder layers to
//! pipeline stages, accounts each stage's weight footprint (including the
//! embedding table on the first stage and the LM head on the last) and
//! derives the cluster-wide KV token capacity — the minimum over stages,
//! since the paper's design shares one unified page table across all GPUs.

use serde::{Deserialize, Serialize};

use crate::comm::LinkSpec;
use crate::config::ModelConfig;
use crate::gpu::GpuSpec;

/// Assignment of decoder layers to pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelinePartition {
    /// Number of layers held by each stage, in pipeline order.
    pub stage_layers: Vec<usize>,
}

impl PipelinePartition {
    /// Split `num_layers` as evenly as possible across `stages`, giving the
    /// remainder to the earliest stages (vLLM's convention).
    pub fn even(num_layers: usize, stages: usize) -> Self {
        assert!(stages >= 1, "need at least one stage");
        assert!(
            num_layers >= stages,
            "cannot spread {num_layers} layers over {stages} stages"
        );
        let base = num_layers / stages;
        let extra = num_layers % stages;
        let stage_layers = (0..stages)
            .map(|s| base + usize::from(s < extra))
            .collect();
        Self { stage_layers }
    }

    /// Number of pipeline stages (the pipeline depth, `#PP_depth`).
    #[inline]
    pub fn depth(&self) -> usize {
        self.stage_layers.len()
    }

    /// Layers held by stage `s`.
    #[inline]
    pub fn layers_of(&self, s: usize) -> usize {
        self.stage_layers[s]
    }

    /// Total layers across all stages.
    pub fn total_layers(&self) -> usize {
        self.stage_layers.iter().sum()
    }
}

/// Per-stage memory footprint and KV cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageResources {
    /// Bytes of model weights resident on this stage's GPU.
    pub weight_bytes: u64,
    /// Bytes of KV cache one token costs on this stage.
    pub kv_bytes_per_token: u64,
}

/// A homogeneous deployment: `num_gpus` identical GPUs joined by one link.
///
/// Used for both pipeline-parallel deployments (one stage per GPU) and
/// tensor-parallel deployments (one shard per GPU).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// GPU type (identical across the deployment).
    pub gpu: GpuSpec,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Interconnect between adjacent stages / TP ranks.
    pub link: LinkSpec,
    /// Fraction of device memory the engine may use (weights + KV), as the
    /// systems' `--gpu-memory-utilization` flag.
    pub gpu_memory_util: f64,
}

impl ClusterSpec {
    /// The paper's intra-node testbed: 4×L20 over PCIe.
    pub fn intra_node_l20(num_gpus: usize) -> Self {
        Self {
            gpu: GpuSpec::l20_48g(),
            num_gpus,
            link: LinkSpec::pcie(),
            gpu_memory_util: 0.9,
        }
    }

    /// The paper's cross-node testbed with A100-40G (14B/32B models):
    /// one GPU per node over the 73.28 Gbps simulated network.
    pub fn cross_node_a100(num_nodes: usize) -> Self {
        Self {
            gpu: GpuSpec::a100_40g(),
            num_gpus: num_nodes,
            link: LinkSpec::sim_network(),
            gpu_memory_util: 0.9,
        }
    }

    /// The paper's cross-node testbed with A800-80G (Llama-3.1-100B).
    pub fn cross_node_a800(num_nodes: usize) -> Self {
        Self {
            gpu: GpuSpec::a800_80g(),
            num_gpus: num_nodes,
            link: LinkSpec::sim_network(),
            gpu_memory_util: 0.9,
        }
    }

    /// Per-stage resources of a pipeline-parallel deployment of `model` on
    /// this cluster (stage 0 carries the embedding table, the last stage
    /// carries the LM head).
    pub fn pp_stage_resources(
        &self,
        model: &ModelConfig,
        partition: &PipelinePartition,
    ) -> Vec<StageResources> {
        assert_eq!(partition.depth(), self.num_gpus);
        let embed = (model.vocab_size * model.hidden_size * model.dtype_bytes) as u64;
        let head = if model.tie_embeddings { 0 } else { embed };
        (0..partition.depth())
            .map(|s| {
                let mut w = model.layer_weight_bytes(partition.layers_of(s));
                if s == 0 {
                    w += embed;
                }
                if s + 1 == partition.depth() {
                    w += head;
                }
                StageResources {
                    weight_bytes: w,
                    kv_bytes_per_token: model.kv_bytes_per_token_per_layer()
                        * partition.layers_of(s) as u64,
                }
            })
            .collect()
    }

    /// Cluster-wide KV token capacity under pipeline parallelism: the
    /// minimum over stages of `(usable memory − weights) / kv per token`.
    ///
    /// Returns 0 when any stage's weights alone exceed its memory budget
    /// (the deployment does not fit).
    pub fn pp_kv_token_capacity(
        &self,
        model: &ModelConfig,
        partition: &PipelinePartition,
    ) -> usize {
        let budget = (self.gpu.memory_bytes() as f64 * self.gpu_memory_util) as u64;
        self.pp_stage_resources(model, partition)
            .iter()
            .map(|r| {
                if r.weight_bytes >= budget {
                    0
                } else {
                    ((budget - r.weight_bytes) / r.kv_bytes_per_token) as usize
                }
            })
            .min()
            .unwrap_or(0)
    }

    /// Cluster-wide KV token capacity under tensor parallelism: weights and
    /// KV are both sharded `num_gpus` ways, so the aggregate capacity is
    /// `(num_gpus × usable − total weights) / kv per token`.
    pub fn tp_kv_token_capacity(&self, model: &ModelConfig) -> usize {
        let per_gpu = (self.gpu.memory_bytes() as f64 * self.gpu_memory_util) as u64;
        let total = per_gpu.saturating_mul(self.num_gpus as u64);
        let weights = model.total_params() * model.dtype_bytes as u64;
        if weights >= total {
            return 0;
        }
        ((total - weights) / model.kv_bytes_per_token()) as usize
    }

    /// Whether a pipeline-parallel deployment of `model` fits at all.
    pub fn pp_fits(&self, model: &ModelConfig, partition: &PipelinePartition) -> bool {
        self.pp_kv_token_capacity(model, partition) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_distributes_remainder_to_early_stages() {
        let p = PipelinePartition::even(10, 4);
        assert_eq!(p.stage_layers, vec![3, 3, 2, 2]);
        assert_eq!(p.total_layers(), 10);
        assert_eq!(p.depth(), 4);
    }

    #[test]
    fn even_partition_exact_division() {
        let p = PipelinePartition::even(64, 4);
        assert_eq!(p.stage_layers, vec![16; 4]);
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn partition_rejects_more_stages_than_layers() {
        PipelinePartition::even(2, 4);
    }

    #[test]
    fn qwen32b_fits_on_4xl20_with_kv_headroom() {
        // The paper's main intra-node configuration must be feasible.
        let cluster = ClusterSpec::intra_node_l20(4);
        let model = ModelConfig::qwen2_5_32b();
        let p = PipelinePartition::even(model.num_layers, 4);
        let cap = cluster.pp_kv_token_capacity(&model, &p);
        assert!(cap > 50_000, "KV capacity too small: {cap} tokens");
    }

    #[test]
    fn llama100b_fits_on_4xa800_but_not_4xa100() {
        let model = ModelConfig::llama3_1_100b();
        let p = PipelinePartition::even(model.num_layers, 4);
        assert!(ClusterSpec::cross_node_a800(4).pp_fits(&model, &p));
        assert!(!ClusterSpec::cross_node_a100(4).pp_fits(&model, &p));
    }

    #[test]
    fn first_stage_carries_embedding_weight() {
        let cluster = ClusterSpec::intra_node_l20(4);
        let model = ModelConfig::qwen2_5_32b();
        let p = PipelinePartition::even(model.num_layers, 4);
        let res = cluster.pp_stage_resources(&model, &p);
        assert!(res[0].weight_bytes > res[1].weight_bytes);
        assert_eq!(res[1].weight_bytes, res[2].weight_bytes);
        // Untied LM head on the last stage.
        assert!(res[3].weight_bytes > res[1].weight_bytes);
    }

    #[test]
    fn deeper_pipelines_increase_capacity() {
        let model = ModelConfig::qwen2_5_32b();
        let c2 = ClusterSpec::intra_node_l20(2);
        let c4 = ClusterSpec::intra_node_l20(4);
        let cap2 = c2.pp_kv_token_capacity(&model, &PipelinePartition::even(64, 2));
        let cap4 = c4.pp_kv_token_capacity(&model, &PipelinePartition::even(64, 4));
        assert!(cap4 > cap2);
    }

    #[test]
    fn tp_capacity_close_to_pp_capacity() {
        // TP shards both weights and KV, so aggregate capacity should be in
        // the same ballpark as a 4-stage PP split.
        let model = ModelConfig::qwen2_5_32b();
        let c = ClusterSpec::intra_node_l20(4);
        let pp = c.pp_kv_token_capacity(&model, &PipelinePartition::even(64, 4)) as f64;
        let tp = c.tp_kv_token_capacity(&model) as f64;
        assert!(tp / (4.0 * pp) > 0.2 && tp < 4.0 * pp * 2.0);
    }

    #[test]
    fn oversized_model_reports_zero_capacity() {
        let model = ModelConfig::llama3_1_100b();
        let c = ClusterSpec {
            num_gpus: 1,
            ..ClusterSpec::intra_node_l20(1)
        };
        assert_eq!(c.tp_kv_token_capacity(&model), 0);
    }
}
