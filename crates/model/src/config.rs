//! Transformer architecture descriptors.
//!
//! A [`ModelConfig`] captures exactly the shape information the analytic cost
//! model needs: layer counts, hidden/intermediate dimensions, attention head
//! geometry and vocabulary size. Presets mirror the three models the paper
//! evaluates (Qwen2.5-14B, Qwen2.5-32B, and the Llama-3.1-405B variant
//! down-scaled to ~100B parameters by reducing the layer count, exactly as
//! the paper describes in §4.1 footnote 3).

use serde::{Deserialize, Serialize};

/// Shape descriptor of a decoder-only transformer.
///
/// All derived quantities (parameter counts, FLOPs, KV bytes) are computed
/// from these fields; nothing is hard-coded per model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name (e.g. `"Qwen2.5-32B"`).
    pub name: String,
    /// Number of decoder layers.
    pub num_layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden_size: usize,
    /// Number of query attention heads.
    pub num_heads: usize,
    /// Number of key/value heads (grouped-query attention).
    pub num_kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// MLP intermediate dimension (SwiGLU uses three `hidden × intermediate`
    /// projections).
    pub intermediate_size: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Bytes per parameter/activation element (2 for bf16, the paper's
    /// uniform dtype).
    pub dtype_bytes: usize,
    /// Whether the input embedding and LM head share weights.
    pub tie_embeddings: bool,
}

impl ModelConfig {
    /// Dimension of the concatenated KV heads (`num_kv_heads × head_dim`).
    #[inline]
    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// Dimension of the concatenated query heads (`num_heads × head_dim`).
    #[inline]
    pub fn q_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// Parameters in one decoder layer (attention + SwiGLU MLP projections;
    /// norm vectors are negligible and included for completeness).
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden_size as u64;
        let q = self.q_dim() as u64;
        let kv = self.kv_dim() as u64;
        let i = self.intermediate_size as u64;
        // Q, K, V, O projections.
        let attn = h * q + 2 * h * kv + q * h;
        // SwiGLU: gate, up, down.
        let mlp = 3 * h * i;
        // Two RMSNorm weight vectors.
        let norms = 2 * h;
        attn + mlp + norms
    }

    /// Parameters in the embedding table (and the LM head when untied).
    pub fn embedding_params(&self) -> u64 {
        let e = (self.vocab_size as u64) * (self.hidden_size as u64);
        if self.tie_embeddings {
            e
        } else {
            2 * e
        }
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.params_per_layer() * self.num_layers as u64 + self.embedding_params()
    }

    /// Bytes of weights for `layers` decoder layers (no embeddings).
    pub fn layer_weight_bytes(&self, layers: usize) -> u64 {
        self.params_per_layer() * layers as u64 * self.dtype_bytes as u64
    }

    /// Bytes of KV cache one token occupies in one decoder layer
    /// (keys + values).
    pub fn kv_bytes_per_token_per_layer(&self) -> u64 {
        2 * self.kv_dim() as u64 * self.dtype_bytes as u64
    }

    /// Bytes of KV cache one token occupies across the whole model.
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv_bytes_per_token_per_layer() * self.num_layers as u64
    }

    /// Dense (linear-projection) FLOPs to process one token through one
    /// decoder layer: 2 FLOPs per parameter per token.
    pub fn linear_flops_per_token_per_layer(&self) -> u64 {
        2 * self.params_per_layer()
    }

    /// Attention-score FLOPs for one token attending over a context of
    /// `context_len` tokens in one layer (QKᵀ plus attention×V, over all
    /// query heads).
    pub fn attn_flops_per_token_per_layer(&self, context_len: usize) -> u64 {
        4 * (context_len as u64) * (self.q_dim() as u64)
    }

    /// FLOPs of the LM-head projection for one token.
    pub fn lm_head_flops_per_token(&self) -> u64 {
        2 * (self.vocab_size as u64) * (self.hidden_size as u64)
    }

    /// Qwen2.5-14B (48 layers, GQA 40/8). ~14.7 B parameters.
    pub fn qwen2_5_14b() -> Self {
        Self {
            name: "Qwen2.5-14B".into(),
            num_layers: 48,
            hidden_size: 5120,
            num_heads: 40,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate_size: 13824,
            vocab_size: 152_064,
            dtype_bytes: 2,
            tie_embeddings: false,
        }
    }

    /// Qwen2.5-32B (64 layers, GQA 40/8). ~32.8 B parameters.
    pub fn qwen2_5_32b() -> Self {
        Self {
            name: "Qwen2.5-32B".into(),
            num_layers: 64,
            hidden_size: 5120,
            num_heads: 40,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate_size: 27648,
            vocab_size: 152_064,
            dtype_bytes: 2,
            tie_embeddings: false,
        }
    }

    /// Llama-3.1-405B down-scaled to ~100 B parameters by cutting the layer
    /// count from 126 to 32 while keeping every per-layer dimension, matching
    /// the paper's §4.1 footnote 3 ("downscaled from Llama3.1-405B to fit in
    /// GPU memory").
    pub fn llama3_1_100b() -> Self {
        Self {
            name: "Llama-3.1-100B".into(),
            num_layers: 32,
            hidden_size: 16384,
            num_heads: 128,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate_size: 53248,
            vocab_size: 128_256,
            dtype_bytes: 2,
            tie_embeddings: false,
        }
    }

    /// A miniature configuration for tests and the executable CPU
    /// transformer: small enough to run forward passes in microseconds while
    /// exercising GQA (heads ≠ kv_heads) and untied embeddings.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            num_layers: 4,
            hidden_size: 64,
            num_heads: 8,
            num_kv_heads: 4,
            head_dim: 8,
            intermediate_size: 128,
            vocab_size: 256,
            dtype_bytes: 4,
            tie_embeddings: false,
        }
    }

    /// Look a preset up by a case-insensitive short name.
    ///
    /// Accepts `"14b"`, `"32b"`, `"100b"`, `"tiny"` and the full preset
    /// names. Returns `None` for unknown names.
    pub fn preset(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "14b" | "qwen2.5-14b" | "qwen14b" => Some(Self::qwen2_5_14b()),
            "32b" | "qwen2.5-32b" | "qwen32b" => Some(Self::qwen2_5_32b()),
            "100b" | "llama-3.1-100b" | "llama100b" => Some(Self::llama3_1_100b()),
            "tiny" => Some(Self::tiny()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qwen14b_param_count_matches_published_size() {
        let m = ModelConfig::qwen2_5_14b();
        let b = m.total_params() as f64 / 1e9;
        assert!((13.0..16.0).contains(&b), "got {b} B params");
    }

    #[test]
    fn qwen32b_param_count_matches_published_size() {
        let m = ModelConfig::qwen2_5_32b();
        let b = m.total_params() as f64 / 1e9;
        assert!((30.0..34.0).contains(&b), "got {b} B params");
    }

    #[test]
    fn llama100b_param_count_close_to_100b() {
        let m = ModelConfig::llama3_1_100b();
        let b = m.total_params() as f64 / 1e9;
        assert!((90.0..115.0).contains(&b), "got {b} B params");
    }

    #[test]
    fn kv_bytes_match_manual_computation() {
        let m = ModelConfig::qwen2_5_32b();
        // 8 kv heads × 128 dim × 2 (K and V) × 2 bytes × 64 layers.
        assert_eq!(m.kv_bytes_per_token(), 8 * 128 * 2 * 2 * 64);
    }

    #[test]
    fn gqa_reduces_kv_footprint() {
        let mut m = ModelConfig::qwen2_5_32b();
        let gqa = m.kv_bytes_per_token();
        m.num_kv_heads = m.num_heads;
        assert!(m.kv_bytes_per_token() > gqa);
    }

    #[test]
    fn attn_flops_scale_linearly_with_context() {
        let m = ModelConfig::qwen2_5_14b();
        assert_eq!(
            m.attn_flops_per_token_per_layer(2000),
            2 * m.attn_flops_per_token_per_layer(1000)
        );
    }

    #[test]
    fn tied_embeddings_halve_embedding_params() {
        let mut m = ModelConfig::tiny();
        m.tie_embeddings = false;
        let untied = m.embedding_params();
        m.tie_embeddings = true;
        assert_eq!(m.embedding_params() * 2, untied);
    }

    #[test]
    fn presets_resolve_by_short_name() {
        assert_eq!(ModelConfig::preset("32B").unwrap().num_layers, 64);
        assert_eq!(ModelConfig::preset("tiny").unwrap().hidden_size, 64);
        assert!(ModelConfig::preset("7b").is_none());
    }

    #[test]
    fn serde_round_trip() {
        let m = ModelConfig::qwen2_5_14b();
        let s = serde_json::to_string(&m).unwrap();
        let back: ModelConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
