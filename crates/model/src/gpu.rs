//! GPU hardware specifications.
//!
//! The paper's three node types are captured here with their public
//! datasheet numbers. The cost model never uses peak numbers directly — it
//! applies achievable-efficiency factors (`compute_efficiency`,
//! `bandwidth_efficiency`) because real transformer kernels reach 40–70 % of
//! peak FLOPs and 60–90 % of peak bandwidth.

use serde::{Deserialize, Serialize};

/// One GPU's compute, bandwidth and memory envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name (e.g. `"L20-48GB"`).
    pub name: String,
    /// Peak dense bf16 throughput in TFLOP/s.
    pub peak_tflops_bf16: f64,
    /// Peak HBM/GDDR bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Total device memory in GiB.
    pub memory_gib: f64,
    /// Fraction of peak FLOPs achievable by dense GEMMs (0, 1].
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth achievable by attention/KV kernels (0, 1].
    pub bandwidth_efficiency: f64,
}

impl GpuSpec {
    /// Achievable compute throughput in FLOP/s.
    #[inline]
    pub fn effective_flops(&self) -> f64 {
        self.peak_tflops_bf16 * 1e12 * self.compute_efficiency
    }

    /// Achievable memory bandwidth in bytes/s.
    #[inline]
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9 * self.bandwidth_efficiency
    }

    /// Total device memory in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// NVIDIA L20 48 GB (Ada, PCIe): the paper's intra-node testbed.
    pub fn l20_48g() -> Self {
        Self {
            name: "L20-48GB".into(),
            peak_tflops_bf16: 119.5,
            mem_bandwidth_gbps: 864.0,
            memory_gib: 48.0,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.75,
        }
    }

    /// NVIDIA A100 40 GB (PCIe): cross-node testbed for the 14B/32B models.
    pub fn a100_40g() -> Self {
        Self {
            name: "A100-40GB".into(),
            peak_tflops_bf16: 312.0,
            mem_bandwidth_gbps: 1555.0,
            memory_gib: 40.0,
            compute_efficiency: 0.5,
            bandwidth_efficiency: 0.8,
        }
    }

    /// NVIDIA A800 80 GB: cross-node testbed for Llama-3.1-100B.
    pub fn a800_80g() -> Self {
        Self {
            name: "A800-80GB".into(),
            peak_tflops_bf16: 312.0,
            mem_bandwidth_gbps: 2039.0,
            memory_gib: 80.0,
            compute_efficiency: 0.5,
            bandwidth_efficiency: 0.8,
        }
    }

    /// Look a preset up by a case-insensitive short name (`"l20"`, `"a100"`,
    /// `"a800"`).
    pub fn preset(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "l20" | "l20-48gb" => Some(Self::l20_48g()),
            "a100" | "a100-40gb" => Some(Self::a100_40g()),
            "a800" | "a800-80gb" => Some(Self::a800_80g()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_numbers_are_below_peak() {
        for g in [GpuSpec::l20_48g(), GpuSpec::a100_40g(), GpuSpec::a800_80g()] {
            assert!(g.effective_flops() < g.peak_tflops_bf16 * 1e12);
            assert!(g.effective_bandwidth() < g.mem_bandwidth_gbps * 1e9);
            assert!(g.memory_bytes() > 0);
        }
    }

    #[test]
    fn a100_out_computes_l20() {
        assert!(GpuSpec::a100_40g().effective_flops() > GpuSpec::l20_48g().effective_flops());
    }

    #[test]
    fn a800_has_twice_a100_memory() {
        assert_eq!(
            GpuSpec::a800_80g().memory_bytes(),
            2 * GpuSpec::a100_40g().memory_bytes()
        );
    }

    #[test]
    fn presets_resolve() {
        assert!(GpuSpec::preset("L20").is_some());
        assert!(GpuSpec::preset("h100").is_none());
    }
}
