//! The API server: HTTP frontend glued to the gLLM runtime.
//!
//! Mirrors the paper's decoupled frontend (§3.3): connection handlers only
//! tokenize, submit and stream — a single dispatcher thread demultiplexes
//! the runtime's token events to per-request channels, and model execution
//! never blocks on user I/O.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gllm_core::SchedulePolicy;
use gllm_metrics::MetricsRecorder;
use gllm_runtime::server::Submitter;
use gllm_runtime::{GenRequest, RuntimeConfig, Server, StreamEvent};
use gllm_transformer::sampler::SamplingParams;

use crate::http::{finish_chunked, respond, start_sse, write_sse_event, Request};
use crate::openai::{
    ChatChoice, ChatCompletionRequest, ChatCompletionResponse, ChatMessage, Choice,
    CompletionRequest, CompletionResponse, ErrorResponse, ModelCard, ModelList, Usage,
};
use crate::tokenizer::Tokenizer;

/// Shared state between connection handlers and the dispatcher.
struct Shared {
    submitter: Submitter,
    tokenizer: Tokenizer,
    model_name: String,
    next_id: AtomicU64,
    /// Per-request event routes, keyed by sequence id.
    routes: Mutex<HashMap<u64, Sender<StreamEvent>>>,
    shutdown: AtomicBool,
}

/// A running OpenAI-compatible API server.
pub struct ApiServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<MetricsRecorder>>,
}

impl ApiServer {
    /// Start the runtime and serve it on `bind` (use port 0 for an
    /// ephemeral port; the bound address is [`ApiServer::addr`]).
    pub fn start(
        cfg: RuntimeConfig,
        policy: Arc<dyn SchedulePolicy>,
        bind: &str,
    ) -> std::io::Result<ApiServer> {
        let tokenizer = Tokenizer::byte_level(cfg.model.vocab_size);
        let model_name = cfg.model.name.clone();
        let runtime = Server::start(cfg, policy)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
        let shared = Arc::new(Shared {
            submitter: runtime.submitter(),
            tokenizer,
            model_name,
            next_id: AtomicU64::new(0),
            routes: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });

        // Dispatcher: owns the runtime, fans events out to request routes.
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                loop {
                    if let Some(ev) = runtime.next_event(Duration::from_millis(50)) {
                        let seq = match ev {
                            StreamEvent::Token { seq, .. }
                            | StreamEvent::Rejected { seq }
                            | StreamEvent::Failed { seq } => seq,
                        };
                        let routes = shared.routes.lock().expect("routes lock");
                        if let Some(tx) = routes.get(&seq) {
                            // A dropped receiver (client hung up) is fine.
                            let _ = tx.send(ev);
                        }
                    } else if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                }
                runtime.shutdown()
            })
        };

        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || handle_connection(stream, &shared));
                }
            })
        };

        Ok(ApiServer { addr, shared, accept_thread: Some(accept_thread), dispatcher: Some(dispatcher) })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the runtime and return its metrics.
    pub fn shutdown(mut self) -> MetricsRecorder {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.dispatcher
            .take()
            .expect("joined once")
            .join()
            .expect("dispatcher panicked")
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    let req = match Request::read(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return,
        Err(_) => {
            let body = serde_json::to_vec(&ErrorResponse::new("invalid_request_error", "malformed HTTP"))
                .expect("serialise error");
            let _ = respond(&mut stream, 400, "application/json", &body);
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let _ = respond(&mut stream, 200, "application/json", b"{\"status\":\"ok\"}");
        }
        ("GET", "/v1/models") => {
            let list = ModelList {
                object: "list".into(),
                data: vec![ModelCard {
                    id: shared.model_name.clone(),
                    object: "model".into(),
                    owned_by: "gllm".into(),
                }],
            };
            let body = serde_json::to_vec(&list).expect("serialise models");
            let _ = respond(&mut stream, 200, "application/json", &body);
        }
        ("POST", "/v1/completions") => handle_completion(&mut stream, &req, shared),
        ("POST", "/v1/chat/completions") => handle_chat(&mut stream, &req, shared),
        (_, "/v1/completions") | (_, "/v1/chat/completions") | (_, "/v1/models") | (_, "/health") => {
            let body = serde_json::to_vec(&ErrorResponse::new("invalid_request_error", "method not allowed"))
                .expect("serialise error");
            let _ = respond(&mut stream, 405, "application/json", &body);
        }
        _ => {
            let body = serde_json::to_vec(&ErrorResponse::new("not_found_error", "unknown route"))
                .expect("serialise error");
            let _ = respond(&mut stream, 404, "application/json", &body);
        }
    }
}

fn handle_chat(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    let parsed: ChatCompletionRequest = match serde_json::from_slice(&req.body) {
        Ok(p) => p,
        Err(e) => {
            let body =
                serde_json::to_vec(&ErrorResponse::new("invalid_request_error", e.to_string()))
                    .expect("serialise error");
            let _ = respond(stream, 400, "application/json", &body);
            return;
        }
    };
    if parsed.messages.is_empty() || parsed.max_tokens == 0 {
        let body = serde_json::to_vec(&ErrorResponse::new(
            "invalid_request_error",
            "messages must be non-empty and max_tokens >= 1",
        ))
        .expect("serialise error");
        let _ = respond(stream, 400, "application/json", &body);
        return;
    }
    let prompt_tokens = shared.tokenizer.encode(&parsed.to_prompt());
    let prompt_len = prompt_tokens.len();
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let (tx, rx): (Sender<StreamEvent>, Receiver<StreamEvent>) = unbounded();
    shared.routes.lock().expect("routes lock").insert(id, tx);
    let submitted = shared.submitter.submit(GenRequest {
        id,
        prompt: prompt_tokens,
        max_new: parsed.max_tokens,
        params: SamplingParams {
            temperature: parsed.temperature,
            top_k: parsed.top_k,
            top_p: parsed.top_p,
            seed: parsed.seed,
        },
    });
    if submitted.is_err() {
        shared.routes.lock().expect("routes lock").remove(&id);
        let body = serde_json::to_vec(&ErrorResponse::new(
            "engine_unavailable",
            "driver has shut down; request was not submitted",
        ))
        .expect("serialise error");
        let _ = respond(stream, 503, "application/json", &body);
        return;
    }
    let mut tokens = Vec::with_capacity(parsed.max_tokens);
    let result = loop {
        match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(StreamEvent::Token { token, finished, .. }) => {
                tokens.push(token);
                if finished {
                    break Ok(());
                }
            }
            Ok(StreamEvent::Rejected { .. }) => break Err("request exceeds KV capacity"),
            Ok(StreamEvent::Failed { .. }) => {
                break Err("request failed; the runtime exhausted its recovery budget")
            }
            Err(_) => break Err("generation timed out"),
        }
    };
    shared.routes.lock().expect("routes lock").remove(&id);
    match result {
        Ok(()) => {
            let resp = ChatCompletionResponse {
                id: format!("chatcmpl-{id}"),
                object: "chat.completion".into(),
                model: shared.model_name.clone(),
                choices: vec![ChatChoice {
                    message: ChatMessage {
                        role: "assistant".into(),
                        content: shared.tokenizer.decode(&tokens),
                    },
                    index: 0,
                    finish_reason: Some("length".into()),
                }],
                usage: Usage {
                    prompt_tokens: prompt_len,
                    completion_tokens: tokens.len(),
                    total_tokens: prompt_len + tokens.len(),
                },
            };
            let body = serde_json::to_vec(&resp).expect("serialise chat completion");
            let _ = respond(stream, 200, "application/json", &body);
        }
        Err(msg) => {
            let body = serde_json::to_vec(&ErrorResponse::new("server_error", msg))
                .expect("serialise error");
            let _ = respond(stream, 500, "application/json", &body);
        }
    }
}

fn handle_completion(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    let parsed: CompletionRequest = match serde_json::from_slice(&req.body) {
        Ok(p) => p,
        Err(e) => {
            let body =
                serde_json::to_vec(&ErrorResponse::new("invalid_request_error", e.to_string()))
                    .expect("serialise error");
            let _ = respond(stream, 400, "application/json", &body);
            return;
        }
    };
    let prompt_tokens = shared.tokenizer.encode(&parsed.prompt);
    if prompt_tokens.is_empty() || parsed.max_tokens == 0 {
        let body = serde_json::to_vec(&ErrorResponse::new(
            "invalid_request_error",
            "prompt must be non-empty and max_tokens >= 1",
        ))
        .expect("serialise error");
        let _ = respond(stream, 400, "application/json", &body);
        return;
    }

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let (tx, rx): (Sender<StreamEvent>, Receiver<StreamEvent>) = unbounded();
    shared.routes.lock().expect("routes lock").insert(id, tx);
    let prompt_len = prompt_tokens.len();
    let submitted = shared.submitter.submit(GenRequest {
        id,
        prompt: prompt_tokens,
        max_new: parsed.max_tokens,
        params: SamplingParams {
            temperature: parsed.temperature,
            top_k: parsed.top_k,
            top_p: parsed.top_p,
            seed: parsed.seed,
        },
    });
    if submitted.is_err() {
        shared.routes.lock().expect("routes lock").remove(&id);
        let body = serde_json::to_vec(&ErrorResponse::new(
            "engine_unavailable",
            "driver has shut down; request was not submitted",
        ))
        .expect("serialise error");
        let _ = respond(stream, 503, "application/json", &body);
        return;
    }

    let result = if parsed.stream {
        stream_completion(stream, shared, &parsed, id, prompt_len, &rx)
    } else {
        blocking_completion(stream, shared, &parsed, id, prompt_len, &rx)
    };
    shared.routes.lock().expect("routes lock").remove(&id);
    let _ = result;
}

fn blocking_completion(
    stream: &mut TcpStream,
    shared: &Shared,
    parsed: &CompletionRequest,
    id: u64,
    prompt_len: usize,
    rx: &Receiver<StreamEvent>,
) -> std::io::Result<()> {
    let mut tokens = Vec::with_capacity(parsed.max_tokens);
    loop {
        match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(StreamEvent::Token { token, finished, .. }) => {
                tokens.push(token);
                if finished {
                    break;
                }
            }
            Ok(StreamEvent::Rejected { .. }) => {
                let body = serde_json::to_vec(&ErrorResponse::new(
                    "invalid_request_error",
                    "request exceeds the KV cache capacity",
                ))
                .expect("serialise error");
                return respond(stream, 400, "application/json", &body);
            }
            Ok(StreamEvent::Failed { .. }) => {
                // Partial tokens (if any) are discarded with the buffer:
                // a Failed event voids everything streamed before it.
                let body = serde_json::to_vec(&ErrorResponse::new(
                    "server_error",
                    "request failed; the runtime exhausted its recovery budget",
                ))
                .expect("serialise error");
                return respond(stream, 500, "application/json", &body);
            }
            Err(_) => {
                let body = serde_json::to_vec(&ErrorResponse::new("server_error", "generation timed out"))
                    .expect("serialise error");
                return respond(stream, 500, "application/json", &body);
            }
        }
    }
    let resp = CompletionResponse {
        id: format!("cmpl-{id}"),
        object: "text_completion".into(),
        model: shared.model_name.clone(),
        choices: vec![Choice {
            text: shared.tokenizer.decode(&tokens),
            index: 0,
            finish_reason: Some("length".into()),
        }],
        usage: Some(Usage {
            prompt_tokens: prompt_len,
            completion_tokens: tokens.len(),
            total_tokens: prompt_len + tokens.len(),
        }),
    };
    let body = serde_json::to_vec(&resp).expect("serialise completion");
    respond(stream, 200, "application/json", &body)
}

fn stream_completion(
    stream: &mut TcpStream,
    shared: &Shared,
    _parsed: &CompletionRequest,
    id: u64,
    prompt_len: usize,
    rx: &Receiver<StreamEvent>,
) -> std::io::Result<()> {
    start_sse(stream)?;
    let mut produced = 0usize;
    loop {
        match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(StreamEvent::Token { token, finished, .. }) => {
                produced += 1;
                let resp = CompletionResponse {
                    id: format!("cmpl-{id}"),
                    object: "text_completion".into(),
                    model: shared.model_name.clone(),
                    choices: vec![Choice {
                        text: shared.tokenizer.decode_one(token),
                        index: 0,
                        finish_reason: finished.then(|| "length".to_string()),
                    }],
                    usage: finished.then_some(Usage {
                        prompt_tokens: prompt_len,
                        completion_tokens: produced,
                        total_tokens: prompt_len + produced,
                    }),
                };
                write_sse_event(stream, &serde_json::to_string(&resp).expect("serialise"))?;
                if finished {
                    break;
                }
            }
            Ok(StreamEvent::Rejected { .. }) | Ok(StreamEvent::Failed { .. }) | Err(_) => {
                let err = ErrorResponse::new("server_error", "generation aborted");
                write_sse_event(stream, &serde_json::to_string(&err).expect("serialise"))?;
                break;
            }
        }
    }
    write_sse_event(stream, "[DONE]")?;
    finish_chunked(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_core::throttle::TokenThrottle;
    use gllm_model::ModelConfig;
    use gllm_transformer::CausalLM;
    use std::io::{Read, Write};

    fn start() -> ApiServer {
        ApiServer::start(
            RuntimeConfig::tiny(2),
            Arc::new(TokenThrottle::default()),
            "127.0.0.1:0",
        )
        .expect("bind")
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw.as_bytes()).expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read");
        out
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        roundtrip(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn json_body(response: &str) -> serde_json::Value {
        let body = response.split("\r\n\r\n").nth(1).expect("has body");
        serde_json::from_str(body).expect("json body")
    }

    #[test]
    fn completion_round_trip_matches_reference_model() {
        let server = start();
        let addr = server.addr();
        let resp = post(addr, "/v1/completions", r#"{"prompt":"Hello","max_tokens":6}"#);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let v = json_body(&resp);
        assert_eq!(v["object"], "text_completion");
        assert_eq!(v["usage"]["prompt_tokens"], 5);
        assert_eq!(v["usage"]["completion_tokens"], 6);
        let text = v["choices"][0]["text"].as_str().unwrap().to_string();

        // The HTTP path must produce exactly the reference generation.
        let mut lm = CausalLM::new(ModelConfig::tiny(), 1, 256, 4, 2024);
        let prompt: Vec<u32> = "Hello".bytes().map(u32::from).collect();
        let expected = lm
            .generate(9, &prompt, 6, 4096, &SamplingParams::greedy())
            .unwrap();
        let expected_text = Tokenizer::byte_level(256).decode(&expected);
        assert_eq!(text, expected_text);
        server.shutdown();
    }

    #[test]
    fn streaming_sse_delivers_tokens_then_done() {
        let server = start();
        let resp = post(
            server.addr(),
            "/v1/completions",
            r#"{"prompt":"abc","max_tokens":4,"stream":true}"#,
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("text/event-stream"));
        let events: Vec<&str> = resp.matches("data: ").collect();
        assert_eq!(events.len(), 5, "4 tokens + [DONE]: {resp}");
        assert!(resp.contains("[DONE]"));
        assert!(resp.contains("\"finish_reason\":\"length\""));
        server.shutdown();
    }

    #[test]
    fn health_and_models_endpoints() {
        let server = start();
        let health = roundtrip(server.addr(), "GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(health.contains("\"status\":\"ok\""));
        let models = roundtrip(server.addr(), "GET /v1/models HTTP/1.1\r\nHost: t\r\n\r\n");
        let v = json_body(&models);
        assert_eq!(v["data"][0]["id"], "tiny");
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_openai_shaped_errors() {
        let server = start();
        let addr = server.addr();
        let bad_json = post(addr, "/v1/completions", "{nope");
        assert!(bad_json.starts_with("HTTP/1.1 400"), "{bad_json}");
        assert!(json_body(&bad_json)["error"]["type"] == "invalid_request_error");
        let empty = post(addr, "/v1/completions", r#"{"prompt":""}"#);
        assert!(empty.starts_with("HTTP/1.1 400"));
        let missing = roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"));
        let wrong_method = roundtrip(addr, "GET /v1/completions HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(wrong_method.starts_with("HTTP/1.1 405"));
        server.shutdown();
    }

    #[test]
    fn chat_completions_endpoint_works() {
        let server = start();
        let resp = post(
            server.addr(),
            "/v1/chat/completions",
            r#"{"messages":[{"role":"user","content":"Hi"}],"max_tokens":5}"#,
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let v = json_body(&resp);
        assert_eq!(v["object"], "chat.completion");
        assert_eq!(v["choices"][0]["message"]["role"], "assistant");
        assert_eq!(v["usage"]["completion_tokens"], 5);
        // Prompt = "user: Hi\nassistant: " = 20 bytes.
        assert_eq!(v["usage"]["prompt_tokens"], 20);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served_consistently() {
        let server = start();
        let addr = server.addr();
        let handles: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let body = format!(r#"{{"prompt":"client {i}","max_tokens":5}}"#);
                    post(addr, "/v1/completions", &body)
                })
            })
            .collect();
        let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, resp) in responses.iter().enumerate() {
            assert!(resp.starts_with("HTTP/1.1 200"), "client {i}: {resp}");
            assert_eq!(json_body(resp)["usage"]["completion_tokens"], 5);
        }
        // Same prompt twice → identical greedy text regardless of batching.
        let a = post(addr, "/v1/completions", r#"{"prompt":"client 0","max_tokens":5}"#);
        assert_eq!(json_body(&a)["choices"][0]["text"], json_body(&responses[0])["choices"][0]["text"]);
        let rec = server.shutdown();
        assert_eq!(rec.finished_count(), 7);
    }
}
