//! The gLLM command-line interface.
//!
//! Mirrors the paper's artifact workflow:
//!
//! * `gllm serve` — launch the OpenAI-compatible API server over the
//!   threaded runtime (the artifact's `gllm.entrypoints.api_server`),
//! * `gllm bench-serving` — load-generate against a running server with
//!   Poisson arrivals and report TTFT/TPOT/E2EL (the artifact's
//!   `benchmarks/benchmark_serving.py`),
//! * `gllm simulate` — run a deployment through the discrete-event
//!   simulator and print the paper's metric set.
//!
//! Argument parsing is by hand (no CLI framework): `--key value` pairs
//! after the subcommand.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gllm_core::sarathi::SarathiServe;
use gllm_core::td_pipe::TdPipe;
use gllm_core::throttle::TokenThrottle;
use gllm_core::SchedulePolicy;
use gllm_frontend::ApiServer;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_runtime::RuntimeConfig;
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{run_experiment, Deployment, SystemConfig};
use gllm_workload::{percentile, ArrivalProcess, Dataset, Trace};

const USAGE: &str = "\
gLLM — global balanced pipeline parallelism with Token Throttling

USAGE:
  gllm serve         [--port N] [--stages K] [--policy throttle|sarathi|tdpipe]
                     [--cpp] [--kv-blocks N] [--seed S]
                     [--fault-plan kill:1@3,drop:0@2+...,kvfail:4x2]
  gllm simulate      [--model 14b|32b|100b] [--cluster l20|a100|a800] [--gpus N]
                     [--system gllm|vllm|sglang|tdpipe|orca|ft] [--dataset sharegpt|azure]
                     [--rate R | --rate R1,R2,...] [--jobs N] [--seed S]
                     [--trace-file azure.csv] [--trace-out trace.json] [--no-audit]
  gllm bench-serving [--host H] [--port N] [--rate R] [--num-prompts N]
                     [--input-len L] [--max-tokens M] [--seed S]
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // Boolean flags take no value.
        if key == "cpp" || key == "no-audit" {
            flags.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(v) = it.next() else {
            return Err(format!("--{key} needs a value"));
        };
        flags.insert(key.to_string(), v.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v:?}")),
        None => Ok(default),
    }
}

fn policy_of(name: &str) -> Result<Arc<dyn SchedulePolicy>, String> {
    match name {
        "throttle" | "gllm" => Ok(Arc::new(TokenThrottle::default())),
        "sarathi" => Ok(Arc::new(SarathiServe::default())),
        "tdpipe" => Ok(Arc::new(TdPipe::default())),
        other => Err(format!("unknown policy {other:?}")),
    }
}

fn cmd_serve(flags: HashMap<String, String>) -> Result<(), String> {
    let port: u16 = get(&flags, "port", 8000)?;
    let stages: usize = get(&flags, "stages", 2)?;
    let kv_blocks: usize = get(&flags, "kv-blocks", 4096)?;
    let seed: u64 = get(&flags, "seed", 2024)?;
    let policy = policy_of(flags.get("policy").map(String::as_str).unwrap_or("throttle"))?;
    // Deterministic fault injection (chaos testing a live server): same
    // grammar as the chaos suite, e.g. `kill:1@3,kvfail:4x2`.
    let fault_plan = match flags.get("fault-plan") {
        Some(spec) => spec.parse().map_err(|e| format!("{e}"))?,
        None => gllm_runtime::FaultPlan::none(),
    };
    if !fault_plan.is_empty() {
        println!("fault plan armed: {} fault(s)", fault_plan.faults.len());
    }
    let cfg = RuntimeConfig {
        kv_blocks,
        seed,
        cpp: flags.contains_key("cpp"),
        fault_plan,
        ..RuntimeConfig::tiny(stages)
    };
    let server = ApiServer::start(cfg, policy, &format!("127.0.0.1:{port}"))
        .map_err(|e| format!("bind failed: {e}"))?;
    println!("gLLM API server listening on http://{}", server.addr());
    println!("endpoints: POST /v1/completions, GET /v1/models, GET /health");
    println!("press Ctrl+C to stop");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn cmd_simulate(flags: HashMap<String, String>) -> Result<(), String> {
    let model = ModelConfig::preset(flags.get("model").map(String::as_str).unwrap_or("32b"))
        .ok_or("unknown --model (use 14b, 32b, 100b)")?;
    let gpus: usize = get(&flags, "gpus", 4)?;
    let cluster = match flags.get("cluster").map(String::as_str).unwrap_or("l20") {
        "l20" => ClusterSpec::intra_node_l20(gpus),
        "a100" => ClusterSpec::cross_node_a100(gpus),
        "a800" => ClusterSpec::cross_node_a800(gpus),
        other => return Err(format!("unknown cluster {other:?}")),
    };
    let system = match flags.get("system").map(String::as_str).unwrap_or("gllm") {
        "gllm" => SystemConfig::gllm(),
        "vllm" => SystemConfig::vllm(),
        "sglang" => SystemConfig::sglang(),
        "tdpipe" => SystemConfig::td_pipe(),
        "orca" => SystemConfig::orca(),
        "ft" => SystemConfig::faster_transformer(),
        other => return Err(format!("unknown system {other:?}")),
    };
    let dataset = match flags.get("dataset").map(String::as_str).unwrap_or("sharegpt") {
        "sharegpt" => Dataset::ShareGpt,
        "azure" => Dataset::Azure,
        other => return Err(format!("unknown dataset {other:?}")),
    };
    // `--rate` accepts a single rate or a comma-separated list; multiple
    // rates become a sweep fanned across `--jobs` worker threads.
    let rates: Vec<f64> = match flags.get("rate") {
        Some(s) => s
            .split(',')
            .map(|r| r.trim().parse().map_err(|_| format!("bad value for --rate: {r:?}")))
            .collect::<Result<_, _>>()?,
        None => vec![2.0],
    };
    let jobs: usize = get(&flags, "jobs", gllm_sim::sweep::default_jobs())?;
    let seed: u64 = get(&flags, "seed", 0)?;

    let deployment = Deployment::new(model.clone(), cluster);
    if rates.len() > 1 {
        if flags.contains_key("trace-file") {
            return Err("--trace-file cannot be combined with a --rate list".into());
        }
        return simulate_rate_sweep(&rates, jobs, seed, dataset, &system, &deployment, &flags);
    }
    let rate = rates[0];
    // A real trace file (Azure CSV shape) overrides the synthetic dataset.
    let trace = match flags.get("trace-file") {
        Some(path) => {
            let content = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            gllm_workload::parse_azure_csv(&content).map_err(|e| e.to_string())?
        }
        None => Trace::paper_online(dataset, rate, seed),
    };
    println!(
        "simulating {} on {} x{} | {} @ {rate} req/s | {} requests",
        model.name,
        deployment.cluster.gpu.name,
        gpus,
        dataset.name(),
        trace.len()
    );
    let mut cfg = EngineConfig::default();
    cfg.audit = !flags.contains_key("no-audit");
    let trace_out = flags.get("trace-out").cloned();
    cfg.record_pipeline_trace = trace_out.is_some();
    let r = run_experiment(&trace, &system, &deployment, &cfg);
    println!("system:      {}", r.system);
    println!("finished:    {}/{}", r.report.finished_requests, r.report.total_requests);
    println!("TTFT:        {:.1} ms (p99 {:.1})", r.report.mean_ttft_s * 1e3, r.report.p99_ttft_s * 1e3);
    println!("TPOT:        {:.1} ms (p99 {:.1})", r.report.mean_tpot_s * 1e3, r.report.p99_tpot_s * 1e3);
    println!("E2EL:        {:.2} s", r.report.mean_e2el_s);
    println!("throughput:  {:.0} tok/s", r.report.throughput_tok_s);
    println!("utilisation: {:.1} %", r.mean_utilization * 100.0);
    println!("preemptions: {}", r.preemptions);
    if let Some(audit) = &r.audit {
        println!(
            "audit:       {} batches checked, {} violations",
            audit.batches_checked,
            audit.violations.len()
        );
    }
    if let Some(path) = trace_out {
        // Chrome trace_event format: open in chrome://tracing or Perfetto.
        std::fs::write(&path, r.pipeline_trace.to_chrome_trace_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace:       {} events written to {path}", r.pipeline_trace.events().len());
    }
    Ok(())
}

/// Multi-rate `gllm simulate`: one simulation per rate, fanned across the
/// deterministic sweep harness, reported as a compact table.
fn simulate_rate_sweep(
    rates: &[f64],
    jobs: usize,
    seed: u64,
    dataset: Dataset,
    system: &SystemConfig,
    deployment: &Deployment,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let cfg = EngineConfig {
        audit: !flags.contains_key("no-audit"),
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    let traces: Vec<Trace> =
        rates.iter().map(|&rate| Trace::paper_online(dataset, rate, seed)).collect();
    let job_list: Vec<ExperimentJob> = traces
        .iter()
        .map(|trace| ExperimentJob { trace, system, deployment, cfg: &cfg, tweak: None })
        .collect();
    println!(
        "simulating {} on {} x{} | {} @ {} rates | {} jobs",
        deployment.model.name,
        deployment.cluster.gpu.name,
        deployment.cluster.num_gpus,
        dataset.name(),
        rates.len(),
        jobs
    );
    let results = run_experiments(&job_list, jobs);
    println!(
        "{:>8}  {:>9}  {:>9}  {:>9}  {:>12}  {:>9}  {:>8}",
        "rate", "TTFT(ms)", "TPOT(ms)", "E2EL(s)", "tput(tok/s)", "finished", "preempt"
    );
    for (rate, r) in rates.iter().zip(&results) {
        println!(
            "{:>8}  {:>9.1}  {:>9.1}  {:>9.2}  {:>12.0}  {:>4}/{:<4}  {:>8}",
            rate,
            r.report.mean_ttft_s * 1e3,
            r.report.mean_tpot_s * 1e3,
            r.report.mean_e2el_s,
            r.report.throughput_tok_s,
            r.report.finished_requests,
            r.report.total_requests,
            r.preemptions
        );
    }
    Ok(())
}

/// One benchmark request's measurements.
struct Sample {
    ttft_s: f64,
    e2el_s: f64,
    tokens: usize,
}

fn bench_one(host: &str, port: u16, prompt: &str, max_tokens: usize) -> Result<Sample, String> {
    let start = Instant::now();
    let mut stream = TcpStream::connect((host, port)).map_err(|e| e.to_string())?;
    let body = format!(
        "{{\"prompt\":{},\"max_tokens\":{max_tokens},\"stream\":true}}",
        serde_json::to_string(prompt).expect("string")
    );
    write!(
        stream,
        "POST /v1/completions HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut ttft = None;
    let mut tokens = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break;
        }
        if let Some(data) = line.trim().strip_prefix("data: ") {
            if data == "[DONE]" {
                break;
            }
            tokens += 1;
            ttft.get_or_insert_with(|| start.elapsed().as_secs_f64());
        }
    }
    Ok(Sample {
        ttft_s: ttft.ok_or("no tokens received")?,
        e2el_s: start.elapsed().as_secs_f64(),
        tokens,
    })
}

fn cmd_bench_serving(flags: HashMap<String, String>) -> Result<(), String> {
    let host = flags.get("host").cloned().unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = get(&flags, "port", 8000)?;
    let rate: f64 = get(&flags, "rate", 2.0)?;
    let num_prompts: usize = get(&flags, "num-prompts", 32)?;
    let input_len: usize = get(&flags, "input-len", 24)?;
    let max_tokens: usize = get(&flags, "max-tokens", 16)?;
    let seed: u64 = get(&flags, "seed", 0)?;

    // Poisson arrival schedule (same generator as the simulator's traces).
    let trace = Trace::synthesize(
        Dataset::Fixed { prompt: input_len, output: max_tokens },
        ArrivalProcess::Poisson { rate },
        num_prompts as f64 / rate * 1.5 + 1.0,
        0,
        seed,
    );
    let arrivals: Vec<f64> =
        trace.requests.iter().take(num_prompts).map(|r| r.arrival_s).collect();
    if arrivals.len() < num_prompts {
        return Err("rate/window produced too few arrivals; raise --rate".into());
    }
    println!("benchmarking http://{host}:{port} — {num_prompts} prompts @ {rate} req/s");

    let t0 = Instant::now();
    let handles: Vec<_> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &at)| {
            let host = host.clone();
            let prompt: String =
                (0..input_len).map(|j| char::from(b'a' + ((i + j) % 26) as u8)).collect();
            std::thread::spawn(move || {
                let wait = at - t0.elapsed().as_secs_f64();
                if wait > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(wait));
                }
                bench_one(&host, port, &prompt, max_tokens)
            })
        })
        .collect();
    let mut samples = Vec::new();
    for h in handles {
        match h.join().expect("client thread") {
            Ok(s) => samples.push(s),
            Err(e) => eprintln!("request failed: {e}"),
        }
    }
    if samples.is_empty() {
        return Err("no successful requests".into());
    }
    let ttfts: Vec<f64> = samples.iter().map(|s| s.ttft_s).collect();
    let e2els: Vec<f64> = samples.iter().map(|s| s.e2el_s).collect();
    let tokens: usize = samples.iter().map(|s| s.tokens).sum();
    let wall = t0.elapsed().as_secs_f64();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!("completed:  {}/{}", samples.len(), num_prompts);
    println!("TTFT:       {:.1} ms (p99 {:.1})", mean(&ttfts) * 1e3, percentile(&ttfts, 99.0) * 1e3);
    println!("E2EL:       {:.1} ms (p99 {:.1})", mean(&e2els) * 1e3, percentile(&e2els, 99.0) * 1e3);
    println!("output throughput: {:.1} tok/s", tokens as f64 / wall);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "serve" => cmd_serve(flags),
        "simulate" => cmd_simulate(flags),
        "bench-serving" => cmd_bench_serving(flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
