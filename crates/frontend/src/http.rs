//! Minimal HTTP/1.1 server on `std::net`.
//!
//! No external web framework: requests are read, parsed and routed by
//! hand, one thread per connection (the frontend is not the bottleneck —
//! model execution is). Supports fixed-length bodies via `Content-Length`
//! and chunked responses for SSE streaming.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (`GET`, `POST`, …).
    pub method: String,
    /// Path including no query handling (exact-match routing).
    pub path: String,
    /// Lower-cased header map.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Read one request from the stream. Returns `None` on a clean EOF
    /// before any bytes (keep-alive close) and `Err` on malformed input.
    pub fn read(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let (method, path) = match (parts.next(), parts.next()) {
            (Some(m), Some(p)) => (m.to_string(), p.to_string()),
            _ => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "malformed request line",
                ))
            }
        };
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            if reader.read_line(&mut h)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof in headers",
                ));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        Ok(Some(Request { method, path, headers, body }))
    }
}

/// Write a complete (non-streaming) response.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Begin a chunked SSE response; follow with [`write_sse_event`] calls and
/// finish with [`finish_chunked`].
pub fn start_sse(stream: &mut TcpStream) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Write one SSE `data:` event as an HTTP chunk.
pub fn write_sse_event(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    let payload = format!("data: {data}\n\n");
    write!(stream, "{:x}\r\n", payload.len())?;
    stream.write_all(payload.as_bytes())?;
    write!(stream, "\r\n")?;
    stream.flush()
}

/// Terminate a chunked response.
pub fn finish_chunked(stream: &mut TcpStream) -> std::io::Result<()> {
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn round_trip(raw: &str) -> std::io::Result<Option<Request>> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let req = Request::read(&mut reader);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req = round_trip(
            "POST /v1/completions HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/completions");
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(req.headers.iter().any(|(n, _)| n == "content-length"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip("GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/health");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_request_line_is_an_error() {
        assert!(round_trip("GARBAGE\r\n\r\n").is_err());
    }
}
