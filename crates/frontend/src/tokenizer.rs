//! Byte-level tokenizer.
//!
//! The built-in executable model has a 256-entry vocabulary, so byte-level
//! tokenization is a *bijection*, not an approximation: every UTF-8 string
//! round-trips exactly. (Real deployments plug a trained tokenizer in at
//! this interface; the serving stack is agnostic to the mapping.)

/// Encodes text to token ids and back.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab_size: u32,
}

impl Tokenizer {
    /// A tokenizer for a model with at least 256 vocabulary entries.
    pub fn byte_level(vocab_size: usize) -> Self {
        assert!(vocab_size >= 256, "byte-level needs >= 256 entries");
        Self { vocab_size: vocab_size as u32 }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size as usize
    }

    /// Encode text to token ids (one per UTF-8 byte).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.bytes().map(u32::from).collect()
    }

    /// Decode token ids back to text. Ids ≥ 256 (reachable when the model's
    /// vocabulary exceeds the byte range) and invalid UTF-8 are replaced
    /// with `U+FFFD`.
    pub fn decode(&self, tokens: &[u32]) -> String {
        let bytes: Vec<u8> = tokens
            .iter()
            .map(|&t| u8::try_from(t).unwrap_or(b'?'))
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Decode a single token (streaming).
    pub fn decode_one(&self, token: u32) -> String {
        self.decode(std::slice::from_ref(&token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        let t = Tokenizer::byte_level(256);
        let text = "Hello, gLLM! 123";
        assert_eq!(t.decode(&t.encode(text)), text);
        assert_eq!(t.encode("abc"), vec![97, 98, 99]);
    }

    #[test]
    fn unicode_round_trip() {
        let t = Tokenizer::byte_level(256);
        let text = "流水线并行 🚀 Ünïcødé";
        assert_eq!(t.decode(&t.encode(text)), text);
    }

    #[test]
    fn out_of_byte_range_tokens_are_replaced() {
        let t = Tokenizer::byte_level(1024);
        let s = t.decode(&[72, 105, 999]);
        assert!(s.starts_with("Hi"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "byte-level needs")]
    fn tiny_vocab_rejected() {
        Tokenizer::byte_level(100);
    }
}
