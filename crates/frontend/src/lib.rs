//! The user-facing frontend: RESTful OpenAI-compatible API, tokenizer and
//! command-line interface.
//!
//! The paper's implementation "features a RESTful API frontend and offers
//! core OpenAI-compatible APIs" (§3.4), served by a dedicated frontend
//! process decoupled from model execution (§3.3). This crate reproduces
//! that surface on top of `gllm-runtime`:
//!
//! * [`tokenizer::Tokenizer`] — a byte-level tokenizer (the built-in test
//!   model's 256-entry vocabulary maps 1:1 onto bytes, so byte-level
//!   tokenization is exact, not a stand-in),
//! * [`http`] — a minimal HTTP/1.1 server on `std::net` (no external web
//!   framework; requests are parsed and routed by hand),
//! * [`openai`] — the `/v1/completions` (blocking and SSE-streaming),
//!   `/v1/models` and `/health` endpoints with OpenAI-shaped JSON,
//! * [`api_server::ApiServer`] — glue: one dispatcher thread demultiplexes
//!   the runtime's token stream to per-request channels, mirroring the
//!   paper's decoupled frontend,
//! * `src/bin/gllm.rs` — the CLI: `gllm serve`, `gllm simulate` and
//!   `gllm bench-serving` (the artifact's `api_server` +
//!   `benchmark_serving.py` workflow).

pub mod api_server;
pub mod http;
pub mod openai;
pub mod tokenizer;

pub use api_server::ApiServer;
pub use tokenizer::Tokenizer;
