//! OpenAI-compatible request/response types for `/v1/completions`.

use serde::{Deserialize, Serialize};

/// `POST /v1/completions` request body (the subset the paper's artifact
/// exercises via `benchmark_serving.py`).
#[derive(Debug, Clone, Deserialize)]
pub struct CompletionRequest {
    /// Model name (informational; one model is loaded).
    #[serde(default)]
    pub model: Option<String>,
    /// The prompt text.
    pub prompt: String,
    /// Output tokens to generate.
    #[serde(default = "default_max_tokens")]
    pub max_tokens: usize,
    /// Sampling temperature; 0 = greedy.
    #[serde(default)]
    pub temperature: f32,
    /// Top-k truncation (0 = off).
    #[serde(default)]
    pub top_k: usize,
    /// Nucleus mass (1.0 = off).
    #[serde(default = "default_top_p")]
    pub top_p: f32,
    /// Sampling seed.
    #[serde(default)]
    pub seed: u64,
    /// Stream tokens as SSE events.
    #[serde(default)]
    pub stream: bool,
}

fn default_max_tokens() -> usize {
    16
}
fn default_top_p() -> f32 {
    1.0
}

/// One completion choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Choice {
    /// Generated text (or the delta in streaming mode).
    pub text: String,
    /// Choice index (always 0 here).
    pub index: usize,
    /// `"length"` when `max_tokens` was produced; `null` mid-stream.
    pub finish_reason: Option<String>,
}

/// Token accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Usage {
    /// Prompt tokens.
    pub prompt_tokens: usize,
    /// Generated tokens.
    pub completion_tokens: usize,
    /// Sum of the above.
    pub total_tokens: usize,
}

/// `POST /v1/completions` response body (also the SSE event payload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompletionResponse {
    /// Response id (`cmpl-<n>`).
    pub id: String,
    /// `"text_completion"`.
    pub object: String,
    /// Model name.
    pub model: String,
    /// Completion choices.
    pub choices: Vec<Choice>,
    /// Present on the final (or only) payload.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub usage: Option<Usage>,
}

/// One chat message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChatMessage {
    /// `"system"`, `"user"` or `"assistant"`.
    pub role: String,
    /// Message text.
    pub content: String,
}

/// `POST /v1/chat/completions` request body.
#[derive(Debug, Clone, Deserialize)]
pub struct ChatCompletionRequest {
    /// Model name (informational).
    #[serde(default)]
    pub model: Option<String>,
    /// Conversation so far.
    pub messages: Vec<ChatMessage>,
    /// Output tokens to generate.
    #[serde(default = "default_max_tokens")]
    pub max_tokens: usize,
    /// Sampling temperature; 0 = greedy.
    #[serde(default)]
    pub temperature: f32,
    /// Top-k truncation (0 = off).
    #[serde(default)]
    pub top_k: usize,
    /// Nucleus mass (1.0 = off).
    #[serde(default = "default_top_p")]
    pub top_p: f32,
    /// Sampling seed.
    #[serde(default)]
    pub seed: u64,
}

impl ChatCompletionRequest {
    /// Flatten the conversation into a prompt string (a real deployment
    /// would apply the model's chat template here).
    pub fn to_prompt(&self) -> String {
        let mut out = String::new();
        for m in &self.messages {
            out.push_str(&m.role);
            out.push_str(": ");
            out.push_str(&m.content);
            out.push('\n');
        }
        out.push_str("assistant: ");
        out
    }
}

/// One chat choice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChatChoice {
    /// The assistant's reply.
    pub message: ChatMessage,
    /// Choice index.
    pub index: usize,
    /// `"length"`.
    pub finish_reason: Option<String>,
}

/// `POST /v1/chat/completions` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChatCompletionResponse {
    /// Response id (`chatcmpl-<n>`).
    pub id: String,
    /// `"chat.completion"`.
    pub object: String,
    /// Model name.
    pub model: String,
    /// Choices.
    pub choices: Vec<ChatChoice>,
    /// Token accounting.
    pub usage: Usage,
}

/// `GET /v1/models` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelList {
    /// `"list"`.
    pub object: String,
    /// Available models.
    pub data: Vec<ModelCard>,
}

/// One model entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCard {
    /// Model id.
    pub id: String,
    /// `"model"`.
    pub object: String,
    /// Owner tag.
    pub owned_by: String,
}

/// Error body (OpenAI shape).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Error payload.
    pub error: ErrorBody,
}

/// Error details.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable message.
    pub message: String,
    /// Error type slug.
    #[serde(rename = "type")]
    pub kind: String,
}

impl ErrorResponse {
    /// Build an error body.
    pub fn new(kind: &str, message: impl Into<String>) -> Self {
        Self { error: ErrorBody { message: message.into(), kind: kind.into() } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_apply() {
        let r: CompletionRequest = serde_json::from_str(r#"{"prompt":"hi"}"#).unwrap();
        assert_eq!(r.max_tokens, 16);
        assert_eq!(r.temperature, 0.0);
        assert_eq!(r.top_p, 1.0);
        assert!(!r.stream);
    }

    #[test]
    fn response_serialises_openai_shape() {
        let resp = CompletionResponse {
            id: "cmpl-1".into(),
            object: "text_completion".into(),
            model: "tiny".into(),
            choices: vec![Choice { text: "ok".into(), index: 0, finish_reason: Some("length".into()) }],
            usage: Some(Usage { prompt_tokens: 3, completion_tokens: 2, total_tokens: 5 }),
        };
        let v: serde_json::Value = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(v["choices"][0]["text"], "ok");
        assert_eq!(v["usage"]["total_tokens"], 5);
    }

    #[test]
    fn usage_omitted_mid_stream() {
        let resp = CompletionResponse {
            id: "cmpl-1".into(),
            object: "text_completion".into(),
            model: "tiny".into(),
            choices: vec![Choice { text: "t".into(), index: 0, finish_reason: None }],
            usage: None,
        };
        let s = serde_json::to_string(&resp).unwrap();
        assert!(!s.contains("usage"));
    }
}
