//! Reduction of timelines to the paper's reported numbers.

use serde::{Deserialize, Serialize};

use crate::recorder::MetricsRecorder;

/// A joint TTFT/TPOT service-level objective, as the artifact's
/// `--goodput ttft:1000 tpot:250` (milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Maximum acceptable TTFT, seconds.
    pub ttft_s: f64,
    /// Maximum acceptable TPOT, seconds.
    pub tpot_s: f64,
}

impl SloSpec {
    /// Build from milliseconds (the paper's notation).
    pub fn from_ms(ttft_ms: f64, tpot_ms: f64) -> Self {
        Self { ttft_s: ttft_ms / 1000.0, tpot_s: tpot_ms / 1000.0 }
    }

    /// The paper's Fig. 14a constraint for ShareGPT: TTFT ≤ 2.5 s,
    /// TPOT ≤ 100 ms.
    pub fn sharegpt_100b() -> Self {
        Self::from_ms(2500.0, 100.0)
    }

    /// The paper's Fig. 14b constraint for Azure: TTFT ≤ 4 s, TPOT ≤ 200 ms.
    pub fn azure_100b() -> Self {
        Self::from_ms(4000.0, 200.0)
    }
}

/// Aggregated serving metrics for one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests submitted.
    pub total_requests: usize,
    /// Requests that completed.
    pub finished_requests: usize,
    /// Mean time-to-first-token, seconds.
    pub mean_ttft_s: f64,
    /// 99th-percentile TTFT, seconds.
    pub p99_ttft_s: f64,
    /// Mean time-per-output-token, seconds.
    pub mean_tpot_s: f64,
    /// 99th-percentile TPOT, seconds.
    pub p99_tpot_s: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_e2el_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_e2el_s: f64,
    /// Input + output tokens processed per second (the paper's throughput
    /// metric: total tokens over makespan).
    pub throughput_tok_s: f64,
    /// Output tokens per second only.
    pub output_throughput_tok_s: f64,
    /// Experiment makespan (first arrival to last completion), seconds.
    pub makespan_s: f64,
    /// Total preemptions across requests.
    pub preemptions: u64,
}

impl ServingReport {
    /// Reduce a recorder's timelines. Only finished requests contribute to
    /// latency statistics and throughput, matching the paper's benchmark
    /// script which waits for all responses.
    pub fn from_recorder(rec: &MetricsRecorder) -> Self {
        let timelines = rec.timelines();
        let finished: Vec<_> = timelines
            .iter()
            .filter(|(_, t)| t.finish_s.is_some())
            .map(|(_, t)| *t)
            .collect();

        let ttfts: Vec<f64> = finished.iter().filter_map(|t| t.ttft()).collect();
        let tpots: Vec<f64> = finished.iter().filter_map(|t| t.tpot()).collect();
        let e2els: Vec<f64> = finished.iter().filter_map(|t| t.e2el()).collect();

        // Both endpoints fold over *finished* requests: throughput divides
        // finished tokens by this span, so an early-arriving request that
        // never finished must not stretch it.
        let start = finished
            .iter()
            .map(|t| t.arrival_s)
            .fold(f64::INFINITY, f64::min);
        let end = finished
            .iter()
            .filter_map(|t| t.finish_s)
            .fold(f64::NEG_INFINITY, f64::max);
        let makespan_s = if finished.is_empty() { 0.0 } else { end - start };

        let in_tokens: usize = finished.iter().map(|t| t.prompt_len).sum();
        let out_tokens: usize = finished.iter().map(|t| t.output_tokens).sum();
        let (throughput, out_throughput) = if makespan_s > 0.0 {
            (
                (in_tokens + out_tokens) as f64 / makespan_s,
                out_tokens as f64 / makespan_s,
            )
        } else {
            (0.0, 0.0)
        };

        Self {
            total_requests: timelines.len(),
            finished_requests: finished.len(),
            mean_ttft_s: mean(&ttfts),
            p99_ttft_s: percentile(&ttfts, 99.0),
            mean_tpot_s: mean(&tpots),
            p99_tpot_s: percentile(&tpots, 99.0),
            mean_e2el_s: mean(&e2els),
            p99_e2el_s: percentile(&e2els, 99.0),
            throughput_tok_s: throughput,
            output_throughput_tok_s: out_throughput,
            makespan_s,
            preemptions: timelines.iter().map(|(_, t)| t.preemptions as u64).sum(),
        }
    }

    /// Fraction of finished requests meeting `slo` on both TTFT and TPOT.
    /// Requests with a single output token are judged on TTFT alone.
    pub fn slo_attainment(rec: &MetricsRecorder, slo: SloSpec) -> f64 {
        let finished: Vec<_> = rec
            .timelines()
            .into_iter()
            .filter(|(_, t)| t.finish_s.is_some())
            .collect();
        if finished.is_empty() {
            return 0.0;
        }
        let ok = finished
            .iter()
            .filter(|(_, t)| {
                let ttft_ok = t.ttft().is_some_and(|v| v <= slo.ttft_s);
                let tpot_ok = t.tpot().is_none_or(|v| v <= slo.tpot_s);
                ttft_ok && tpot_ok
            })
            .count();
        ok as f64 / finished.len() as f64
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    // Clamp so an out-of-range p (e.g. 150) cannot index past the end.
    let p = p.clamp(0.0, 100.0);
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let rank = (p / 100.0) * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    s[lo] * (1.0 - frac) + s[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_run() -> MetricsRecorder {
        let mut r = MetricsRecorder::new();
        // Request 0: TTFT 0.1, 3 tokens ending at 0.5 → TPOT 0.2, E2EL 0.5.
        r.on_arrival(0, 0.0, 100);
        r.on_token(0, 0.1);
        r.on_token(0, 0.3);
        r.on_token(0, 0.5);
        r.on_finish(0, 0.5);
        // Request 1: TTFT 0.4, 2 tokens ending at 1.0 → TPOT 0.5, E2EL 0.9.
        r.on_arrival(1, 0.1, 50);
        r.on_token(1, 0.5);
        r.on_token(1, 1.0);
        r.on_finish(1, 1.0);
        r
    }

    #[test]
    fn report_reduces_latencies() {
        let rep = ServingReport::from_recorder(&simple_run());
        assert_eq!(rep.total_requests, 2);
        assert_eq!(rep.finished_requests, 2);
        assert!((rep.mean_ttft_s - 0.25).abs() < 1e-12);
        assert!((rep.mean_tpot_s - 0.35).abs() < 1e-12);
        assert!((rep.mean_e2el_s - 0.7).abs() < 1e-12);
    }

    #[test]
    fn throughput_counts_input_and_output_tokens_over_makespan() {
        let rep = ServingReport::from_recorder(&simple_run());
        // makespan = 1.0 − 0.0; tokens = 150 input + 5 output.
        assert!((rep.makespan_s - 1.0).abs() < 1e-12);
        assert!((rep.throughput_tok_s - 155.0).abs() < 1e-9);
        assert!((rep.output_throughput_tok_s - 5.0).abs() < 1e-9);
    }

    #[test]
    fn unfinished_requests_excluded_from_latency_stats() {
        let mut r = simple_run();
        r.on_arrival(2, 0.2, 10);
        r.on_token(2, 5.0);
        let rep = ServingReport::from_recorder(&r);
        assert_eq!(rep.total_requests, 3);
        assert_eq!(rep.finished_requests, 2);
        assert!((rep.mean_ttft_s - 0.25).abs() < 1e-12, "straggler leaked in");
    }

    #[test]
    fn makespan_ignores_unfinished_early_arrivals() {
        // Regression: `start` used to fold arrivals over ALL timelines
        // while `end` folded finishes over FINISHED ones, so an unfinished
        // request arriving at t=0 stretched the makespan (and deflated
        // throughput) of work that really spanned 2.0 → 4.0.
        let mut r = MetricsRecorder::new();
        r.on_arrival(0, 0.0, 10); // never finishes
        r.on_token(0, 3.0);
        r.on_arrival(1, 2.0, 40);
        r.on_token(1, 3.5);
        r.on_token(1, 4.0);
        r.on_finish(1, 4.0);
        let rep = ServingReport::from_recorder(&r);
        assert!((rep.makespan_s - 2.0).abs() < 1e-12, "got {}", rep.makespan_s);
        // 40 input + 2 output tokens over the finished span only.
        assert!((rep.throughput_tok_s - 21.0).abs() < 1e-9);
    }

    #[test]
    fn slo_attainment_counts_joint_constraint() {
        let r = simple_run();
        // Request 0 (ttft .1, tpot .2) passes; request 1 (ttft .4, tpot .5)
        // fails TPOT.
        let half = ServingReport::slo_attainment(&r, SloSpec { ttft_s: 0.45, tpot_s: 0.3 });
        assert!((half - 0.5).abs() < 1e-12);
        let all = ServingReport::slo_attainment(&r, SloSpec { ttft_s: 1.0, tpot_s: 1.0 });
        assert_eq!(all, 1.0);
        let none = ServingReport::slo_attainment(&r, SloSpec { ttft_s: 0.05, tpot_s: 1.0 });
        assert_eq!(none, 0.0);
    }

    #[test]
    fn empty_recorder_yields_zeroes() {
        let rep = ServingReport::from_recorder(&MetricsRecorder::new());
        assert_eq!(rep.total_requests, 0);
        assert_eq!(rep.throughput_tok_s, 0.0);
        assert_eq!(
            ServingReport::slo_attainment(&MetricsRecorder::new(), SloSpec::sharegpt_100b()),
            0.0
        );
    }

    #[test]
    fn paper_slo_presets() {
        assert_eq!(SloSpec::sharegpt_100b().ttft_s, 2.5);
        assert_eq!(SloSpec::azure_100b().tpot_s, 0.2);
    }
}
