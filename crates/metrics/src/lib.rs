//! Serving metrics.
//!
//! Implements exactly the paper's §4.1 metric set:
//!
//! * **TTFT** — time from request arrival to its first output token,
//! * **TPOT** — average time per output token after the first,
//! * **E2EL** — end-to-end latency from arrival to completion,
//! * **Throughput** — input + output tokens processed per second,
//! * **SLO attainment** — fraction of finished requests meeting joint
//!   TTFT/TPOT constraints (the artifact's `--goodput ttft:… tpot:…`).
//!
//! [`recorder::MetricsRecorder`] collects per-request timelines from either
//! execution plane (virtual simulator time or wall-clock runtime time);
//! [`report::ServingReport`] reduces them to the numbers the paper plots;
//! [`series`] holds the time-series probes behind Figures 1 and 4 (batched
//! token counts per iteration, GPU busy intervals → utilisation curves).
//!
//! Two correctness-facing layers ride alongside the metrics:
//!
//! * [`audit::InvariantAuditor`] shadows the scheduler from its event
//!   stream and flags KV-accounting, overcommit, pipeline-depth, budget
//!   and FCFS violations as they happen;
//! * [`trace::PipelineTrace`] is a structured per-batch event log with a
//!   Chrome `trace_event` exporter for chrome://tracing / Perfetto.

pub mod audit;
pub mod recorder;
pub mod report;
pub mod series;
pub mod trace;

pub use audit::{AuditReport, AuditSnapshot, InvariantAuditor, Invariant, KvObservation, PlanCaps, Violation};
pub use recorder::{MetricsRecorder, RequestTimeline};
pub use report::{ServingReport, SloSpec};
pub use series::{BusyTracker, TokenTrace, TokenTracePoint};
pub use trace::{PipelineTrace, TraceEvent, TraceEventKind};
