//! Pipeline invariant auditing.
//!
//! The simulator and the threaded runtime share one scheduling contract:
//! KV is allocated block-granularly at schedule time, at most `#PP_depth`
//! micro-batches coexist in the pipeline, committed plans never exceed
//! what the policy budgeted, and prefill admission is FCFS. Violations of
//! any of these are silent accounting bugs — throughput numbers stay
//! plausible while KV leaks or batches overcommit and thrash.
//!
//! [`InvariantAuditor`] shadows the scheduler's state from the same event
//! stream both execution planes already produce (schedule, complete,
//! evict) and cross-checks it against the KV cache manager's observed
//! occupancy on every transition. It checks:
//!
//! 1. **KV accounting** — the manager's used/free block counts equal the
//!    sum of per-sequence allocations at block granularity,
//! 2. **KV overcommit** — a *proposed* plan fits the free blocks it was
//!    planned against (catches token-granular reservations that admission
//!    would silently trim),
//! 3. **Pipeline depth** — never more than `#PP_depth` batches in flight,
//! 4. **Budget conformance** — plans respect the policy's declared
//!    prefill/decode budgets, and admission only ever trims a plan,
//! 5. **FCFS admission** — a sequence never starts prefilling before an
//!    earlier arrival that has not started (and is still live).
//!
//! The auditor is cheap — a hash map of live contexts and O(plan) work
//! per batch — so both planes keep it on in every test.

use std::collections::{BTreeMap, BTreeSet};

use gllm_core::{BatchPlan, Blocks, Tokens};
use serde::Serialize;

// Shared with the scheduler: blocks a sequence at `context` tokens must
// acquire to append `tokens` more (the page-table invariant of the KV
// manager). Re-exported so existing auditor callers keep compiling.
pub use gllm_core::blocks_to_append;

/// Occupancy observed from the KV cache manager at a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct KvObservation {
    /// Free physical blocks.
    pub free_blocks: Blocks,
    /// Blocks with at least one owner.
    pub used_blocks: Blocks,
}

/// Budget caps a policy declared for one scheduling decision (see
/// `SchedulePolicy::budget_caps`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PlanCaps {
    /// Maximum batched prefill tokens.
    pub prefill_tokens: Tokens,
    /// Maximum decode sequences.
    pub decode_seqs: usize,
}

/// Which contract a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Invariant {
    /// Shadow per-sequence allocations disagree with the KV manager.
    KvAccounting,
    /// A proposed plan did not fit the free blocks it was planned against.
    KvOvercommit,
    /// More than `#PP_depth` micro-batches in flight.
    PipelineDepth,
    /// A plan exceeded the policy's declared budgets, or admission grew it.
    BudgetConformance,
    /// Prefill admission inverted FCFS order.
    FcfsAdmission,
    /// The runtime's own bookkeeping went inconsistent (e.g. a committed
    /// chunk without a KV table or pool entry) and the affected request
    /// was rejected instead of panicking the driver.
    RuntimeIntegrity,
}

/// One detected contract violation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Violation {
    /// Engine time (virtual or wall-clock seconds) of the transition.
    pub t_s: f64,
    /// Micro-batch under audit, if the transition had one.
    pub batch: Option<u64>,
    /// Broken contract.
    pub invariant: Invariant,
    /// Human-readable specifics.
    pub detail: String,
}

/// Point-in-time digest of the auditor's shadow state — attached to stall
/// errors so a wedged runtime reports *why* it stopped scheduling.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditSnapshot {
    /// Time of the last audited transition.
    pub t_s: f64,
    /// Micro-batches audited so far.
    pub batches_checked: u64,
    /// Micro-batches currently in flight.
    pub in_flight: usize,
    /// Pipeline depth limit.
    pub depth: usize,
    /// Sequences currently holding KV.
    pub live_kv_seqs: usize,
    /// Blocks the shadow accounting says are allocated.
    pub shadow_used_blocks: Blocks,
    /// Total physical blocks.
    pub total_blocks: Blocks,
    /// Violations recorded so far.
    pub violations: usize,
    /// Injected faults observed so far (kills, drops, delays, KV-alloc
    /// failures — see `gllm-runtime`'s fault module).
    pub faults_injected: u64,
    /// Completed pipeline recoveries (teardown + respawn + requeue).
    pub recoveries: u64,
    /// In-flight micro-batches rolled back and requeued across all
    /// recoveries.
    pub batches_requeued: u64,
    /// Requests terminated with a structured failure event instead of an
    /// output (KV-fault exhaustion, integrity rejection, fail-open).
    pub requests_failed: u64,
}

/// Final audit result of a run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditReport {
    /// Every violation, in detection order.
    pub violations: Vec<Violation>,
    /// Micro-batches audited.
    pub batches_checked: u64,
    /// Shadow state at the end of the run.
    pub final_snapshot: AuditSnapshot,
}

impl AuditReport {
    /// True when the run broke no invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with every violation listed unless the run was clean.
    pub fn assert_clean(&self, plane: &str) {
        assert!(
            self.is_clean(),
            "{plane}: {} invariant violation(s):\n{}",
            self.violations.len(),
            self.violations
                .iter()
                .map(|v| format!("  [{:?}] t={:.6} batch={:?}: {}", v.invariant, v.t_s, v.batch, v.detail))
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

/// Shadow scheduler state cross-checked on every transition.
#[derive(Debug, Clone)]
pub struct InvariantAuditor {
    block_size: Tokens,
    total_blocks: Blocks,
    depth: usize,

    in_flight: usize,
    batches_checked: u64,
    last_t: f64,

    faults_injected: u64,
    recoveries: u64,
    batches_requeued: u64,
    requests_failed: u64,

    /// Arrival index per request id, in submission order. Ordered maps
    /// keep violation details deterministic across runs (sim-determinism).
    arrival_idx: BTreeMap<u64, usize>,
    next_arrival: usize,
    /// Requests that have received their first prefill chunk.
    started: BTreeSet<u64>,
    /// Requests that finished or were rejected (exempt from FCFS checks).
    gone: BTreeSet<u64>,
    /// Committed KV tokens per sequence currently holding cache.
    ctx: BTreeMap<u64, Tokens>,

    violations: Vec<Violation>,
}

impl InvariantAuditor {
    /// An auditor over `total_blocks` KV blocks of `block_size` tokens on
    /// a pipeline of `depth` stages.
    pub fn new(total_blocks: Blocks, block_size: Tokens, depth: usize) -> Self {
        Self {
            block_size: block_size.max(Tokens(1)),
            total_blocks,
            depth: depth.max(1),
            in_flight: 0,
            batches_checked: 0,
            last_t: 0.0,
            faults_injected: 0,
            recoveries: 0,
            batches_requeued: 0,
            requests_failed: 0,
            arrival_idx: BTreeMap::new(),
            next_arrival: 0,
            started: BTreeSet::new(),
            gone: BTreeSet::new(),
            ctx: BTreeMap::new(),
            violations: Vec::new(),
        }
    }

    /// A request entered the system (records FCFS arrival order).
    pub fn on_arrival(&mut self, seq: u64) {
        self.arrival_idx.entry(seq).or_insert_with(|| {
            let i = self.next_arrival;
            self.next_arrival += 1;
            i
        });
    }

    /// A request was rejected before admission (oversized, empty, …).
    pub fn on_abort(&mut self, seq: u64) {
        self.gone.insert(seq);
    }

    /// A sequence's KV was evicted (recompute preemption): it returns to
    /// the waiting queue with an empty context.
    pub fn on_evict(&mut self, seq: u64) {
        self.ctx.remove(&seq);
    }

    /// An injected fault fired somewhere in the pipeline (the runtime
    /// drains the injector's firing log into this counter so every fault
    /// is visible in the snapshot, even ones that needed no recovery).
    pub fn on_fault(&mut self, t_s: f64) {
        self.last_t = t_s;
        self.faults_injected += 1;
    }

    /// The driver tore the pipeline down, rolled back `lost_batches`
    /// in-flight micro-batches for requeueing, and respawned the stages.
    /// The rolled-back batches leave the in-flight count: their
    /// completions will never arrive.
    pub fn on_recovery(&mut self, t_s: f64, lost_batches: usize) {
        self.last_t = t_s;
        self.recoveries += 1;
        self.batches_requeued += lost_batches as u64;
        self.in_flight = self.in_flight.saturating_sub(lost_batches);
    }

    /// A live request was terminated with a structured failure event
    /// (bounded retries exhausted, or fail-open after too many
    /// recoveries). Like an abort, it leaves the FCFS universe and its
    /// shadow KV is forgotten.
    pub fn on_request_failed(&mut self, t_s: f64, seq: u64) {
        self.last_t = t_s;
        self.requests_failed += 1;
        self.gone.insert(seq);
        self.ctx.remove(&seq);
    }

    /// The runtime detected an internal bookkeeping inconsistency and
    /// rejected the request instead of panicking. Recorded as a
    /// [`Invariant::RuntimeIntegrity`] violation.
    pub fn on_integrity_failure(&mut self, t_s: f64, batch: Option<u64>, detail: String) {
        self.violate(t_s, batch, Invariant::RuntimeIntegrity, detail);
    }

    /// Audit one scheduling decision: `proposed` is the policy's raw plan,
    /// `committed` what admission actually placed, `before`/`after` the KV
    /// occupancy around admission, `caps` the policy's declared budgets.
    #[allow(clippy::too_many_arguments)]
    pub fn on_schedule(
        &mut self,
        t_s: f64,
        batch: u64,
        proposed: &BatchPlan,
        committed: &BatchPlan,
        caps: Option<PlanCaps>,
        before: KvObservation,
        after: KvObservation,
    ) {
        self.last_t = t_s;
        self.batches_checked += 1;

        // (3) Pipeline depth.
        if self.in_flight >= self.depth {
            self.violate(
                t_s,
                Some(batch),
                Invariant::PipelineDepth,
                format!("scheduled with {} batches already in flight (depth {})", self.in_flight, self.depth),
            );
        }
        self.in_flight += 1;

        self.check_overcommit(t_s, batch, proposed, before);
        self.check_conformance(t_s, batch, proposed, committed, caps);
        self.check_fcfs(t_s, batch, committed);

        // (1) Apply the committed plan to the shadow allocations, then the
        // manager must agree block-for-block.
        for c in &committed.prefill {
            let cur = self.ctx.get(&c.seq).copied().unwrap_or(Tokens::ZERO);
            if cur != c.context_before {
                self.violate(
                    t_s,
                    Some(batch),
                    Invariant::KvAccounting,
                    format!("seq {} prefill chunk claims context {} but shadow holds {}", c.seq, c.context_before, cur),
                );
            }
            self.ctx.insert(c.seq, cur + c.tokens);
            self.started.insert(c.seq);
        }
        for d in &committed.decode {
            let cur = self.ctx.get(&d.seq).copied().unwrap_or(Tokens::ZERO);
            if cur != d.context_before {
                self.violate(
                    t_s,
                    Some(batch),
                    Invariant::KvAccounting,
                    format!("seq {} decode slot claims context {} but shadow holds {}", d.seq, d.context_before, cur),
                );
            }
            self.ctx.insert(d.seq, cur + Tokens(1));
        }
        self.check_kv(t_s, Some(batch), after);
    }

    /// Audit one batch completion. `finished` lists sequences whose KV the
    /// engine freed; `after` is the occupancy after those frees.
    pub fn on_complete(&mut self, t_s: f64, batch: u64, finished: &[u64], after: KvObservation) {
        self.last_t = t_s;
        if self.in_flight == 0 {
            self.violate(
                t_s,
                Some(batch),
                Invariant::PipelineDepth,
                "batch completed with nothing in flight".to_string(),
            );
        } else {
            self.in_flight -= 1;
        }
        for &id in finished {
            self.gone.insert(id);
            if self.ctx.remove(&id).is_none() {
                self.violate(
                    t_s,
                    Some(batch),
                    Invariant::KvAccounting,
                    format!("finished seq {id} held no shadow KV"),
                );
            }
        }
        self.check_kv(t_s, Some(batch), after);
    }

    /// (2) The proposed plan must fit the free blocks it was planned
    /// against. Decode growth may legitimately exceed free space (that is
    /// what recompute preemption is for) — but then the policy must not
    /// propose prefill on top.
    fn check_overcommit(&mut self, t_s: f64, batch: u64, proposed: &BatchPlan, before: KvObservation) {
        let bs = self.block_size;
        let mut left = before.free_blocks;
        let mut decode_exhausted = false;
        for d in &proposed.decode {
            let need = blocks_to_append(d.context_before, Tokens(1), bs);
            if need > left {
                decode_exhausted = true;
                left = Blocks::ZERO;
            } else {
                left -= need;
            }
        }
        if decode_exhausted {
            // Preemption will make room for the decodes; new prefill blocks
            // on top would be indefensible. Chunks that fit entirely in the
            // slack of their sequence's own partial last block allocate
            // nothing, so they stay legal.
            for c in &proposed.prefill {
                let need = blocks_to_append(c.context_before, c.tokens, bs);
                if !need.is_zero() {
                    self.violate(
                        t_s,
                        Some(batch),
                        Invariant::KvOvercommit,
                        format!(
                            "chunk for seq {} needs {} fresh block(s) while decode growth \
                             alone exceeds {} free blocks",
                            c.seq, need, before.free_blocks
                        ),
                    );
                    return;
                }
            }
            return;
        }
        for c in &proposed.prefill {
            let need = blocks_to_append(c.context_before, c.tokens, bs);
            if need > left {
                self.violate(
                    t_s,
                    Some(batch),
                    Invariant::KvOvercommit,
                    format!(
                        "proposed plan overcommits KV: chunk for seq {} needs {} blocks with {} left \
                         ({} free before the batch, block size {})",
                        c.seq, need, left, before.free_blocks, bs
                    ),
                );
                return;
            }
            left -= need;
        }
    }

    /// (4) Admission only trims; the policy's declared budgets bound the
    /// proposal.
    fn check_conformance(
        &mut self,
        t_s: f64,
        batch: u64,
        proposed: &BatchPlan,
        committed: &BatchPlan,
        caps: Option<PlanCaps>,
    ) {
        if let Some(caps) = caps {
            let p = proposed.prefill_tokens();
            if p > caps.prefill_tokens {
                self.violate(
                    t_s,
                    Some(batch),
                    Invariant::BudgetConformance,
                    format!("proposed {} prefill tokens over the policy's budget {}", p, caps.prefill_tokens),
                );
            }
            if proposed.decode.len() > caps.decode_seqs {
                self.violate(
                    t_s,
                    Some(batch),
                    Invariant::BudgetConformance,
                    format!("proposed {} decode seqs over the policy's budget {}", proposed.decode.len(), caps.decode_seqs),
                );
            }
        }
        for c in &committed.prefill {
            match proposed.prefill.iter().find(|p| p.seq == c.seq) {
                Some(p) if c.tokens <= p.tokens => {}
                Some(p) => self.violate(
                    t_s,
                    Some(batch),
                    Invariant::BudgetConformance,
                    format!("admission grew seq {}'s chunk from {} to {} tokens", c.seq, p.tokens, c.tokens),
                ),
                None => self.violate(
                    t_s,
                    Some(batch),
                    Invariant::BudgetConformance,
                    format!("admission invented a prefill chunk for seq {}", c.seq),
                ),
            }
        }
        for d in &committed.decode {
            if !proposed.decode.iter().any(|p| p.seq == d.seq) {
                self.violate(
                    t_s,
                    Some(batch),
                    Invariant::BudgetConformance,
                    format!("admission invented a decode slot for seq {}", d.seq),
                );
            }
        }
    }

    /// (5) FCFS: chunks within a plan follow arrival order, and a sequence
    /// never starts while an earlier arrival waits unstarted.
    fn check_fcfs(&mut self, t_s: f64, batch: u64, committed: &BatchPlan) {
        let mut prev_idx: Option<usize> = None;
        for c in &committed.prefill {
            let Some(&idx) = self.arrival_idx.get(&c.seq) else { continue };
            if let Some(p) = prev_idx {
                if idx < p {
                    self.violate(
                        t_s,
                        Some(batch),
                        Invariant::FcfsAdmission,
                        format!("prefill chunks out of arrival order (seq {} after a later arrival)", c.seq),
                    );
                }
            }
            prev_idx = Some(idx);
            if !self.started.contains(&c.seq) {
                // First-ever chunk: every earlier arrival must have started
                // or left the system.
                let skipped: Vec<u64> = self
                    .arrival_idx
                    .iter()
                    .filter(|(id, &i)| i < idx && !self.started.contains(id) && !self.gone.contains(id))
                    .map(|(&id, _)| id)
                    .collect();
                if !skipped.is_empty() {
                    self.violate(
                        t_s,
                        Some(batch),
                        Invariant::FcfsAdmission,
                        format!("seq {} started before earlier unstarted arrivals {:?}", c.seq, skipped),
                    );
                }
                self.started.insert(c.seq);
            }
        }
    }

    /// (1) Shadow allocations vs. observed occupancy, block-granular.
    fn check_kv(&mut self, t_s: f64, batch: Option<u64>, obs: KvObservation) {
        let bs = self.block_size;
        let shadow_used: Blocks = self.ctx.values().map(|&c| c.to_blocks(bs)).sum();
        if shadow_used != obs.used_blocks || self.total_blocks - shadow_used != obs.free_blocks {
            self.violate(
                t_s,
                batch,
                Invariant::KvAccounting,
                format!(
                    "shadow accounting says {}/{} blocks used, manager reports {} used / {} free",
                    shadow_used, self.total_blocks, obs.used_blocks, obs.free_blocks
                ),
            );
        }
    }

    fn violate(&mut self, t_s: f64, batch: Option<u64>, invariant: Invariant, detail: String) {
        self.violations.push(Violation { t_s, batch, invariant, detail });
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True while no invariant has been broken.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Current shadow-state digest.
    pub fn snapshot(&self) -> AuditSnapshot {
        let bs = self.block_size;
        AuditSnapshot {
            t_s: self.last_t,
            batches_checked: self.batches_checked,
            in_flight: self.in_flight,
            depth: self.depth,
            live_kv_seqs: self.ctx.len(),
            shadow_used_blocks: self.ctx.values().map(|&c| c.to_blocks(bs)).sum(),
            total_blocks: self.total_blocks,
            violations: self.violations.len(),
            faults_injected: self.faults_injected,
            recoveries: self.recoveries,
            batches_requeued: self.batches_requeued,
            requests_failed: self.requests_failed,
        }
    }

    /// Consume the auditor into the final report. When the engine drained
    /// cleanly, also verifies nothing leaked: no live shadow allocations
    /// and nothing in flight.
    pub fn into_report(self, drained: bool) -> AuditReport {
        let mut this = self;
        if drained {
            if !this.ctx.is_empty() {
                let leaked: Vec<u64> = this.ctx.keys().copied().collect();
                let t = this.last_t;
                this.violate(
                    t,
                    None,
                    Invariant::KvAccounting,
                    format!("drained run left shadow KV for seqs {leaked:?}"),
                );
            }
            if this.in_flight != 0 {
                let (t, n) = (this.last_t, this.in_flight);
                this.violate(
                    t,
                    None,
                    Invariant::PipelineDepth,
                    format!("drained run left {n} batches in flight"),
                );
            }
        }
        let final_snapshot = this.snapshot();
        AuditReport {
            violations: this.violations,
            batches_checked: this.batches_checked,
            final_snapshot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_core::{BatchPlan, DecodeSlot, PrefillChunk};

    fn chunk(seq: u64, tokens: usize, context_before: usize, completes: bool) -> PrefillChunk {
        PrefillChunk {
            seq,
            tokens: Tokens(tokens),
            context_before: Tokens(context_before),
            completes_prompt: completes,
        }
    }

    fn slot(seq: u64, context_before: usize) -> DecodeSlot {
        DecodeSlot { seq, context_before: Tokens(context_before) }
    }

    fn obs(free: usize, used: usize) -> KvObservation {
        KvObservation { free_blocks: Blocks(free), used_blocks: Blocks(used) }
    }

    fn auditor(total_blocks: usize, block_size: usize, depth: usize) -> InvariantAuditor {
        InvariantAuditor::new(Blocks(total_blocks), Tokens(block_size), depth)
    }

    #[test]
    fn blocks_to_append_rounds_like_the_page_table() {
        let bs = Tokens(16);
        assert_eq!(blocks_to_append(Tokens(0), Tokens(1), bs), Blocks(1));
        assert_eq!(blocks_to_append(Tokens(0), Tokens(16), bs), Blocks(1));
        assert_eq!(blocks_to_append(Tokens(0), Tokens(17), bs), Blocks(2));
        assert_eq!(blocks_to_append(Tokens(15), Tokens(1), bs), Blocks(0));
        assert_eq!(blocks_to_append(Tokens(16), Tokens(1), bs), Blocks(1));
        assert_eq!(blocks_to_append(Tokens(20), Tokens(12), bs), Blocks(0));
        assert_eq!(blocks_to_append(Tokens(20), Tokens(13), bs), Blocks(1));
    }

    #[test]
    fn clean_schedule_and_complete_pass() {
        let mut a = auditor(8, 16, 2);
        a.on_arrival(1);
        let plan = BatchPlan { prefill: vec![chunk(1, 20, 0, true)], decode: vec![] };
        a.on_schedule(0.0, 0, &plan, &plan, None, obs(8, 0), obs(6, 2));
        let decode = BatchPlan { prefill: vec![], decode: vec![slot(1, 20)] };
        a.on_complete(0.1, 0, &[], obs(6, 2));
        a.on_schedule(0.2, 1, &decode, &decode, None, obs(6, 2), obs(6, 2));
        a.on_complete(0.3, 1, &[1], obs(8, 0));
        assert!(a.is_clean(), "{:?}", a.violations());
        assert!(a.into_report(true).is_clean());
    }

    #[test]
    fn token_granular_decode_reserve_trips_overcommit() {
        // The pre-fix TokenThrottle bug: 4 decodes at full blocks need 4
        // new blocks, but the policy reserved 4 *tokens* and carved a
        // 63-token prefill into 5 free blocks.
        let mut a = auditor(24, 16, 4);
        for s in 0..5 {
            a.on_arrival(s);
        }
        let proposed = BatchPlan {
            prefill: vec![chunk(4, 63, 0, false)],
            decode: (0..4).map(|s| slot(s, 64)).collect(),
        };
        // Admission trimmed the chunk to what actually fits — the proposal
        // is still wrong.
        let committed = BatchPlan {
            prefill: vec![chunk(4, 16, 0, false)],
            decode: (0..4).map(|s| slot(s, 64)).collect(),
        };
        for s in 0..4 {
            // Shadow contexts: 4 decodes already hold 64 tokens each.
            a.ctx.insert(s, Tokens(64));
            a.started.insert(s);
        }
        a.on_schedule(1.0, 0, &proposed, &committed, None, obs(5, 19), obs(0, 24));
        assert!(
            a.violations().iter().any(|v| v.invariant == Invariant::KvOvercommit),
            "{:?}",
            a.violations()
        );
    }

    #[test]
    fn depth_overflow_is_reported() {
        let mut a = auditor(64, 16, 1);
        a.on_arrival(1);
        a.on_arrival(2);
        let p1 = BatchPlan { prefill: vec![chunk(1, 8, 0, true)], decode: vec![] };
        let p2 = BatchPlan { prefill: vec![chunk(2, 8, 0, true)], decode: vec![] };
        a.on_schedule(0.0, 0, &p1, &p1, None, obs(64, 0), obs(63, 1));
        a.on_schedule(0.1, 1, &p2, &p2, None, obs(63, 1), obs(62, 2));
        assert!(a.violations().iter().any(|v| v.invariant == Invariant::PipelineDepth));
    }

    #[test]
    fn budget_conformance_catches_over_budget_and_grown_plans() {
        let mut a = auditor(64, 16, 4);
        a.on_arrival(1);
        let proposed = BatchPlan { prefill: vec![chunk(1, 100, 0, false)], decode: vec![] };
        let committed = proposed.clone();
        a.on_schedule(
            0.0,
            0,
            &proposed,
            &committed,
            Some(PlanCaps { prefill_tokens: Tokens(50), decode_seqs: 0 }),
            obs(64, 0),
            obs(57, 7),
        );
        assert!(a.violations().iter().any(|v| v.invariant == Invariant::BudgetConformance));

        let mut b = auditor(64, 16, 4);
        b.on_arrival(1);
        let grown = BatchPlan { prefill: vec![chunk(1, 120, 0, false)], decode: vec![] };
        b.on_schedule(0.0, 0, &proposed, &grown, None, obs(64, 0), obs(56, 8));
        assert!(b.violations().iter().any(|v| v.invariant == Invariant::BudgetConformance));
    }

    #[test]
    fn fcfs_inversion_is_reported() {
        let mut a = auditor(64, 16, 4);
        a.on_arrival(1); // earlier arrival, never started
        a.on_arrival(2);
        let plan = BatchPlan { prefill: vec![chunk(2, 8, 0, true)], decode: vec![] };
        a.on_schedule(0.0, 0, &plan, &plan, None, obs(64, 0), obs(63, 1));
        assert!(a.violations().iter().any(|v| v.invariant == Invariant::FcfsAdmission));
    }

    #[test]
    fn fcfs_allows_restart_after_preemption_and_aborted_heads() {
        let mut a = auditor(64, 16, 4);
        a.on_arrival(1);
        a.on_arrival(2);
        a.on_arrival(3);
        a.on_abort(1); // head rejected: seq 2 may start
        let p2 = BatchPlan { prefill: vec![chunk(2, 8, 0, false)], decode: vec![] };
        a.on_schedule(0.0, 0, &p2, &p2, None, obs(64, 0), obs(63, 1));
        a.on_complete(0.1, 0, &[], obs(63, 1));
        // Seq 2 is preempted; seq 3 may still start because 2 *started*.
        a.on_evict(2);
        let p3 = BatchPlan { prefill: vec![chunk(3, 8, 0, false)], decode: vec![] };
        a.on_schedule(0.2, 1, &p3, &p3, None, obs(64, 0), obs(63, 1));
        assert!(a.is_clean(), "{:?}", a.violations());
    }

    #[test]
    fn kv_mismatch_is_reported() {
        let mut a = auditor(8, 16, 2);
        a.on_arrival(1);
        let plan = BatchPlan { prefill: vec![chunk(1, 20, 0, true)], decode: vec![] };
        // 20 tokens = 2 blocks, but the "manager" claims only 1 is used.
        a.on_schedule(0.0, 0, &plan, &plan, None, obs(8, 0), obs(7, 1));
        assert!(a.violations().iter().any(|v| v.invariant == Invariant::KvAccounting));
    }

    #[test]
    fn recovery_requeues_in_flight_batches_and_counts() {
        let mut a = auditor(64, 16, 4);
        a.on_arrival(1);
        a.on_arrival(2);
        let p1 = BatchPlan { prefill: vec![chunk(1, 8, 0, true)], decode: vec![] };
        let p2 = BatchPlan { prefill: vec![chunk(2, 8, 0, true)], decode: vec![] };
        a.on_schedule(0.0, 0, &p1, &p1, None, obs(64, 0), obs(63, 1));
        a.on_schedule(0.1, 1, &p2, &p2, None, obs(63, 1), obs(62, 2));
        // The pipeline dies with both batches in flight: the driver evicts
        // all KV, rolls both back and respawns.
        a.on_fault(0.2);
        a.on_evict(1);
        a.on_evict(2);
        a.on_recovery(0.2, 2);
        let s = a.snapshot();
        assert_eq!(s.in_flight, 0, "requeued batches leave the in-flight count");
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.batches_requeued, 2);
        assert_eq!(s.live_kv_seqs, 0);
        // The recomputed schedule passes the KV cross-check from zero.
        a.on_schedule(0.3, 2, &p1, &p1, None, obs(64, 0), obs(63, 1));
        a.on_complete(0.4, 2, &[1], obs(64, 0));
        assert!(a.is_clean(), "{:?}", a.violations());
        let report = a.into_report(false);
        assert_eq!(report.final_snapshot.recoveries, 1);
        assert_eq!(report.final_snapshot.batches_requeued, 2);
    }

    #[test]
    fn failed_request_leaves_fcfs_and_counts() {
        let mut a = auditor(64, 16, 4);
        a.on_arrival(1);
        a.on_arrival(2);
        a.on_request_failed(0.1, 1);
        assert_eq!(a.snapshot().requests_failed, 1);
        // Seq 2 may now start even though the failed seq 1 never did.
        let p2 = BatchPlan { prefill: vec![chunk(2, 8, 0, true)], decode: vec![] };
        a.on_schedule(0.2, 0, &p2, &p2, None, obs(64, 0), obs(63, 1));
        assert!(a.is_clean(), "{:?}", a.violations());
    }

    #[test]
    fn integrity_failure_is_a_violation() {
        let mut a = auditor(64, 16, 4);
        a.on_integrity_failure(0.5, Some(3), "committed chunk without KV table".to_string());
        assert!(!a.is_clean());
        let v = &a.violations()[0];
        assert_eq!(v.invariant, Invariant::RuntimeIntegrity);
        assert_eq!(v.batch, Some(3));
    }

    #[test]
    fn drained_run_with_leftover_kv_is_a_leak() {
        let mut a = auditor(8, 16, 2);
        a.on_arrival(1);
        let plan = BatchPlan { prefill: vec![chunk(1, 20, 0, true)], decode: vec![] };
        a.on_schedule(0.0, 0, &plan, &plan, None, obs(8, 0), obs(6, 2));
        a.on_complete(0.1, 0, &[], obs(6, 2));
        let report = a.into_report(true);
        assert!(!report.is_clean());
        assert!(report.violations.iter().any(|v| v.detail.contains("leak") || v.detail.contains("left shadow KV")));
    }
}
