//! Per-request timeline collection.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Lifecycle timestamps of one request (seconds, in the caller's clock —
/// virtual for the simulator, wall for the runtime).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestTimeline {
    /// Arrival time.
    pub arrival_s: f64,
    /// Time the first output token was produced, if any.
    pub first_token_s: Option<f64>,
    /// Completion time, if finished.
    pub finish_s: Option<f64>,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Output tokens produced so far.
    pub output_tokens: usize,
    /// Times this request was preempted (evicted and recomputed).
    pub preemptions: u32,
}

impl RequestTimeline {
    /// Time to first token, if the first token exists.
    pub fn ttft(&self) -> Option<f64> {
        self.first_token_s.map(|t| t - self.arrival_s)
    }

    /// Mean time per output token after the first; `None` until the request
    /// finishes or when it produced fewer than two tokens.
    pub fn tpot(&self) -> Option<f64> {
        match (self.first_token_s, self.finish_s) {
            (Some(first), Some(finish)) if self.output_tokens >= 2 => {
                Some((finish - first) / (self.output_tokens - 1) as f64)
            }
            _ => None,
        }
    }

    /// End-to-end latency; `None` until the request finishes.
    pub fn e2el(&self) -> Option<f64> {
        self.finish_s.map(|t| t - self.arrival_s)
    }
}

/// Collects [`RequestTimeline`]s as the serving system reports events.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    // Ordered so every iteration (reduction, serialization) is
    // deterministic without sorting at each call site (sim-determinism).
    timelines: BTreeMap<u64, RequestTimeline>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a request arrival. Must precede every other event for the id.
    pub fn on_arrival(&mut self, id: u64, t: f64, prompt_len: usize) {
        let prev = self.timelines.insert(
            id,
            RequestTimeline {
                arrival_s: t,
                first_token_s: None,
                finish_s: None,
                prompt_len,
                output_tokens: 0,
                preemptions: 0,
            },
        );
        assert!(prev.is_none(), "duplicate arrival for request {id}");
    }

    /// Record one output token at time `t` (the first call sets TTFT).
    pub fn on_token(&mut self, id: u64, t: f64) {
        let tl = self.timelines.get_mut(&id).expect("token before arrival");
        if tl.first_token_s.is_none() {
            tl.first_token_s = Some(t);
        }
        tl.output_tokens += 1;
    }

    /// Record request completion at time `t`.
    pub fn on_finish(&mut self, id: u64, t: f64) {
        let tl = self.timelines.get_mut(&id).expect("finish before arrival");
        assert!(tl.finish_s.is_none(), "double finish for request {id}");
        tl.finish_s = Some(t);
    }

    /// Record a preemption (KV eviction forcing recomputation).
    pub fn on_preemption(&mut self, id: u64) {
        let tl = self.timelines.get_mut(&id).expect("preemption before arrival");
        tl.preemptions += 1;
    }

    /// Timeline of one request.
    pub fn timeline(&self, id: u64) -> Option<&RequestTimeline> {
        self.timelines.get(&id)
    }

    /// All timelines, sorted by request id (deterministic reduction order).
    pub fn timelines(&self) -> Vec<(u64, RequestTimeline)> {
        self.timelines.iter().map(|(&k, &tl)| (k, tl)).collect()
    }

    /// Number of requests that finished.
    pub fn finished_count(&self) -> usize {
        self.timelines.values().filter(|t| t.finish_s.is_some()).count()
    }

    /// Number of requests observed.
    pub fn total_count(&self) -> usize {
        self.timelines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorded() -> MetricsRecorder {
        let mut r = MetricsRecorder::new();
        r.on_arrival(1, 0.0, 100);
        r.on_token(1, 0.5); // TTFT = 0.5
        r.on_token(1, 0.7);
        r.on_token(1, 0.9);
        r.on_finish(1, 0.9); // 3 tokens, TPOT = 0.4/2 = 0.2
        r
    }

    #[test]
    fn ttft_tpot_e2el_computed_correctly() {
        let r = recorded();
        let tl = r.timeline(1).unwrap();
        assert_eq!(tl.ttft(), Some(0.5));
        assert!((tl.tpot().unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(tl.e2el(), Some(0.9));
        assert_eq!(tl.output_tokens, 3);
    }

    #[test]
    fn unfinished_request_has_no_tpot_or_e2el() {
        let mut r = MetricsRecorder::new();
        r.on_arrival(2, 1.0, 10);
        r.on_token(2, 1.5);
        let tl = r.timeline(2).unwrap();
        assert_eq!(tl.ttft(), Some(0.5));
        assert_eq!(tl.tpot(), None);
        assert_eq!(tl.e2el(), None);
        assert_eq!(r.finished_count(), 0);
        assert_eq!(r.total_count(), 1);
    }

    #[test]
    fn single_token_request_has_no_tpot() {
        let mut r = MetricsRecorder::new();
        r.on_arrival(3, 0.0, 10);
        r.on_token(3, 0.2);
        r.on_finish(3, 0.2);
        assert_eq!(r.timeline(3).unwrap().tpot(), None);
        assert_eq!(r.timeline(3).unwrap().e2el(), Some(0.2));
    }

    #[test]
    fn preemptions_are_counted() {
        let mut r = MetricsRecorder::new();
        r.on_arrival(4, 0.0, 10);
        r.on_preemption(4);
        r.on_preemption(4);
        assert_eq!(r.timeline(4).unwrap().preemptions, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate arrival")]
    fn duplicate_arrival_panics() {
        let mut r = MetricsRecorder::new();
        r.on_arrival(1, 0.0, 1);
        r.on_arrival(1, 0.0, 1);
    }

    #[test]
    fn timelines_sorted_by_id() {
        let mut r = MetricsRecorder::new();
        r.on_arrival(9, 0.0, 1);
        r.on_arrival(2, 0.0, 1);
        let ids: Vec<u64> = r.timelines().iter().map(|(k, _)| *k).collect();
        assert_eq!(ids, vec![2, 9]);
    }
}
