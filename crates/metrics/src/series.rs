//! Time-series probes behind the paper's Figures 1 and 4.
//!
//! [`TokenTrace`] records the prefill/decode token composition of every
//! scheduled micro-batch (Fig. 1's "scheduled token counts" and Fig. 4b's
//! "batched token count"); [`BusyTracker`] records per-GPU busy intervals
//! and reduces them to windowed utilisation (Fig. 4a's "GPU utilisation").

use serde::{Deserialize, Serialize};

/// One scheduled micro-batch's token composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenTracePoint {
    /// Iteration index (chronological schedule order).
    pub iteration: usize,
    /// Prefill tokens batched.
    pub prefill: usize,
    /// Decode tokens batched.
    pub decode: usize,
}

impl TokenTracePoint {
    /// Total batched tokens.
    pub fn total(&self) -> usize {
        self.prefill + self.decode
    }
}

/// Chronological record of every scheduled micro-batch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TokenTrace {
    points: Vec<TokenTracePoint>,
}

impl TokenTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty trace with room for `capacity` points, so recording inside
    /// the simulator's hot loop does not reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { points: Vec::with_capacity(capacity) }
    }

    /// Record the next scheduled batch.
    pub fn record(&mut self, prefill: usize, decode: usize) {
        let iteration = self.points.len();
        self.points.push(TokenTracePoint { iteration, prefill, decode });
    }

    /// All points in schedule order.
    pub fn points(&self) -> &[TokenTracePoint] {
        &self.points
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Coefficient of variation (σ/μ) of total batched tokens — the paper's
    /// Fig. 1 argument is that Sarathi-Serve's trace has much higher
    /// volatility than a balanced system's, and this is the scalar that
    /// quantifies it.
    pub fn total_tokens_cv(&self) -> f64 {
        let totals: Vec<f64> = self.points.iter().map(|p| p.total() as f64).collect();
        if totals.is_empty() {
            return 0.0;
        }
        let mean = totals.iter().sum::<f64>() / totals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = totals.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / totals.len() as f64;
        var.sqrt() / mean
    }

    /// Mean total batched tokens per iteration.
    pub fn mean_total(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.total() as f64).sum::<f64>() / self.points.len() as f64
    }
}

/// Records busy intervals per GPU and reduces them to utilisation.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    /// `(gpu, start_s, end_s)` busy intervals (not necessarily sorted).
    intervals: Vec<(usize, f64, f64)>,
    num_gpus: usize,
}

impl BusyTracker {
    /// A tracker over `num_gpus` devices.
    pub fn new(num_gpus: usize) -> Self {
        Self { intervals: Vec::new(), num_gpus }
    }

    /// A tracker over `num_gpus` devices pre-sized for `capacity` intervals.
    pub fn with_capacity(num_gpus: usize, capacity: usize) -> Self {
        Self { intervals: Vec::with_capacity(capacity), num_gpus }
    }

    /// Record that `gpu` was busy on `[start_s, end_s)`.
    pub fn record(&mut self, gpu: usize, start_s: f64, end_s: f64) {
        assert!(gpu < self.num_gpus, "gpu {gpu} out of range");
        assert!(end_s >= start_s, "negative busy interval");
        self.intervals.push((gpu, start_s, end_s));
    }

    /// Mean utilisation of all GPUs over `[0, horizon_s)`.
    pub fn mean_utilization(&self, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 || self.num_gpus == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .intervals
            .iter()
            .map(|&(_, s, e)| (e.min(horizon_s) - s.min(horizon_s)).max(0.0))
            .sum();
        busy / (horizon_s * self.num_gpus as f64)
    }

    /// Utilisation averaged over all GPUs in consecutive windows of
    /// `window_s` covering `[0, horizon_s)`. Returns `(window_start, util)`
    /// pairs — the series Fig. 4a plots.
    pub fn utilization_series(&self, horizon_s: f64, window_s: f64) -> Vec<(f64, f64)> {
        assert!(window_s > 0.0);
        let n = (horizon_s / window_s).ceil() as usize;
        let mut busy = vec![0.0f64; n];
        for &(_, s, e) in &self.intervals {
            let first = (s / window_s) as usize;
            let last = ((e / window_s) as usize).min(n.saturating_sub(1));
            for (w, b) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                let ws = w as f64 * window_s;
                let we = ws + window_s;
                *b += (e.min(we) - s.max(ws)).max(0.0);
            }
        }
        busy.iter()
            .enumerate()
            .map(|(w, b)| (w as f64 * window_s, b / (window_s * self.num_gpus as f64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trace_records_in_order() {
        let mut t = TokenTrace::new();
        t.record(100, 20);
        t.record(0, 64);
        assert_eq!(t.len(), 2);
        assert_eq!(t.points()[0].iteration, 0);
        assert_eq!(t.points()[0].total(), 120);
        assert_eq!(t.points()[1].total(), 64);
    }

    #[test]
    fn constant_trace_has_zero_cv() {
        let mut t = TokenTrace::new();
        for _ in 0..10 {
            t.record(50, 50);
        }
        assert_eq!(t.total_tokens_cv(), 0.0);
        assert_eq!(t.mean_total(), 100.0);
    }

    #[test]
    fn volatile_trace_has_higher_cv_than_smooth() {
        let mut volatile = TokenTrace::new();
        let mut smooth = TokenTrace::new();
        for i in 0..20 {
            volatile.record(if i % 2 == 0 { 2048 } else { 0 }, 10);
            smooth.record(1024, 10);
        }
        assert!(volatile.total_tokens_cv() > smooth.total_tokens_cv() + 0.5);
    }

    #[test]
    fn empty_trace_is_degenerate() {
        let t = TokenTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.total_tokens_cv(), 0.0);
        assert_eq!(t.mean_total(), 0.0);
    }

    #[test]
    fn mean_utilization_counts_busy_time() {
        let mut b = BusyTracker::new(2);
        b.record(0, 0.0, 1.0); // GPU 0 busy the whole second
        b.record(1, 0.0, 0.5); // GPU 1 half
        assert!((b.mean_utilization(1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_series_windows_correctly() {
        let mut b = BusyTracker::new(1);
        b.record(0, 0.0, 1.0);
        b.record(0, 1.5, 2.0);
        let s = b.utilization_series(2.0, 1.0);
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 1.0).abs() < 1e-12);
        assert!((s[1].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamps_beyond_horizon() {
        let mut b = BusyTracker::new(1);
        b.record(0, 0.0, 10.0);
        assert!((b.mean_utilization(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recording_unknown_gpu_panics() {
        let mut b = BusyTracker::new(1);
        b.record(1, 0.0, 1.0);
    }
}
