//! Structured per-batch pipeline event log with a Chrome `trace_event`
//! exporter.
//!
//! The simulator and the threaded runtime both emit the same event
//! vocabulary — schedule, stage execution, inter-stage comm, batch
//! completion, preemption — into a [`PipelineTrace`]. The trace can be
//! consumed programmatically (e.g. [`PipelineTrace::stage_busy_total`]
//! cross-checks the `BusyTracker` utilization numbers) or exported as
//! Chrome `trace_event` JSON for chrome://tracing / Perfetto, where each
//! pipeline stage renders as a timeline row with its compute spans and a
//! separate row for its outbound comm.

use serde::Serialize;
use serde_json::Value;

/// What happened at one trace point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEventKind {
    /// A micro-batch was committed by the scheduler.
    Schedule {
        /// Micro-batch id.
        batch: u64,
        /// Batched prefill tokens.
        prefill_tokens: usize,
        /// Decode slots in the batch.
        decode_tokens: usize,
        /// Distinct sequences in the batch.
        num_seqs: usize,
    },
    /// A stage executed the batch over `[t_s, end_s)`.
    Stage {
        /// Micro-batch id.
        batch: u64,
        /// Pipeline stage index.
        stage: usize,
        /// Span end, seconds.
        end_s: f64,
    },
    /// Activations moved from `from_stage` to the next stage over
    /// `[t_s, end_s)`.
    Comm {
        /// Micro-batch id.
        batch: u64,
        /// Sending stage index.
        from_stage: usize,
        /// Span end, seconds.
        end_s: f64,
    },
    /// The batch left the last stage.
    Complete {
        /// Micro-batch id.
        batch: u64,
        /// Tokens emitted by the batch.
        emitted: usize,
        /// Sequences that finished with it.
        finished: usize,
    },
    /// A sequence's KV was evicted for recomputation.
    Preempt {
        /// Preempted sequence id.
        seq: u64,
    },
    /// An injected (or detected) fault fired in the pipeline.
    Fault {
        /// Human-readable description, e.g. `kill worker stage 1 at batch 3`.
        desc: String,
    },
    /// The driver recovered the pipeline: stages respawned, lost work
    /// rolled back for recomputation.
    Recovery {
        /// In-flight micro-batches rolled back and requeued.
        batches_requeued: usize,
        /// Sequences reset for recompute (their KV died with the stages).
        requests_reset: usize,
    },
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Event time (span start for `Stage`/`Comm`), seconds.
    pub t_s: f64,
    /// Payload.
    pub kind: TraceEventKind,
}

/// Append-only event log; disabled instances drop events for free.
#[derive(Debug, Clone, Default)]
pub struct PipelineTrace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl PipelineTrace {
    /// An enabled (recording) or disabled (no-op) trace.
    pub fn new(enabled: bool) -> Self {
        Self { enabled, events: Vec::new() }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn push(&mut self, t_s: f64, kind: TraceEventKind) {
        if self.enabled {
            self.events.push(TraceEvent { t_s, kind });
        }
    }

    /// Record a scheduling decision.
    pub fn schedule(&mut self, t_s: f64, batch: u64, prefill_tokens: usize, decode_tokens: usize, num_seqs: usize) {
        self.push(t_s, TraceEventKind::Schedule { batch, prefill_tokens, decode_tokens, num_seqs });
    }

    /// Record a stage-execution span.
    pub fn stage(&mut self, start_s: f64, end_s: f64, batch: u64, stage: usize) {
        self.push(start_s, TraceEventKind::Stage { batch, stage, end_s });
    }

    /// Record an inter-stage transfer span.
    pub fn comm(&mut self, start_s: f64, end_s: f64, batch: u64, from_stage: usize) {
        self.push(start_s, TraceEventKind::Comm { batch, from_stage, end_s });
    }

    /// Record a batch completion.
    pub fn complete(&mut self, t_s: f64, batch: u64, emitted: usize, finished: usize) {
        self.push(t_s, TraceEventKind::Complete { batch, emitted, finished });
    }

    /// Record a recompute preemption.
    pub fn preempt(&mut self, t_s: f64, seq: u64) {
        self.push(t_s, TraceEventKind::Preempt { seq });
    }

    /// Record a fault firing.
    pub fn fault(&mut self, t_s: f64, desc: &str) {
        if self.enabled {
            self.push(t_s, TraceEventKind::Fault { desc: desc.to_string() });
        }
    }

    /// Record a completed pipeline recovery.
    pub fn recovery(&mut self, t_s: f64, batches_requeued: usize, requests_reset: usize) {
        self.push(t_s, TraceEventKind::Recovery { batches_requeued, requests_reset });
    }

    /// Total stage-busy seconds summed over all `Stage` spans — comparable
    /// to `BusyTracker::total_busy_s` when both observe the same run.
    pub fn stage_busy_total(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Stage { end_s, .. } => Some((end_s - e.t_s).max(0.0)),
                _ => None,
            })
            .sum()
    }

    /// Highest stage index seen, if any stage span was recorded.
    fn max_stage(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Stage { stage, .. } => Some(stage),
                TraceEventKind::Comm { from_stage, .. } => Some(from_stage),
                _ => None,
            })
            .max()
    }

    /// Export as a Chrome `trace_event` JSON document (load in
    /// chrome://tracing or <https://ui.perfetto.dev>). Stage spans are
    /// `ph:"X"` duration events on tid = stage index; comm spans land on
    /// tid = 100 + stage so transfers render under their sender; schedule
    /// / complete / preempt become `ph:"i"` instants on a scheduler row.
    pub fn to_chrome_trace(&self) -> Value {
        const SCHED_TID: u64 = 99;
        let us = |s: f64| (s * 1e6).max(0.0);
        let mut events: Vec<Value> = Vec::new();

        let meta = |tid: u64, name: &str| {
            Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(0)),
                ("tid".into(), Value::UInt(tid)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(name.into()))]),
                ),
            ])
        };
        if let Some(max) = self.max_stage() {
            for s in 0..=max {
                events.push(meta(s as u64, &format!("stage {s}")));
                events.push(meta(100 + s as u64, &format!("stage {s} comm out")));
            }
        }
        events.push(meta(SCHED_TID, "scheduler"));

        type Row = (String, &'static str, u64, Option<f64>, Vec<(String, Value)>);
        for e in &self.events {
            let (name, ph, tid, dur_us, args): Row =
                match &e.kind {
                    TraceEventKind::Schedule { batch, prefill_tokens, decode_tokens, num_seqs } => (
                        format!("schedule b{batch}"),
                        "i",
                        SCHED_TID,
                        None,
                        vec![
                            ("batch".into(), Value::UInt(*batch)),
                            ("prefill_tokens".into(), Value::UInt(*prefill_tokens as u64)),
                            ("decode_tokens".into(), Value::UInt(*decode_tokens as u64)),
                            ("num_seqs".into(), Value::UInt(*num_seqs as u64)),
                        ],
                    ),
                    TraceEventKind::Stage { batch, stage, end_s } => (
                        format!("b{batch}"),
                        "X",
                        *stage as u64,
                        Some(us(*end_s) - us(e.t_s)),
                        vec![("batch".into(), Value::UInt(*batch))],
                    ),
                    TraceEventKind::Comm { batch, from_stage, end_s } => (
                        format!("b{batch} send"),
                        "X",
                        100 + *from_stage as u64,
                        Some(us(*end_s) - us(e.t_s)),
                        vec![("batch".into(), Value::UInt(*batch))],
                    ),
                    TraceEventKind::Complete { batch, emitted, finished } => (
                        format!("complete b{batch}"),
                        "i",
                        SCHED_TID,
                        None,
                        vec![
                            ("batch".into(), Value::UInt(*batch)),
                            ("emitted".into(), Value::UInt(*emitted as u64)),
                            ("finished".into(), Value::UInt(*finished as u64)),
                        ],
                    ),
                    TraceEventKind::Preempt { seq } => (
                        format!("preempt s{seq}"),
                        "i",
                        SCHED_TID,
                        None,
                        vec![("seq".into(), Value::UInt(*seq))],
                    ),
                    TraceEventKind::Fault { desc } => (
                        format!("fault: {desc}"),
                        "i",
                        SCHED_TID,
                        None,
                        vec![("desc".into(), Value::Str(desc.clone()))],
                    ),
                    TraceEventKind::Recovery { batches_requeued, requests_reset } => (
                        "recovery".to_string(),
                        "i",
                        SCHED_TID,
                        None,
                        vec![
                            ("batches_requeued".into(), Value::UInt(*batches_requeued as u64)),
                            ("requests_reset".into(), Value::UInt(*requests_reset as u64)),
                        ],
                    ),
                };
            let mut fields = vec![
                ("name".into(), Value::Str(name)),
                ("ph".into(), Value::Str(ph.into())),
                ("pid".into(), Value::UInt(0)),
                ("tid".into(), Value::UInt(tid)),
                ("ts".into(), Value::Float(us(e.t_s))),
            ];
            if let Some(d) = dur_us {
                fields.push(("dur".into(), Value::Float(d.max(0.0))));
            }
            if ph == "i" {
                // Instant scope: thread.
                fields.push(("s".into(), Value::Str("t".into())));
            }
            fields.push(("args".into(), Value::Object(args)));
            events.push(Value::Object(fields));
        }

        Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ])
    }

    /// [`Self::to_chrome_trace`] rendered as a compact JSON string.
    pub fn to_chrome_trace_string(&self) -> String {
        self.to_chrome_trace().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PipelineTrace {
        let mut t = PipelineTrace::new(true);
        t.schedule(0.0, 0, 128, 4, 5);
        t.stage(0.0, 0.010, 0, 0);
        t.comm(0.010, 0.011, 0, 0);
        t.stage(0.011, 0.021, 0, 1);
        t.preempt(0.015, 7);
        t.complete(0.021, 0, 5, 1);
        t
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = PipelineTrace::new(false);
        t.schedule(0.0, 0, 1, 1, 1);
        t.stage(0.0, 1.0, 0, 0);
        assert!(t.events().is_empty());
        assert_eq!(t.stage_busy_total(), 0.0);
    }

    #[test]
    fn stage_busy_total_sums_stage_spans_only() {
        let t = sample();
        assert!((t.stage_busy_total() - 0.020).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_has_spans_instants_and_metadata() {
        let doc = sample().to_chrome_trace();
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(doc["displayTimeUnit"], "ms");

        let phase = |v: &Value| v["ph"].as_str().unwrap_or("").to_string();
        let spans: Vec<&Value> = events.iter().filter(|e| phase(e) == "X").collect();
        let instants: Vec<&Value> = events.iter().filter(|e| phase(e) == "i").collect();
        let metas: Vec<&Value> = events.iter().filter(|e| phase(e) == "M").collect();
        assert_eq!(spans.len(), 3, "2 stage spans + 1 comm span");
        assert_eq!(instants.len(), 3, "schedule + preempt + complete");
        // Stages 0 and 1 each get a compute and a comm row, plus scheduler.
        assert_eq!(metas.len(), 5);

        // A stage span carries µs timestamps and lands on its stage's tid.
        let s1 = spans
            .iter()
            .find(|e| e["tid"] == 1u64)
            .expect("stage-1 span");
        assert!((s1["ts"].as_f64().unwrap() - 11_000.0).abs() < 1e-6);
        assert!((s1["dur"].as_f64().unwrap() - 10_000.0).abs() < 1e-6);
        // Comm rides on tid 100 + sender.
        assert!(spans.iter().any(|e| e["tid"] == 100u64));

        // The document is valid JSON text end-to-end.
        let text = sample().to_chrome_trace_string();
        let parsed: Value = serde_json::from_str(&text).expect("round-trips");
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), events.len());
    }

    #[test]
    fn fault_and_recovery_events_export_as_scheduler_instants() {
        let mut t = PipelineTrace::new(true);
        t.fault(0.010, "kill worker stage 1 at batch 3");
        t.recovery(0.020, 2, 3);
        assert_eq!(t.events().len(), 2);
        let doc = t.to_chrome_trace();
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        let fault = events
            .iter()
            .find(|e| e["name"].as_str().is_some_and(|n| n.starts_with("fault:")))
            .expect("fault instant");
        assert_eq!(fault["ph"], "i");
        assert_eq!(fault["tid"], 99u64);
        assert_eq!(fault["args"]["desc"], "kill worker stage 1 at batch 3");
        let rec = events.iter().find(|e| e["name"] == "recovery").expect("recovery instant");
        assert_eq!(rec["args"]["batches_requeued"], 2u64);
        assert_eq!(rec["args"]["requests_reset"], 3u64);

        // A disabled trace drops both for free.
        let mut off = PipelineTrace::new(false);
        off.fault(0.0, "x");
        off.recovery(0.0, 1, 1);
        assert!(off.events().is_empty());
    }
}
