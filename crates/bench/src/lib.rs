//! Shared plumbing for the benchmark harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index): it synthesises the workload, sweeps
//! the parameter the paper sweeps, runs every compared system through the
//! discrete-event simulator, prints the same rows/series the paper reports
//! and drops a machine-readable JSON copy under `bench-results/`.

pub mod cli;
pub mod output;
pub mod sweep;

pub use cli::{flag_value, has_flag, jobs};
pub use output::{write_json, Table};
pub use sweep::{sweep_rates, sweep_rates_with_cfg, RatePoint};
