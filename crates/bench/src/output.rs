//! Table printing and JSON result persistence.

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 significant-ish decimals.
pub fn f3(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Milliseconds with sensible precision.
pub fn ms(seconds: f64) -> String {
    format!("{:.1}", seconds * 1000.0)
}

/// Persist a serialisable result under `bench-results/<name>.json`
/// (relative to the workspace root when run via cargo, else the CWD).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = match std::env::var("CARGO_MANIFEST_DIR") {
        // crates/bench → workspace root two levels up.
        Ok(m) => PathBuf::from(m).join("../../bench-results"),
        Err(_) => PathBuf::from("bench-results"),
    };
    fs::create_dir_all(&dir).expect("create bench-results dir");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialise results"))
        .expect("write results file");
    eprintln!("[results written to {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(123.456), "123");
        assert_eq!(f3(1.234), "1.23");
        assert_eq!(f3(0.01234), "0.0123");
        assert_eq!(ms(0.1234), "123.4");
    }
}
