//! Figure 11: distribution of input and output lengths of the sampled
//! datasets.
//!
//! The paper reports the Azure trace having a 5.21× longer average input
//! and 1.66× longer average output than ShareGPT. This binary samples both
//! synthetic datasets, prints histograms and the achieved ratios.

use gllm_bench::output::{f3, Table};
use gllm_bench::write_json;
use gllm_workload::{histogram, Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Output {
    sharegpt_mean_input: f64,
    sharegpt_mean_output: f64,
    azure_mean_input: f64,
    azure_mean_output: f64,
    input_ratio: f64,
    output_ratio: f64,
    input_hist_sharegpt: Vec<(f64, usize)>,
    input_hist_azure: Vec<(f64, usize)>,
    output_hist_sharegpt: Vec<(f64, usize)>,
    output_hist_azure: Vec<(f64, usize)>,
}

fn hist(values: &[usize], bins: usize, max: usize) -> Vec<(f64, usize)> {
    // Callers pass literal bins/max, so a config error here is a bug in
    // this binary — report it and produce an empty histogram.
    match histogram(values, bins, 0, max) {
        Ok((edges, counts)) => edges.into_iter().zip(counts).collect(),
        Err(e) => {
            eprintln!("fig11: bad histogram request: {e}");
            Vec::new()
        }
    }
}

fn main() {
    // Large samples so the ratios are tight.
    let sg = Trace::paper_online(Dataset::ShareGpt, 80.0, 7);
    let az = Trace::paper_online(Dataset::Azure, 80.0, 7);
    let s = sg.summary();
    let a = az.summary();

    println!("Figure 11 — input/output length distributions (sampled)\n");
    let mut t = Table::new(&["dataset", "requests", "mean input", "mean output"]);
    t.row(vec!["sharegpt".into(), s.count.to_string(), f3(s.mean_input), f3(s.mean_output)]);
    t.row(vec!["azure".into(), a.count.to_string(), f3(a.mean_input), f3(a.mean_output)]);
    t.print();

    let in_ratio = a.mean_input / s.mean_input;
    let out_ratio = a.mean_output / s.mean_output;
    println!("\ninput ratio (azure/sharegpt):  {} (paper: 5.21x)", f3(in_ratio));
    println!("output ratio (azure/sharegpt): {} (paper: 1.66x)", f3(out_ratio));

    let inputs = |t: &Trace| t.requests.iter().map(|r| r.prompt_len).collect::<Vec<_>>();
    let outputs = |t: &Trace| t.requests.iter().map(|r| r.output_len).collect::<Vec<_>>();

    println!("\ninput-length histogram (bucket floor → count):");
    let mut th = Table::new(&["bucket", "sharegpt", "azure"]);
    let hs = hist(&inputs(&sg), 16, 4096);
    let ha = hist(&inputs(&az), 16, 4096);
    for (i, (edge, c)) in hs.iter().enumerate() {
        th.row(vec![format!("{:.0}", edge), c.to_string(), ha[i].1.to_string()]);
    }
    th.print();

    write_json(
        "fig11_workload_distribution",
        &Fig11Output {
            sharegpt_mean_input: s.mean_input,
            sharegpt_mean_output: s.mean_output,
            azure_mean_input: a.mean_input,
            azure_mean_output: a.mean_output,
            input_ratio: in_ratio,
            output_ratio: out_ratio,
            input_hist_sharegpt: hs,
            input_hist_azure: ha,
            output_hist_sharegpt: hist(&outputs(&sg), 16, 2048),
            output_hist_azure: hist(&outputs(&az), 16, 2048),
        },
    );
}
