//! Extension ablation: context-length-aware cost estimation (§6).
//!
//! The paper's conclusion notes gLLM "assumes that computation time is
//! proportional to the number of tokens in a batch", while self-attention
//! is quadratic in sequence length, and names context-aware estimation as
//! future work. This bench quantifies the gap on a long-context workload
//! (hardware model with the quadratic term ON):
//!
//! * plain gLLM — token-count budgeting: late chunks of long prompts take
//!   much longer than their token count suggests, re-creating inter-batch
//!   imbalance;
//! * gLLM+ctx — cost budgeting with `1 + c/quad_ref` token weights: long-
//!   context chunks shrink so batch *times* stay even.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, write_json};
use gllm_core::throttle::ThrottleConfig;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{ArrivalProcess, Dataset, LengthDistribution, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    ttft_s: f64,
    tpot_s: f64,
    e2el_s: f64,
    throughput: f64,
    token_cv: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    // A long-context workload: 6-14 K-token prompts, short outputs.
    let dataset = Dataset::Custom {
        input: LengthDistribution::Uniform { min: 6144, max: 14336 },
        output: LengthDistribution::Uniform { min: 32, max: 128 },
    };
    let trace = Trace::synthesize(dataset, ArrivalProcess::Poisson { rate: 0.5 }, 128.0, 0, 7);
    // The token-CV column reads the token trace; utilisation is unused.
    let cfg = EngineConfig { record_utilization: false, ..EngineConfig::default() };

    let quad_ref = deployment.quad_ref_tokens();
    println!(
        "Extension ablation — context-aware throttling on long-context prompts (quad_ref = {} tokens)\n",
        quad_ref as usize
    );

    let systems = [
        SystemConfig::gllm(),
        SystemConfig::gllm_with(ThrottleConfig::default().with_context_aware(quad_ref)),
    ];
    let job_list: Vec<ExperimentJob> = systems
        .iter()
        .map(|s| ExperimentJob {
            trace: &trace,
            system: s,
            deployment: &deployment,
            cfg: &cfg,
            tweak: None,
        })
        .collect();
    let results = run_experiments(&job_list, jobs());
    let mut rows = Vec::new();
    let mut t = Table::new(&["system", "TTFT (ms)", "TPOT (ms)", "E2EL (s)", "tput", "token CV"]);
    for (sys, r) in systems.iter().zip(&results) {
        let name = sys.policy.build().name().to_string();
        t.row(vec![
            name.clone(),
            ms(r.report.mean_ttft_s),
            ms(r.report.mean_tpot_s),
            f3(r.report.mean_e2el_s),
            f3(r.report.throughput_tok_s),
            f3(r.token_trace.total_tokens_cv()),
        ]);
        rows.push(Row {
            system: name,
            ttft_s: r.report.mean_ttft_s,
            tpot_s: r.report.mean_tpot_s,
            e2el_s: r.report.mean_e2el_s,
            throughput: r.report.throughput_tok_s,
            token_cv: r.token_trace.total_tokens_cv(),
        });
    }
    t.print();
    println!("\nexpected: gLLM+ctx trades raw token volume for even batch *times*,");
    println!("improving TPOT on long-context workloads where attention dominates.");
    write_json("abl_context_aware", &rows);
}
