//! Figure 13: maximum-throughput scalability as GPUs/nodes increase —
//! (a) intra-node 4×L20, (b) cross-node with one A100 per node.
//!
//! Methodology matches §4.3: escalate the request rate until throughput
//! stabilises; the bar annotations are the speedup multiples relative to
//! the smallest feasible deployment of each system.
//!
//! Each `(panel, system, gpus)` cell is an independent capacity search, so
//! the whole grid fans across the sweep harness; rows are then emitted in
//! grid order, identical to the old serial nested loops.

use gllm_bench::output::{f3, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::capacity::max_throughput;
use gllm_sim::sweep::parallel_map;
use gllm_sim::{Deployment, Parallelism, SystemConfig};
use gllm_workload::Dataset;
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    panel: String,
    system: String,
    gpus: usize,
    max_throughput: f64,
    speedup_vs_smallest: f64,
}

/// One capacity-search cell of the figure's grid.
struct Cell {
    panel: &'static str,
    sys_index: usize,
    gpus: usize,
    deployment: Deployment,
    feasible: bool,
}

fn cells_for(
    name: &'static str,
    model: &ModelConfig,
    cluster_of: impl Fn(usize) -> ClusterSpec,
    gpu_counts: &[usize],
    systems: &[SystemConfig],
    cells: &mut Vec<Cell>,
) {
    for (sys_index, sys) in systems.iter().enumerate() {
        for &n in gpu_counts {
            let deployment = Deployment::new(model.clone(), cluster_of(n));
            // Skip infeasible deployments (model does not fit).
            let feasible = match sys.parallelism {
                Parallelism::Pipeline => n <= model.num_layers && deployment.pp_kv_tokens() > 0,
                Parallelism::Tensor => deployment.tp_kv_tokens() > 0,
            };
            cells.push(Cell { panel: name, sys_index, gpus: n, deployment, feasible });
        }
    }
}

fn main() {
    let jobs = jobs();
    let systems = SystemConfig::paper_main();
    let mut cells = Vec::new();
    cells_for(
        "(a) intra-node L20, Qwen2.5-14B",
        &ModelConfig::qwen2_5_14b(),
        ClusterSpec::intra_node_l20,
        &[1, 2, 4],
        &systems,
        &mut cells,
    );
    cells_for(
        "(a') intra-node L20, Qwen2.5-32B",
        &ModelConfig::qwen2_5_32b(),
        ClusterSpec::intra_node_l20,
        &[2, 4],
        &systems,
        &mut cells,
    );
    cells_for(
        "(b) cross-node 1xA100 per node, Qwen2.5-14B",
        &ModelConfig::qwen2_5_14b(),
        ClusterSpec::cross_node_a100,
        &[1, 2, 4],
        &systems,
        &mut cells,
    );

    // Every feasible cell's rate ladder runs concurrently; the merge is in
    // cell order so the printed rows and JSON never depend on scheduling.
    let caps: Vec<Option<f64>> = parallel_map(&cells, jobs, |_, cell| {
        if !cell.feasible {
            return None;
        }
        let sys = &systems[cell.sys_index];
        Some(max_throughput(sys, &cell.deployment, Dataset::ShareGpt, 1.0, 77).max_throughput_tok_s)
    });

    let mut bars = Vec::new();
    let mut current_panel = "";
    let mut table: Option<Table> = None;
    let mut base: Option<f64> = None;
    let mut last_sys = usize::MAX;
    for (cell, cap) in cells.iter().zip(&caps) {
        if cell.panel != current_panel {
            if let Some(t) = table.take() {
                t.print();
            }
            println!("\nFigure 13 panel: {}\n", cell.panel);
            current_panel = cell.panel;
            table = Some(Table::new(&["system", "gpus", "max tput (tok/s)", "speedup"]));
            last_sys = usize::MAX;
        }
        let t = table.as_mut().expect("table exists");
        let sys = &systems[cell.sys_index];
        if cell.sys_index != last_sys {
            base = None;
            last_sys = cell.sys_index;
        }
        let Some(tput) = *cap else {
            t.row(vec![sys.name.clone(), cell.gpus.to_string(), "-".into(), "-".into()]);
            continue;
        };
        let speedup = match base {
            Some(b) => tput / b,
            None => {
                base = Some(tput);
                1.0
            }
        };
        t.row(vec![
            sys.name.clone(),
            cell.gpus.to_string(),
            f3(tput),
            format!("{}x", f3(speedup)),
        ]);
        bars.push(Bar {
            panel: cell.panel.into(),
            system: sys.name.clone(),
            gpus: cell.gpus,
            max_throughput: tput,
            speedup_vs_smallest: speedup,
        });
    }
    if let Some(t) = table.take() {
        t.print();
    }
    write_json("fig13_scalability", &bars);
}
