//! Figure 13: maximum-throughput scalability as GPUs/nodes increase —
//! (a) intra-node 4×L20, (b) cross-node with one A100 per node.
//!
//! Methodology matches §4.3: escalate the request rate until throughput
//! stabilises; the bar annotations are the speedup multiples relative to
//! the smallest feasible deployment of each system.

use gllm_bench::output::{f3, Table};
use gllm_bench::write_json;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::capacity::max_throughput;
use gllm_sim::{Deployment, Parallelism, SystemConfig};
use gllm_workload::Dataset;
use serde::Serialize;

#[derive(Serialize)]
struct Bar {
    panel: String,
    system: String,
    gpus: usize,
    max_throughput: f64,
    speedup_vs_smallest: f64,
}

fn panel(
    name: &str,
    model: &ModelConfig,
    cluster_of: impl Fn(usize) -> ClusterSpec,
    gpu_counts: &[usize],
    bars: &mut Vec<Bar>,
) {
    println!("\nFigure 13 panel: {name}\n");
    let systems = SystemConfig::paper_main();
    let mut t = Table::new(&["system", "gpus", "max tput (tok/s)", "speedup"]);
    for sys in &systems {
        let mut base: Option<f64> = None;
        for &n in gpu_counts {
            let deployment = Deployment::new(model.clone(), cluster_of(n));
            // Skip infeasible deployments (model does not fit).
            let feasible = match sys.parallelism {
                Parallelism::Pipeline => n <= model.num_layers && deployment.pp_kv_tokens() > 0,
                Parallelism::Tensor => deployment.tp_kv_tokens() > 0,
            };
            if !feasible {
                t.row(vec![sys.name.clone(), n.to_string(), "-".into(), "-".into()]);
                continue;
            }
            let cap = max_throughput(sys, &deployment, Dataset::ShareGpt, 1.0, 77);
            let speedup = match base {
                Some(b) => cap.max_throughput_tok_s / b,
                None => {
                    base = Some(cap.max_throughput_tok_s);
                    1.0
                }
            };
            t.row(vec![
                sys.name.clone(),
                n.to_string(),
                f3(cap.max_throughput_tok_s),
                format!("{}x", f3(speedup)),
            ]);
            bars.push(Bar {
                panel: name.into(),
                system: sys.name.clone(),
                gpus: n,
                max_throughput: cap.max_throughput_tok_s,
                speedup_vs_smallest: speedup,
            });
        }
    }
    t.print();
}

fn main() {
    let mut bars = Vec::new();
    panel(
        "(a) intra-node L20, Qwen2.5-14B",
        &ModelConfig::qwen2_5_14b(),
        ClusterSpec::intra_node_l20,
        &[1, 2, 4],
        &mut bars,
    );
    panel(
        "(a') intra-node L20, Qwen2.5-32B",
        &ModelConfig::qwen2_5_32b(),
        ClusterSpec::intra_node_l20,
        &[2, 4],
        &mut bars,
    );
    panel(
        "(b) cross-node 1xA100 per node, Qwen2.5-14B",
        &ModelConfig::qwen2_5_14b(),
        ClusterSpec::cross_node_a100,
        &[1, 2, 4],
        &mut bars,
    );
    write_json("fig13_scalability", &bars);
}
