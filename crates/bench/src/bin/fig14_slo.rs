//! Figure 14: SLO attainment vs request rate — gLLM vs vLLM serving
//! Llama-3.1-100B on 4 cross-node A800s.
//!
//! (a) ShareGPT with SLO TTFT ≤ 2500 ms, TPOT ≤ 100 ms;
//! (b) Azure with SLO TTFT ≤ 4000 ms, TPOT ≤ 200 ms.
//!
//! **Substrate calibration note.** In this reproduction the 100B model's
//! physical decode floor on 4×A800 (≈50 GB of stage weights per forward at
//! ~1.6 TB/s effective bandwidth → ≈124 ms/token through a 4-deep
//! pipeline) sits *above* the paper's 100 ms TPOT threshold, so the
//! paper's absolute thresholds would yield 0 % attainment for every
//! system. The TPOT thresholds are therefore scaled by 1.6× to sit at the
//! same relative distance from the substrate's floor; the *shape* (gLLM's
//! attainment curve dominating vLLM's, the crossover rate ratio) is the
//! reproduced quantity. See EXPERIMENTS.md.

use gllm_bench::output::{f3, Table};
use gllm_bench::{jobs, sweep_rates, write_json};
use gllm_metrics::SloSpec;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::Dataset;

fn main() {
    let jobs = jobs();
    let systems = [SystemConfig::gllm(), SystemConfig::vllm()];
    let deployment =
        Deployment::new(ModelConfig::llama3_1_100b(), ClusterSpec::cross_node_a800(4));
    // Paper thresholds with the substrate's uniform 1.6x latency scaling
    // (see the module docs).
    let slo_a = SloSpec::from_ms(4000.0, 160.0);
    let slo_b = SloSpec::from_ms(6400.0, 320.0);
    let panels = [
        ("(a) sharegpt, TTFT<=4000ms TPOT<=160ms", Dataset::ShareGpt, slo_a,
            vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5]),
        ("(b) azure, TTFT<=6400ms TPOT<=320ms", Dataset::Azure, slo_b,
            vec![0.125, 0.25, 0.375, 0.5, 0.625, 0.75]),
    ];

    let mut all = Vec::new();
    for (name, dataset, slo, rates) in panels {
        let pts = sweep_rates(&systems, &deployment, dataset, &rates, 1004, Some(slo), jobs);
        println!("\nFigure 14 panel: {name}\n");
        let mut t = Table::new(&["system", "rate", "SLO attainment", "TTFT (ms)", "TPOT (ms)"]);
        for p in &pts {
            t.row(vec![
                p.system.clone(),
                f3(p.rate),
                f3(p.slo_attainment.unwrap_or(0.0)),
                f3(p.ttft_s * 1000.0),
                f3(p.tpot_s * 1000.0),
            ]);
        }
        t.print();

        // The paper's summary statistic: highest rate sustaining >= 80%.
        for sys in &systems {
            let best = pts
                .iter()
                .filter(|p| p.system == sys.name && p.slo_attainment.unwrap_or(0.0) >= 0.8)
                .map(|p| p.rate)
                .fold(0.0f64, f64::max);
            println!("  {} max rate with >=80% attainment: {}", sys.name, f3(best));
        }
        all.push((name.to_string(), pts));
    }
    write_json("fig14_slo", &all);
}
