//! Figure 16: sensitivity of gLLM to its hyper-parameters — `#T`, `#MaxP`,
//! `#MinP` and `KV_thresh` — reporting metrics normalised to the default
//! configuration (`#T=8, #MaxP=2048, #MinP=32, KV_thresh=0.05`).
//!
//! Each parameter is swept in the regime where it binds (as the fig. 15
//! ablation panels also show): `#T` and `#MinP` regulate prefill smoothing
//! and matter under bursty short-prompt traffic (ShareGPT); `#MaxP` caps
//! the prefill rate and `KV_thresh` guards cache headroom, both of which
//! bind when long Azure prompts keep the prefill backlog and the KV cache
//! saturated.

use gllm_bench::output::{f3, Table};
use gllm_bench::{jobs, write_json};
use gllm_core::throttle::ThrottleConfig;
use gllm_core::Tokens;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, RunResult, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct SensitivityRow {
    parameter: String,
    value: String,
    regime: String,
    ttft_norm: f64,
    tpot_norm: f64,
    e2el_norm: f64,
    throughput_norm: f64,
}

#[derive(Clone, Copy)]
struct Metrics {
    ttft: f64,
    tpot: f64,
    e2el: f64,
    tput: f64,
}

fn metrics(r: &RunResult) -> Metrics {
    Metrics {
        ttft: r.report.mean_ttft_s,
        tpot: r.report.mean_tpot_s,
        e2el: r.report.mean_e2el_s,
        tput: r.report.throughput_tok_s,
    }
}

/// Which workload regime a sweep point runs in.
#[derive(Clone, Copy, PartialEq)]
enum Regime {
    ShareGpt,
    Azure,
}

fn main() {
    let jobs = jobs();
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    // Bursty short-prompt regime (WT-side parameters bind here).
    let trace_sg = Trace::paper_online(Dataset::ShareGpt, 4.0, 1006);
    // Saturated long-prompt regime (prefill-rate and KV parameters bind).
    let trace_az = Trace::paper_online(Dataset::Azure, 3.0, 1006);
    // Only the aggregate report is consumed — skip the observers.
    let engine_cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };

    // Declare the whole sweep up front, then fan all 20 simulations across
    // the harness at once: (param, value, regime, throttle config).
    let mut points: Vec<(&str, String, Regime, ThrottleConfig)> = vec![
        ("base", "default".into(), Regime::ShareGpt, ThrottleConfig::default()),
        ("base", "default".into(), Regime::Azure, ThrottleConfig::default()),
    ];
    for t in [1usize, 2, 4, 8, 16] {
        points.push((
            "#T",
            t.to_string(),
            Regime::ShareGpt,
            ThrottleConfig { iter_t: t, ..Default::default() },
        ));
    }
    for max_p in [512usize, 1024, 2048, 4096, 8192] {
        points.push((
            "#MaxP",
            max_p.to_string(),
            Regime::Azure,
            ThrottleConfig { max_p: Tokens(max_p), ..Default::default() },
        ));
    }
    for min_p in [8usize, 16, 32, 64] {
        points.push((
            "#MinP",
            min_p.to_string(),
            Regime::ShareGpt,
            ThrottleConfig { min_p: Tokens(min_p), ..Default::default() },
        ));
    }
    for kv_thresh in [0.0f64, 0.05, 0.1, 0.2] {
        points.push((
            "KV_thresh",
            format!("{kv_thresh}"),
            Regime::Azure,
            ThrottleConfig { kv_thresh, ..Default::default() },
        ));
    }

    let systems: Vec<SystemConfig> =
        points.iter().map(|(_, _, _, tc)| SystemConfig::gllm_with(tc.clone())).collect();
    let job_list: Vec<ExperimentJob> = points
        .iter()
        .zip(&systems)
        .map(|(&(_, _, regime, _), sys)| ExperimentJob {
            trace: if regime == Regime::ShareGpt { &trace_sg } else { &trace_az },
            system: sys,
            deployment: &deployment,
            cfg: &engine_cfg,
            tweak: None,
        })
        .collect();
    let results = run_experiments(&job_list, jobs);

    let base_sg = metrics(&results[0]);
    let base_az = metrics(&results[1]);
    println!("Figure 16 — sensitivity, normalised to the defaults of each regime");
    println!(
        "  sharegpt@4 baseline: TTFT {:.0} ms, TPOT {:.1} ms, E2EL {:.2} s, tput {:.0} tok/s",
        base_sg.ttft * 1e3, base_sg.tpot * 1e3, base_sg.e2el, base_sg.tput
    );
    println!(
        "  azure@3 baseline:    TTFT {:.0} ms, TPOT {:.1} ms, E2EL {:.2} s, tput {:.0} tok/s\n",
        base_az.ttft * 1e3, base_az.tpot * 1e3, base_az.e2el, base_az.tput
    );

    let mut rows: Vec<SensitivityRow> = Vec::new();
    let mut table = Table::new(&["param", "value", "regime", "TTFT", "TPOT", "E2EL", "tput"]);
    let mut record = |param: &str,
                      value: String,
                      regime: &str,
                      m: Metrics,
                      base: Metrics,
                      table: &mut Table| {
        let row = SensitivityRow {
            parameter: param.into(),
            value: value.clone(),
            regime: regime.into(),
            ttft_norm: m.ttft / base.ttft,
            tpot_norm: m.tpot / base.tpot,
            e2el_norm: m.e2el / base.e2el,
            throughput_norm: m.tput / base.tput,
        };
        table.row(vec![
            param.into(),
            value,
            regime.into(),
            f3(row.ttft_norm),
            f3(row.tpot_norm),
            f3(row.e2el_norm),
            f3(row.throughput_norm),
        ]);
        rows.push(row);
    };

    for ((param, value, regime, _), r) in points.iter().zip(&results).skip(2) {
        let (regime_name, base) = match regime {
            Regime::ShareGpt => ("sharegpt@4", base_sg),
            Regime::Azure => ("azure@3", base_az),
        };
        record(param, value.clone(), regime_name, metrics(r), base, &mut table);
    }
    table.print();
    println!("\npaper expectations: larger #T smooths batches (TPOT/E2EL improve, TTFT");
    println!("drifts up); #MaxP=512 costs throughput via prefill-rate starvation;");
    println!("KV_thresh=0 invites preemptions; #MinP is within noise.");
    write_json("fig16_sensitivity", &rows);
}
