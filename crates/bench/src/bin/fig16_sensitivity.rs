//! Figure 16: sensitivity of gLLM to its hyper-parameters — `#T`, `#MaxP`,
//! `#MinP` and `KV_thresh` — reporting metrics normalised to the default
//! configuration (`#T=8, #MaxP=2048, #MinP=32, KV_thresh=0.05`).
//!
//! Each parameter is swept in the regime where it binds (as the fig. 15
//! ablation panels also show): `#T` and `#MinP` regulate prefill smoothing
//! and matter under bursty short-prompt traffic (ShareGPT); `#MaxP` caps
//! the prefill rate and `KV_thresh` guards cache headroom, both of which
//! bind when long Azure prompts keep the prefill backlog and the KV cache
//! saturated.

use gllm_bench::output::{f3, Table};
use gllm_bench::write_json;
use gllm_core::throttle::ThrottleConfig;
use gllm_core::Tokens;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::{run_experiment, Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct SensitivityRow {
    parameter: String,
    value: String,
    regime: String,
    ttft_norm: f64,
    tpot_norm: f64,
    e2el_norm: f64,
    throughput_norm: f64,
}

#[derive(Clone, Copy)]
struct Metrics {
    ttft: f64,
    tpot: f64,
    e2el: f64,
    tput: f64,
}

fn run(cfg: ThrottleConfig, trace: &Trace, deployment: &Deployment) -> Metrics {
    let sys = SystemConfig::gllm_with(cfg);
    let r = run_experiment(trace, &sys, deployment, &EngineConfig::default());
    Metrics {
        ttft: r.report.mean_ttft_s,
        tpot: r.report.mean_tpot_s,
        e2el: r.report.mean_e2el_s,
        tput: r.report.throughput_tok_s,
    }
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    // Bursty short-prompt regime (WT-side parameters bind here).
    let trace_sg = Trace::paper_online(Dataset::ShareGpt, 4.0, 1006);
    // Saturated long-prompt regime (prefill-rate and KV parameters bind).
    let trace_az = Trace::paper_online(Dataset::Azure, 3.0, 1006);

    let base_sg = run(ThrottleConfig::default(), &trace_sg, &deployment);
    let base_az = run(ThrottleConfig::default(), &trace_az, &deployment);
    println!("Figure 16 — sensitivity, normalised to the defaults of each regime");
    println!(
        "  sharegpt@4 baseline: TTFT {:.0} ms, TPOT {:.1} ms, E2EL {:.2} s, tput {:.0} tok/s",
        base_sg.ttft * 1e3, base_sg.tpot * 1e3, base_sg.e2el, base_sg.tput
    );
    println!(
        "  azure@3 baseline:    TTFT {:.0} ms, TPOT {:.1} ms, E2EL {:.2} s, tput {:.0} tok/s\n",
        base_az.ttft * 1e3, base_az.tpot * 1e3, base_az.e2el, base_az.tput
    );

    let mut rows: Vec<SensitivityRow> = Vec::new();
    let mut table = Table::new(&["param", "value", "regime", "TTFT", "TPOT", "E2EL", "tput"]);
    let mut record = |param: &str,
                      value: String,
                      regime: &str,
                      m: Metrics,
                      base: Metrics,
                      table: &mut Table| {
        let row = SensitivityRow {
            parameter: param.into(),
            value: value.clone(),
            regime: regime.into(),
            ttft_norm: m.ttft / base.ttft,
            tpot_norm: m.tpot / base.tpot,
            e2el_norm: m.e2el / base.e2el,
            throughput_norm: m.tput / base.tput,
        };
        table.row(vec![
            param.into(),
            value,
            regime.into(),
            f3(row.ttft_norm),
            f3(row.tpot_norm),
            f3(row.e2el_norm),
            f3(row.throughput_norm),
        ]);
        rows.push(row);
    };

    for t in [1usize, 2, 4, 8, 16] {
        let m = run(ThrottleConfig { iter_t: t, ..Default::default() }, &trace_sg, &deployment);
        record("#T", t.to_string(), "sharegpt@4", m, base_sg, &mut table);
    }
    for max_p in [512usize, 1024, 2048, 4096, 8192] {
        let m = run(
            ThrottleConfig { max_p: Tokens(max_p), ..Default::default() },
            &trace_az,
            &deployment,
        );
        record("#MaxP", max_p.to_string(), "azure@3", m, base_az, &mut table);
    }
    for min_p in [8usize, 16, 32, 64] {
        let m = run(
            ThrottleConfig { min_p: Tokens(min_p), ..Default::default() },
            &trace_sg,
            &deployment,
        );
        record("#MinP", min_p.to_string(), "sharegpt@4", m, base_sg, &mut table);
    }
    for kv_thresh in [0.0f64, 0.05, 0.1, 0.2] {
        let m =
            run(ThrottleConfig { kv_thresh, ..Default::default() }, &trace_az, &deployment);
        record("KV_thresh", format!("{kv_thresh}"), "azure@3", m, base_az, &mut table);
    }
    table.print();
    println!("\npaper expectations: larger #T smooths batches (TPOT/E2EL improve, TTFT");
    println!("drifts up); #MaxP=512 costs throughput via prefill-rate starvation;");
    println!("KV_thresh=0 invites preemptions; #MinP is within noise.");
    write_json("fig16_sensitivity", &rows);
}
