//! Figure 10: intra-node latency (TTFT/TPOT/E2EL) and throughput vs
//! request rate — vLLM vs SGLang vs gLLM on 1 node with 4×L20.
//!
//! The paper plots Qwen2.5-14B, Qwen2.5-32B and Llama-3.1-100B on ShareGPT
//! and Azure. The 100B model does not fit on 4×L20 (the paper serves it on
//! A800 nodes; see `fig12_cross_node`), so this intra-node figure covers
//! the 14B/32B panels.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, sweep_rates, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::Dataset;

fn main() {
    let jobs = jobs();
    let systems = SystemConfig::paper_main();
    let panels: Vec<(&str, ModelConfig, Dataset, Vec<f64>)> = vec![
        ("14B / sharegpt", ModelConfig::qwen2_5_14b(), Dataset::ShareGpt, vec![1.0, 2.0, 4.0, 8.0, 12.0]),
        ("14B / azure", ModelConfig::qwen2_5_14b(), Dataset::Azure, vec![0.5, 1.0, 2.0, 3.0, 4.0]),
        ("32B / sharegpt", ModelConfig::qwen2_5_32b(), Dataset::ShareGpt, vec![0.5, 1.0, 2.0, 4.0, 6.0]),
        ("32B / azure", ModelConfig::qwen2_5_32b(), Dataset::Azure, vec![0.25, 0.5, 1.0, 1.5, 2.0]),
    ];

    let mut all = Vec::new();
    for (name, model, dataset, rates) in panels {
        let deployment = Deployment::new(model, ClusterSpec::intra_node_l20(4));
        let pts = sweep_rates(&systems, &deployment, dataset, &rates, 1001, None, jobs);
        println!("\nFigure 10 panel: {name} (4xL20, PCIe)\n");
        let mut t = Table::new(&[
            "system", "rate", "TTFT (ms)", "TPOT (ms)", "E2EL (s)", "tput (tok/s)", "finished",
        ]);
        for p in &pts {
            t.row(vec![
                p.system.clone(),
                f3(p.rate),
                ms(p.ttft_s),
                ms(p.tpot_s),
                f3(p.e2el_s),
                f3(p.throughput),
                format!("{}/{}", p.finished, p.total),
            ]);
        }
        t.print();
        all.push((name.to_string(), pts));
    }
    write_json("fig10_intra_node", &all);
}
