//! Extension ablation: chunked pipeline parallelism (CPP, §3.4).
//!
//! The paper integrates Mooncake-style CPP: a request's next prefill chunk
//! can be scheduled while earlier chunks are still in later pipeline
//! stages, exploiting *intra-request* parallelism. This bench measures the
//! TTFT benefit on a long-prompt workload (where CPP shines) and checks it
//! does not hurt the mixed online workload.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{ArrivalProcess, Dataset, LengthDistribution, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    system: String,
    ttft_s: f64,
    tpot_s: f64,
    e2el_s: f64,
    throughput: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    // Report-only bench: skip the per-iteration observers.
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    let long_prompts = Trace::synthesize(
        Dataset::Custom {
            input: LengthDistribution::Uniform { min: 8192, max: 16384 },
            output: LengthDistribution::Uniform { min: 16, max: 64 },
        },
        ArrivalProcess::Poisson { rate: 0.25 },
        128.0,
        0,
        17,
    );
    let online = Trace::paper_online(Dataset::ShareGpt, 4.0, 17);

    println!("Extension ablation — chunked pipeline parallelism (CPP)\n");
    let systems = [SystemConfig::gllm(), SystemConfig::gllm_cpp()];
    let workloads = [("long-prompt @0.25", &long_prompts), ("sharegpt @4", &online)];
    let cells: Vec<(&str, &SystemConfig)> = workloads
        .iter()
        .flat_map(|&(wname, _)| systems.iter().map(move |sys| (wname, sys)))
        .collect();
    let (deployment, cfg_ref) = (&deployment, &cfg);
    let job_list: Vec<ExperimentJob> = workloads
        .iter()
        .flat_map(|&(_, trace)| {
            systems.iter().map(move |sys| ExperimentJob {
                trace,
                system: sys,
                deployment,
                cfg: cfg_ref,
                tweak: None,
            })
        })
        .collect();
    let results = run_experiments(&job_list, jobs());
    let mut rows = Vec::new();
    let mut t = Table::new(&["workload", "system", "TTFT (ms)", "TPOT (ms)", "E2EL (s)", "tput"]);
    for ((wname, sys), r) in cells.iter().zip(&results) {
        t.row(vec![
            (*wname).into(),
            sys.name.clone(),
            ms(r.report.mean_ttft_s),
            ms(r.report.mean_tpot_s),
            f3(r.report.mean_e2el_s),
            f3(r.report.throughput_tok_s),
        ]);
        rows.push(Row {
            workload: (*wname).into(),
            system: sys.name.clone(),
            ttft_s: r.report.mean_ttft_s,
            tpot_s: r.report.mean_tpot_s,
            e2el_s: r.report.mean_e2el_s,
            throughput: r.report.throughput_tok_s,
        });
    }
    t.print();
    println!("\nexpected: CPP pipelines a long prompt's chunks across stages,");
    println!("cutting TTFT sharply on prompt-heavy workloads while leaving the");
    println!("mixed online workload unchanged (decode steps never overlap).");
    write_json("abl_cpp", &rows);
}
