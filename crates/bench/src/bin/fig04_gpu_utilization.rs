//! Figure 4: GPU utilisation (a) and batched token count (b) over time
//! under Sarathi-style scheduling, serving a 32B model on 4 GPUs.
//!
//! The paper observes a two-phase pattern: a high-fluctuation phase while
//! requests arrive (mixed prefill+decode), then a steadier but suboptimal
//! decode-only phase once arrivals stop — with batched token counts
//! fluctuating throughout. This binary reproduces the experiment with a
//! finite request wave and prints both series, plus gLLM's utilisation for
//! contrast.

use gllm_bench::output::{f3, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{ArrivalProcess, Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Fig4Output {
    utilization_sarathi: Vec<(f64, f64)>,
    utilization_gllm: Vec<(f64, f64)>,
    batched_tokens_sarathi: Vec<usize>,
    mean_util_sarathi: f64,
    mean_util_gllm: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    // A 40 s wave of requests, then drain: the paper's arrival pattern.
    let trace = Trace::synthesize(
        Dataset::ShareGpt,
        ArrivalProcess::Poisson { rate: 6.0 },
        40.0,
        0,
        42,
    );
    // This figure consumes every observer plane (utilisation series, token
    // trace, structured pipeline trace), so it is the one bench that turns
    // them all on.
    let cfg = EngineConfig { record_pipeline_trace: true, ..EngineConfig::default() };
    let systems = [SystemConfig::vllm(), SystemConfig::gllm()];
    let job_list: Vec<ExperimentJob> = systems
        .iter()
        .map(|s| ExperimentJob {
            trace: &trace,
            system: s,
            deployment: &deployment,
            cfg: &cfg,
            tweak: None,
        })
        .collect();
    let mut results = run_experiments(&job_list, jobs());
    let gllm = results.pop().expect("gLLM run");
    let sarathi = results.pop().expect("Sarathi run");

    // Cross-check the two instrumentation planes: the structured trace's
    // stage-busy spans must account for the same GPU-seconds the
    // BusyTracker aggregated (each pipeline stage here is one GPU).
    let trace_busy = gllm.pipeline_trace.stage_busy_total();
    let tracker_busy = gllm.mean_utilization * gllm.end_time_s * 4.0;
    let rel = (trace_busy - tracker_busy).abs() / tracker_busy.max(f64::MIN_POSITIVE);
    assert!(
        rel < 0.01,
        "trace busy {trace_busy:.3} s vs tracker busy {tracker_busy:.3} s ({:.2}% off)",
        rel * 100.0
    );
    println!(
        "pipeline-trace cross-check: {:.1} GPU-seconds busy in both planes ({:.3}% apart)",
        trace_busy,
        rel * 100.0
    );

    println!("Figure 4a — GPU utilisation over time (window-averaged)\n");
    let mut table = Table::new(&["t (s)", "sarathi util", "gLLM util"]);
    for (i, (t, u)) in sarathi.utilization_series.iter().enumerate() {
        let g = gllm.utilization_series.get(i).map(|&(_, u)| u).unwrap_or(0.0);
        table.row(vec![f3(*t), f3(*u), f3(g)]);
    }
    table.print();
    println!(
        "\nmean utilisation: sarathi {} vs gLLM {}",
        f3(sarathi.mean_utilization),
        f3(gllm.mean_utilization)
    );

    println!("\nFigure 4b — batched token count per iteration (Sarathi)\n");
    let mut tb = Table::new(&["iter", "batched tokens"]);
    for p in sarathi.token_trace.points().iter().take(80) {
        tb.row(vec![p.iteration.to_string(), p.total().to_string()]);
    }
    tb.print();
    println!(
        "\ntoken-count CV: sarathi {} vs gLLM {}",
        f3(sarathi.token_trace.total_tokens_cv()),
        f3(gllm.token_trace.total_tokens_cv())
    );

    write_json(
        "fig04_gpu_utilization",
        &Fig4Output {
            utilization_sarathi: sarathi.utilization_series.clone(),
            utilization_gllm: gllm.utilization_series.clone(),
            batched_tokens_sarathi: sarathi.token_trace.points().iter().map(|p| p.total()).collect(),
            mean_util_sarathi: sarathi.mean_utilization,
            mean_util_gllm: gllm.mean_utilization,
        },
    );
    // Chrome trace_event export: load in chrome://tracing or
    // https://ui.perfetto.dev to see per-stage compute and comm spans.
    write_json("fig04_pipeline_trace", &gllm.pipeline_trace.to_chrome_trace());
}
