//! Extension study: prefill/decode disaggregation vs unified gLLM.
//!
//! The paper's §1 critique of Splitwise/DistServe-style architectures:
//! "determining the optimal ratio of GPUs allocated to the prefill stage
//! versus the decode stage becomes challenging under dynamically
//! fluctuating request rates". This bench makes the critique quantitative:
//! three GPU splits of the same 4-GPU node serve three workload mixes;
//! each split wins somewhere and loses badly somewhere else, while unified
//! gLLM (which rebalances every iteration via Token Throttling) stays near
//! the per-workload best without any provisioning decision.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, write_json};
use gllm_metrics::ServingReport;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::parallel_map;
use gllm_sim::{
    run_experiment, simulate_disaggregated, Deployment, DisaggConfig, SystemConfig,
};
use gllm_workload::{ArrivalProcess, Dataset, LengthDistribution, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    system: String,
    ttft_s: f64,
    tpot_s: f64,
    e2el_s: f64,
    throughput: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_14b(), ClusterSpec::intra_node_l20(4));
    // Report-only bench: skip the per-iteration observers.
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    let workloads: Vec<(&str, Trace)> = vec![
        ("balanced (sharegpt @6)", Trace::paper_online(Dataset::ShareGpt, 6.0, 23)),
        (
            "prefill-heavy (2K in / 16 out @3)",
            Trace::synthesize(
                Dataset::Custom {
                    input: LengthDistribution::Uniform { min: 1536, max: 2560 },
                    output: LengthDistribution::Uniform { min: 8, max: 24 },
                },
                ArrivalProcess::Poisson { rate: 3.0 },
                128.0,
                0,
                23,
            ),
        ),
        (
            "decode-heavy (64 in / 512 out @2)",
            Trace::synthesize(
                Dataset::Custom {
                    input: LengthDistribution::Uniform { min: 32, max: 96 },
                    output: LengthDistribution::Uniform { min: 384, max: 640 },
                },
                ArrivalProcess::Poisson { rate: 2.0 },
                128.0,
                0,
                23,
            ),
        ),
    ];
    let splits = [
        DisaggConfig { prefill_gpus: 1, decode_gpus: 3 },
        DisaggConfig { prefill_gpus: 2, decode_gpus: 2 },
        DisaggConfig { prefill_gpus: 3, decode_gpus: 1 },
    ];

    // Each (workload, architecture) cell is an independent simulation —
    // unified gLLM or one P:D split — so the whole grid fans out at once.
    let gllm = SystemConfig::gllm();
    let cells: Vec<(&str, &Trace, Option<DisaggConfig>)> = workloads
        .iter()
        .flat_map(|(wname, trace)| {
            std::iter::once((*wname, trace, None))
                .chain(splits.iter().map(move |&s| (*wname, trace, Some(s))))
        })
        .collect();
    let reports: Vec<(String, ServingReport)> = parallel_map(&cells, jobs(), |_, cell| {
        let &(_, trace, split) = cell;
        match split {
            None => ("gLLM unified".into(), run_experiment(trace, &gllm, &deployment, &cfg).report),
            Some(split) => {
                let out = simulate_disaggregated(trace, &deployment, split, &cfg);
                (split.name(), ServingReport::from_recorder(&out.recorder))
            }
        }
    });

    let mut rows = Vec::new();
    let mut t = Table::new(&["workload", "system", "TTFT (ms)", "TPOT (ms)", "E2EL (s)", "tput"]);
    for ((wname, _, _), (system, report)) in cells.iter().zip(&reports) {
        t.row(vec![
            (*wname).into(),
            system.clone(),
            ms(report.mean_ttft_s),
            ms(report.mean_tpot_s),
            f3(report.mean_e2el_s),
            f3(report.throughput_tok_s),
        ]);
        rows.push(Row {
            workload: (*wname).into(),
            system: system.clone(),
            ttft_s: report.mean_ttft_s,
            tpot_s: report.mean_tpot_s,
            e2el_s: report.mean_e2el_s,
            throughput: report.throughput_tok_s,
        });
    }
    println!("Extension study — disaggregation ratio sensitivity (14B, 4xL20)\n");
    t.print();
    println!("\nexpected (the paper's §1 argument): no single P:D split is right for");
    println!("all three mixes — the split that wins the prefill-heavy workload");
    println!("starves decode on the decode-heavy one and vice versa — while unified");
    println!("gLLM rebalances per iteration and needs no provisioning choice.");
    write_json("abl_disaggregation", &rows);
}
