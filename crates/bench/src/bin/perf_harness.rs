//! Self-benchmark of the sweep harness and the sim-engine hot path.
//!
//! For each figure family this binary runs the same sweep three ways:
//!
//! 1. **serial** — optimized engine (cost memoization on, per-iteration
//!    observers off), one worker;
//! 2. **parallel** — identical jobs fanned across `--jobs` workers
//!    (default: all cores), asserting the serialized results are
//!    **byte-identical** to the serial run — any divergence exits nonzero;
//! 3. **baseline** — the pre-optimization engine configuration
//!    (memoization off, legacy scheduler data paths, auditor and all
//!    observers on), serial — what every bench paid before this harness
//!    existed.
//!
//! It writes `BENCH_sweep.json` at the repo root recording wall-clock
//! seconds, speedups and simulation rates per figure plus end-to-end
//! totals. `--quick` trims each family to a smoke-test subset for CI.

use std::time::Instant;

use gllm_bench::{has_flag, jobs, sweep_rates_with_cfg};
use gllm_metrics::SloSpec;
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::capacity::max_throughput_with;
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{parallel_map, run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

/// The seed-equivalent engine configuration: no cost memoization, the
/// legacy scheduler data paths, the invariant auditor and every observer
/// recording — exactly what the benches ran before this PR.
fn baseline_cfg() -> EngineConfig {
    EngineConfig {
        memoize_costs: false,
        fast_scheduler: false,
        audit: true,
        record_token_trace: true,
        record_utilization: true,
        ..EngineConfig::default()
    }
}

/// The optimized sweep configuration: fast scheduler paths, memoized
/// costs, observers and the (pure-validation) auditor off. The invariant
/// audit still runs in every figure binary and across the test suite; the
/// harness's job is to time raw sweep throughput.
fn optimized_cfg() -> EngineConfig {
    EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        audit: false,
        ..EngineConfig::default()
    }
}

#[derive(Serialize)]
struct FigureTiming {
    figure: String,
    sims: usize,
    serial_s: f64,
    parallel_s: f64,
    parallel_speedup: f64,
    baseline_serial_s: f64,
    speedup_vs_baseline: f64,
    sims_per_sec: f64,
}

#[derive(Serialize)]
struct BenchSweep {
    jobs: usize,
    cores: usize,
    quick: bool,
    figures: Vec<FigureTiming>,
    total_serial_s: f64,
    total_parallel_s: f64,
    total_baseline_serial_s: f64,
    parallel_speedup: f64,
    /// Headline number: optimized parallel sweep vs the seed-equivalent
    /// serial baseline (unmemoized engine, full recording).
    end_to_end_speedup: f64,
}

/// One figure family: how to run its sweep under a given (cfg, jobs) and
/// how many simulations that is. Returns serialized results for the
/// serial-vs-parallel equality check (baseline results are not compared —
/// recording flags are pure observers but the baseline timing is the
/// point, not its output).
struct Family {
    name: &'static str,
    sims: usize,
    run: Box<dyn Fn(&EngineConfig, usize) -> Vec<u8>>,
}

fn rate_family(
    name: &'static str,
    systems: Vec<SystemConfig>,
    deployment: Deployment,
    panels: Vec<(Dataset, Vec<f64>)>,
    seed: u64,
    slo: Option<SloSpec>,
) -> Family {
    let sims = systems.len() * panels.iter().map(|(_, r)| r.len()).sum::<usize>();
    Family {
        name,
        sims,
        run: Box::new(move |cfg, jobs| {
            let mut out = Vec::new();
            for (dataset, rates) in &panels {
                let pts = sweep_rates_with_cfg(
                    &systems, &deployment, *dataset, rates, seed, slo, cfg, jobs,
                );
                out.push(pts);
            }
            serde_json::to_vec(&out).expect("serialise rate sweep")
        }),
    }
}

fn families(quick: bool) -> Vec<Family> {
    let mut fams = Vec::new();

    // Figure 10: intra-node rate sweeps (one panel per model/dataset).
    let fig10_panels = if quick {
        vec![(Dataset::ShareGpt, vec![1.0, 4.0])]
    } else {
        vec![
            (Dataset::ShareGpt, vec![1.0, 2.0, 4.0, 8.0, 12.0]),
            (Dataset::Azure, vec![0.5, 1.0, 2.0, 3.0, 4.0]),
        ]
    };
    fams.push(rate_family(
        "fig10_intra_node",
        SystemConfig::paper_main(),
        Deployment::new(ModelConfig::qwen2_5_14b(), ClusterSpec::intra_node_l20(4)),
        fig10_panels,
        1001,
        None,
    ));

    // Figure 12: cross-node rate sweep.
    let fig12_rates = if quick { vec![0.5, 2.0] } else { vec![0.5, 1.0, 2.0, 4.0, 6.0] };
    fams.push(rate_family(
        "fig12_cross_node",
        SystemConfig::paper_main(),
        Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::cross_node_a100(4)),
        vec![(Dataset::ShareGpt, fig12_rates)],
        1002,
        None,
    ));

    // Figure 14: SLO-attainment sweep.
    let fig14_rates =
        if quick { vec![0.5, 1.0] } else { vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5] };
    fams.push(rate_family(
        "fig14_slo",
        vec![SystemConfig::gllm(), SystemConfig::vllm()],
        Deployment::new(ModelConfig::llama3_1_100b(), ClusterSpec::cross_node_a800(4)),
        vec![(Dataset::ShareGpt, fig14_rates)],
        1004,
        Some(SloSpec::from_ms(4000.0, 160.0)),
    ));

    // Figure 15-style ablation: all ablation systems on one online trace.
    {
        let deployment =
            Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
        let rate = if quick { 3.0 } else { 6.0 };
        let trace = Trace::paper_online(Dataset::ShareGpt, rate, 1005);
        let systems = SystemConfig::paper_ablation();
        let sims = systems.len();
        fams.push(Family {
            name: "fig15_ablation",
            sims,
            run: Box::new(move |cfg, jobs| {
                let job_list: Vec<ExperimentJob> = systems
                    .iter()
                    .map(|s| ExperimentJob {
                        trace: &trace,
                        system: s,
                        deployment: &deployment,
                        cfg,
                        tweak: None,
                    })
                    .collect();
                let results = run_experiments(&job_list, jobs);
                let rows: Vec<(&str, gllm_metrics::ServingReport, u64)> = systems
                    .iter()
                    .zip(&results)
                    .map(|(s, r)| (s.name.as_str(), r.report, r.preemptions))
                    .collect();
                serde_json::to_vec(&rows).expect("serialise ablation")
            }),
        });
    }

    // Figure 13-style capacity grid: max-throughput search per
    // (system, gpu-count) cell.
    {
        let model = ModelConfig::qwen2_5_14b();
        let systems = SystemConfig::paper_main();
        let gpu_counts: Vec<usize> = if quick { vec![2] } else { vec![1, 2, 4] };
        let cells: Vec<(usize, usize)> = (0..systems.len())
            .flat_map(|si| gpu_counts.iter().map(move |&g| (si, g)))
            .collect();
        let sims = cells.len();
        fams.push(Family {
            name: "fig13_scalability",
            sims,
            run: Box::new(move |cfg, jobs| {
                let caps: Vec<(usize, usize, f64)> = parallel_map(&cells, jobs, |_, &(si, g)| {
                    let deployment =
                        Deployment::new(model.clone(), ClusterSpec::intra_node_l20(g));
                    let cap = max_throughput_with(
                        &systems[si],
                        &deployment,
                        Dataset::ShareGpt,
                        1.0,
                        77,
                        cfg,
                    );
                    (si, g, cap.max_throughput_tok_s)
                });
                serde_json::to_vec(&caps).expect("serialise capacity grid")
            }),
        });
    }

    fams
}

fn time<F: FnOnce() -> Vec<u8>>(f: F) -> (f64, Vec<u8>) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = has_flag(&args, "--quick");
    let jobs = jobs();
    let cores = gllm_sim::sweep::default_jobs();
    let parallel_jobs = jobs.max(4);
    let opt = optimized_cfg();
    let base = baseline_cfg();

    println!(
        "perf harness — {} mode, {} cores, parallel runs use {} jobs\n",
        if quick { "quick" } else { "full" },
        cores,
        parallel_jobs
    );

    let mut figures = Vec::new();
    let (mut tot_serial, mut tot_parallel, mut tot_baseline) = (0.0, 0.0, 0.0);
    let mut diverged = false;
    for fam in families(quick) {
        let (serial_s, serial_bytes) = time(|| (fam.run)(&opt, 1));
        let (parallel_s, parallel_bytes) = time(|| (fam.run)(&opt, parallel_jobs));
        if serial_bytes != parallel_bytes {
            eprintln!(
                "DIVERGENCE: {} parallel output differs from serial ({} vs {} bytes)",
                fam.name,
                serial_bytes.len(),
                parallel_bytes.len()
            );
            diverged = true;
        }
        let (baseline_s, _) = time(|| (fam.run)(&base, 1));
        println!(
            "{:<20} {:>3} sims  serial {:>7.3}s  parallel {:>7.3}s  baseline {:>7.3}s  vs-baseline {:>5.2}x",
            fam.name,
            fam.sims,
            serial_s,
            parallel_s,
            baseline_s,
            baseline_s / parallel_s.max(f64::MIN_POSITIVE),
        );
        tot_serial += serial_s;
        tot_parallel += parallel_s;
        tot_baseline += baseline_s;
        figures.push(FigureTiming {
            figure: fam.name.into(),
            sims: fam.sims,
            serial_s,
            parallel_s,
            parallel_speedup: serial_s / parallel_s.max(f64::MIN_POSITIVE),
            baseline_serial_s: baseline_s,
            speedup_vs_baseline: baseline_s / parallel_s.max(f64::MIN_POSITIVE),
            sims_per_sec: fam.sims as f64 / parallel_s.max(f64::MIN_POSITIVE),
        });
    }

    let report = BenchSweep {
        jobs: parallel_jobs,
        cores,
        quick,
        figures,
        total_serial_s: tot_serial,
        total_parallel_s: tot_parallel,
        total_baseline_serial_s: tot_baseline,
        parallel_speedup: tot_serial / tot_parallel.max(f64::MIN_POSITIVE),
        end_to_end_speedup: tot_baseline / tot_parallel.max(f64::MIN_POSITIVE),
    };
    println!(
        "\ntotals: serial {:.2}s, parallel {:.2}s, baseline {:.2}s — \
         parallel speedup {:.2}x, end-to-end vs baseline {:.2}x",
        tot_serial,
        tot_parallel,
        tot_baseline,
        report.parallel_speedup,
        report.end_to_end_speedup
    );

    // BENCH_sweep.json lives at the repo root, next to ROADMAP.md.
    let root = match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(m) => std::path::PathBuf::from(m).join("../.."),
        Err(_) => std::path::PathBuf::from("."),
    };
    let path = root.join("BENCH_sweep.json");
    std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serialise timings"))
        .expect("write BENCH_sweep.json");
    eprintln!("[timings written to {}]", path.display());

    if diverged {
        eprintln!("FAIL: parallel sweep diverged from serial");
        std::process::exit(1);
    }
}
