//! Figure 12: cross-node latency and throughput vs request rate over the
//! 73.28 Gbps simulated network (NCCL P2P/SHM disabled) — 4 nodes.
//!
//! Qwen2.5-14B/32B run on A100-40G nodes; Llama-3.1-100B on A800-80G
//! nodes, exactly the paper's assignment. Pipeline systems send only
//! inter-stage activations across the network; SGLang's tensor parallelism
//! pays per-layer all-reduces, which is where it collapses.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, sweep_rates, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::Dataset;

fn main() {
    let jobs = jobs();
    let systems = SystemConfig::paper_main();
    let panels: Vec<(&str, ModelConfig, ClusterSpec, Dataset, Vec<f64>)> = vec![
        (
            "14B / sharegpt / A100",
            ModelConfig::qwen2_5_14b(),
            ClusterSpec::cross_node_a100(4),
            Dataset::ShareGpt,
            vec![1.0, 2.0, 4.0, 8.0, 12.0],
        ),
        (
            "32B / sharegpt / A100",
            ModelConfig::qwen2_5_32b(),
            ClusterSpec::cross_node_a100(4),
            Dataset::ShareGpt,
            vec![0.5, 1.0, 2.0, 4.0, 6.0],
        ),
        (
            "32B / azure / A100",
            ModelConfig::qwen2_5_32b(),
            ClusterSpec::cross_node_a100(4),
            Dataset::Azure,
            vec![0.25, 0.5, 1.0, 1.5, 2.0],
        ),
        (
            "100B / sharegpt / A800",
            ModelConfig::llama3_1_100b(),
            ClusterSpec::cross_node_a800(4),
            Dataset::ShareGpt,
            vec![0.25, 0.5, 1.0, 1.5, 2.0],
        ),
        (
            "100B / azure / A800",
            ModelConfig::llama3_1_100b(),
            ClusterSpec::cross_node_a800(4),
            Dataset::Azure,
            vec![0.125, 0.25, 0.5, 0.75, 1.0],
        ),
    ];

    let mut all = Vec::new();
    for (name, model, cluster, dataset, rates) in panels {
        let deployment = Deployment::new(model, cluster);
        let pts = sweep_rates(&systems, &deployment, dataset, &rates, 1002, None, jobs);
        println!("\nFigure 12 panel: {name} (4 nodes, 73.28 Gbps)\n");
        let mut t = Table::new(&[
            "system", "rate", "TTFT (ms)", "TPOT (ms)", "E2EL (s)", "tput (tok/s)", "finished",
        ]);
        for p in &pts {
            t.row(vec![
                p.system.clone(),
                f3(p.rate),
                ms(p.ttft_s),
                ms(p.tpot_s),
                f3(p.e2el_s),
                f3(p.throughput),
                format!("{}/{}", p.finished, p.total),
            ]);
        }
        t.print();
        all.push((name.to_string(), pts));
    }
    write_json("fig12_cross_node", &all);
}
