//! Figure 1: scheduled prefill/decode token counts per iteration,
//! Sarathi-Serve vs a balanced system (token budget 2048 for both).
//!
//! The paper's claim: Sarathi's trace shows substantially greater token
//! volatility, caused by (1) missed chances to batch decodes with prefills
//! and (2) uneven decode distribution. Here the "balanced system" is gLLM's
//! Token Throttling; the printed series is the figure, and the coefficient
//! of variation quantifies the gap.

use gllm_bench::output::{f3, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Output {
    sarathi: Vec<(usize, usize, usize)>,
    gllm: Vec<(usize, usize, usize)>,
    sarathi_cv: f64,
    gllm_cv: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    // A rate high enough that prefill and decode continuously contend.
    let trace = Trace::paper_online(Dataset::ShareGpt, 6.0, 2025);
    // This figure *is* the token trace, so it must be recorded; the
    // utilisation series is Fig. 4's concern and stays off.
    let cfg = EngineConfig { record_utilization: false, ..EngineConfig::default() };

    let systems = [SystemConfig::vllm(), SystemConfig::gllm()];
    let job_list: Vec<ExperimentJob> = systems
        .iter()
        .map(|s| ExperimentJob {
            trace: &trace,
            system: s,
            deployment: &deployment,
            cfg: &cfg,
            tweak: None,
        })
        .collect();
    let mut results = run_experiments(&job_list, jobs());
    let gllm = results.pop().expect("gLLM run");
    let sarathi = results.pop().expect("Sarathi run");

    println!("Figure 1 — scheduled token counts per iteration (budget 2048)\n");
    let mut table = Table::new(&["iter", "sarathi prefill", "sarathi decode", "sarathi total",
        "gLLM prefill", "gLLM decode", "gLLM total"]);
    let n = 60.min(sarathi.token_trace.len()).min(gllm.token_trace.len());
    for i in 0..n {
        let s = sarathi.token_trace.points()[i];
        let g = gllm.token_trace.points()[i];
        table.row(vec![
            i.to_string(),
            s.prefill.to_string(),
            s.decode.to_string(),
            s.total().to_string(),
            g.prefill.to_string(),
            g.decode.to_string(),
            g.total().to_string(),
        ]);
    }
    table.print();

    let s_cv = sarathi.token_trace.total_tokens_cv();
    let g_cv = gllm.token_trace.total_tokens_cv();
    println!("\nvolatility (coefficient of variation of batched tokens):");
    println!("  Sarathi-Serve: {}", f3(s_cv));
    println!("  gLLM balanced: {}", f3(g_cv));
    println!(
        "  paper expectation: Sarathi substantially more volatile — ratio {}x",
        f3(s_cv / g_cv.max(1e-9))
    );

    let to_tuples = |t: &gllm_metrics::TokenTrace| {
        t.points().iter().map(|p| (p.iteration, p.prefill, p.decode)).collect()
    };
    write_json(
        "fig01_token_fluctuation",
        &Fig1Output {
            sarathi: to_tuples(&sarathi.token_trace),
            gllm: to_tuples(&gllm.token_trace),
            sarathi_cv: s_cv,
            gllm_cv: g_cv,
        },
    );
}
