//! Extension ablation: mixture-of-experts routing variance (§6).
//!
//! The paper's conclusion: "for MoE models, variability in expert
//! activation introduces additional imbalance". This bench injects a
//! deterministic batch-dependent execution-time variance of magnitude `v`
//! into the cost model and measures how much of Token Throttling's benefit
//! survives: token-balanced micro-batches are no longer time-balanced, so
//! bubbles creep back — quantifying the headroom an expert-aware balancer
//! (the paper's future work) could reclaim.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, CostModel, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    imbalance: f64,
    tpot_s: f64,
    e2el_s: f64,
    throughput: f64,
    utilization: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    let trace = Trace::paper_online(Dataset::ShareGpt, 5.0, 31);
    // The utilisation column needs busy intervals; the token trace is
    // unused here.
    let cfg = EngineConfig { record_token_trace: false, ..EngineConfig::default() };

    println!("Extension ablation — MoE expert-routing variance (32B-equivalent, 4xL20)\n");
    let systems = [SystemConfig::gllm(), SystemConfig::vllm()];
    let variances = [0.0, 0.1, 0.25, 0.5];
    let tweaks: Vec<Box<dyn Fn(&mut CostModel) + Sync>> = variances
        .iter()
        .map(|&v| Box::new(move |cost: &mut CostModel| cost.expert_imbalance = v) as Box<_>)
        .collect();
    let cells: Vec<(&SystemConfig, f64)> = systems
        .iter()
        .flat_map(|sys| variances.iter().map(move |&v| (sys, v)))
        .collect();
    let (trace, deployment, cfg_ref) = (&trace, &deployment, &cfg);
    let job_list: Vec<ExperimentJob> = systems
        .iter()
        .flat_map(|sys| {
            tweaks.iter().map(move |tw| ExperimentJob {
                trace,
                system: sys,
                deployment,
                cfg: cfg_ref,
                tweak: Some(&**tw),
            })
        })
        .collect();
    let results = run_experiments(&job_list, jobs());
    let mut rows = Vec::new();
    let mut t = Table::new(&["system", "variance", "TPOT (ms)", "E2EL (s)", "tput", "util"]);
    for ((sys, v), r) in cells.iter().zip(&results) {
        t.row(vec![
            sys.name.clone(),
            format!("{v}"),
            ms(r.report.mean_tpot_s),
            f3(r.report.mean_e2el_s),
            f3(r.report.throughput_tok_s),
            f3(r.mean_utilization),
        ]);
        rows.push(Row {
            system: sys.name.clone(),
            imbalance: *v,
            tpot_s: r.report.mean_tpot_s,
            e2el_s: r.report.mean_e2el_s,
            throughput: r.report.throughput_tok_s,
            utilization: r.mean_utilization,
        });
    }
    t.print();
    println!("\nexpected: both systems degrade with variance, but gLLM retains its");
    println!("lead — token balancing still removes the *systematic* imbalance, only");
    println!("the stochastic expert component remains (the paper's future work).");
    write_json("abl_moe_imbalance", &rows);
}
