//! Figure 15: ablation of gLLM's design choices — gLLM vs w/o WT, w/o UT,
//! w/ CK (Sarathi policy on the gLLM runtime) and vLLM, on TTFT, TPOT,
//! E2EL and throughput.
//!
//! Paper expectations: removing WT trades slightly better TTFT (−10 %) for
//! much worse TPOT (+44 %) and E2EL (+20 %); removing UT is worse still
//! (TTFT +22 %, TPOT +91 %, E2EL +38 %); and even w/ CK beats vLLM
//! (+10 % throughput, −8 % E2EL) because the asynchronous runtime removes
//! the coupled input-preparation overhead.
//!
//! Two panels are reported because the two throttles bind in different
//! regimes: WT (pending-prefill balancing) dominates on the bursty
//! short-prompt ShareGPT workload, while UT (KV-pressure throttling)
//! dominates on Azure, whose long prompts actually fill the cache.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    panel: String,
    system: String,
    ttft_s: f64,
    tpot_s: f64,
    e2el_s: f64,
    throughput: f64,
    preemptions: u64,
}

fn run_panel(
    panel: &str,
    dataset: Dataset,
    rate: f64,
    deployment: &Deployment,
    jobs: usize,
    rows: &mut Vec<AblationRow>,
) {
    let trace = Trace::paper_online(dataset, rate, 1005);
    // This figure only reads the aggregate report and preemption counts —
    // leave the per-iteration observers off.
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    println!("\nFigure 15 panel: {panel}\n");
    let mut t = Table::new(&[
        "system", "TTFT (ms)", "TPOT (ms)", "E2EL (s)", "tput (tok/s)", "preempt",
    ]);
    let systems = SystemConfig::paper_ablation();
    let job_list: Vec<ExperimentJob> = systems
        .iter()
        .map(|s| ExperimentJob { trace: &trace, system: s, deployment, cfg: &cfg, tweak: None })
        .collect();
    let mut panel_rows = Vec::new();
    for (sys, r) in systems.iter().zip(run_experiments(&job_list, jobs)) {
        t.row(vec![
            sys.name.clone(),
            ms(r.report.mean_ttft_s),
            ms(r.report.mean_tpot_s),
            f3(r.report.mean_e2el_s),
            f3(r.report.throughput_tok_s),
            r.preemptions.to_string(),
        ]);
        panel_rows.push(AblationRow {
            panel: panel.into(),
            system: sys.name.clone(),
            ttft_s: r.report.mean_ttft_s,
            tpot_s: r.report.mean_tpot_s,
            e2el_s: r.report.mean_e2el_s,
            throughput: r.report.throughput_tok_s,
            preemptions: r.preemptions,
        });
    }
    t.print();

    let get = |name: &str| panel_rows.iter().find(|r| r.system == name).expect("row exists");
    let gllm = get("gLLM");
    println!("\nrelative to gLLM:");
    for name in ["gLLM w/o WT", "gLLM w/o UT"] {
        let r = get(name);
        println!(
            "  {name}: TTFT {}x, TPOT {}x, E2EL {}x",
            f3(r.ttft_s / gllm.ttft_s),
            f3(r.tpot_s / gllm.tpot_s),
            f3(r.e2el_s / gllm.e2el_s)
        );
    }
    let ck = get("gLLM w/ CK");
    let vllm = get("vLLM");
    println!(
        "  gLLM w/ CK vs vLLM: throughput {}x, E2EL {}x (paper: +10% tput, -8% E2EL)",
        f3(ck.throughput / vllm.throughput),
        f3(ck.e2el_s / vllm.e2el_s)
    );
    rows.append(&mut panel_rows);
}

fn main() {
    let jobs = jobs();
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    let mut rows = Vec::new();
    // WT-dominated regime: bursty short prompts, decode-heavy steady state.
    run_panel(
        "32B / 4xL20 / sharegpt @ 6 req/s",
        Dataset::ShareGpt,
        6.0,
        &deployment,
        jobs,
        &mut rows,
    );
    // UT-dominated regime: long Azure prompts keep the KV cache near
    // capacity.
    run_panel("32B / 4xL20 / azure @ 3 req/s", Dataset::Azure, 3.0, &deployment, jobs, &mut rows);
    write_json("fig15_ablation", &rows);
}
