//! Table 1: lines of code and output quality across frameworks.
//!
//! The paper compares gLLM (3 874 LoC) against SGLang (65 097) and vLLM
//! (226 874), and shows near-identical MMLU-Pro scores (68.86 / 68.85 /
//! 69.17 on Qwen2.5-32B-Instruct) — i.e. the scheduler does not change
//! model quality. Offline, MMLU-Pro and real checkpoints are unavailable,
//! so the quality half is substituted by the strongest version of the same
//! claim: a synthetic multiple-choice probe set answered by the *real* CPU
//! transformer, where every serving configuration (single-process
//! reference, gLLM Token Throttling runtime, Sarathi-scheduled runtime,
//! 1-stage and multi-stage pipelines) must produce **bit-identical**
//! greedy answers. The LoC half counts this repository's crates.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gllm_bench::output::Table;
use gllm_bench::write_json;
use gllm_core::sarathi::SarathiServe;
use gllm_core::throttle::TokenThrottle;
use gllm_model::ModelConfig;
use gllm_runtime::{GenRequest, RuntimeConfig, Server};
use gllm_transformer::sampler::SamplingParams;
use gllm_transformer::CausalLM;
use serde::Serialize;

#[derive(Serialize)]
struct Tab1Output {
    loc_per_crate: Vec<(String, usize)>,
    total_loc: usize,
    probes: usize,
    agreement_gllm_runtime: f64,
    agreement_sarathi_runtime: f64,
    agreement_pipelined: f64,
}

/// Count non-empty lines of `.rs` files under `dir`, recursively.
fn count_loc(dir: &Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += count_loc(&path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = fs::read_to_string(&path) {
                    total += text.lines().filter(|l| !l.trim().is_empty()).count();
                }
            }
        }
    }
    total
}

/// Deterministic synthetic probe prompts (the "questions").
fn probe_prompts(n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| {
            let len = 6 + (i * 7) % 18;
            (0..len).map(|j| ((i * 131 + j * 29 + 3) % 256) as u32).collect()
        })
        .collect()
}

/// "Grade" a system: fraction of probes whose full greedy generation
/// matches the reference exactly.
fn agreement(answers: &BTreeMap<u64, Vec<u32>>, reference: &[Vec<u32>]) -> f64 {
    let hits = reference
        .iter()
        .enumerate()
        .filter(|(i, r)| answers.get(&(*i as u64)).is_some_and(|a| a == *r))
        .count();
    hits as f64 / reference.len() as f64
}

fn run_server(
    stages: usize,
    sarathi: bool,
    prompts: &[Vec<u32>],
    answer_len: usize,
) -> BTreeMap<u64, Vec<u32>> {
    let policy: Arc<dyn gllm_core::SchedulePolicy> = if sarathi {
        Arc::new(SarathiServe::default())
    } else {
        Arc::new(TokenThrottle::default())
    };
    let server = Server::start(RuntimeConfig::tiny(stages), policy).expect("valid config");
    let reqs = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| GenRequest {
            id: i as u64,
            prompt: p.clone(),
            max_new: answer_len,
            params: SamplingParams::greedy(),
        })
        .collect();
    let out = server.generate_all(reqs).expect("runtime stalled");
    server.shutdown();
    out
}

fn main() {
    // --- LoC half -------------------------------------------------------
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    let mut loc_rows = Vec::new();
    let mut total = 0;
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut names: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        names.sort();
        for path in names {
            if path.is_dir() {
                let loc = count_loc(&path.join("src"));
                total += loc;
                loc_rows.push((
                    path.file_name().expect("crate dir").to_string_lossy().into_owned(),
                    loc,
                ));
            }
        }
    }
    println!("Table 1 (left) — lines of code\n");
    let mut t = Table::new(&["crate", "LoC"]);
    for (name, loc) in &loc_rows {
        t.row(vec![name.clone(), loc.to_string()]);
    }
    t.row(vec!["TOTAL (this repo)".into(), total.to_string()]);
    t.print();
    println!("\npaper reference: gLLM 3874, SGLang 65097, vLLM 226874 (Python)");

    // --- Quality half ----------------------------------------------------
    const PROBES: usize = 24;
    const ANSWER_LEN: usize = 6;
    let prompts = probe_prompts(PROBES);
    // Reference: single-process model, whole-prompt prefill.
    let mut reference = Vec::with_capacity(PROBES);
    let mut lm = CausalLM::new(ModelConfig::tiny(), 1, 256, 4, 2024);
    for (i, p) in prompts.iter().enumerate() {
        let ans = lm
            .generate(i as u64, p, ANSWER_LEN, 1024, &SamplingParams::greedy())
            .expect("reference generation");
        lm.release(i as u64).expect("release");
        reference.push(ans);
    }

    let gllm_answers = run_server(2, false, &prompts, ANSWER_LEN);
    let sarathi_answers = run_server(2, true, &prompts, ANSWER_LEN);
    let pipelined_answers = run_server(4, false, &prompts, ANSWER_LEN);

    let a_gllm = agreement(&gllm_answers, &reference);
    let a_sarathi = agreement(&sarathi_answers, &reference);
    let a_pipe = agreement(&pipelined_answers, &reference);

    println!("\nTable 1 (right) — output-quality equivalence ({PROBES} probes, greedy)\n");
    let mut q = Table::new(&["serving configuration", "agreement with reference"]);
    q.row(vec!["gLLM runtime (Token Throttling, 2 stages)".into(), format!("{:.2}%", a_gllm * 100.0)]);
    q.row(vec!["gLLM runtime (Sarathi policy, 2 stages)".into(), format!("{:.2}%", a_sarathi * 100.0)]);
    q.row(vec!["gLLM runtime (Token Throttling, 4 stages)".into(), format!("{:.2}%", a_pipe * 100.0)]);
    q.print();
    println!("\npaper analogue: MMLU-Pro 68.86 (gLLM) vs 68.85 (SGLang) vs 69.17 (vLLM)");
    println!("reproduction claim: scheduling must not change outputs — expect 100% everywhere");
    assert_eq!(a_gllm, 1.0, "Token Throttling changed model outputs!");
    assert_eq!(a_sarathi, 1.0, "Sarathi scheduling changed model outputs!");
    assert_eq!(a_pipe, 1.0, "pipelining changed model outputs!");

    write_json(
        "tab01_functionality",
        &Tab1Output {
            loc_per_crate: loc_rows,
            total_loc: total,
            probes: PROBES,
            agreement_gllm_runtime: a_gllm,
            agreement_sarathi_runtime: a_sarathi,
            agreement_pipelined: a_pipe,
        },
    );
}
