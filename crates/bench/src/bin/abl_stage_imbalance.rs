//! Probe: inter-stage imbalance (straggler GPU), the bubble class the
//! paper explicitly leaves to future work (§2.4: "we focus on solving
//! inter-batch pipeline bubbles, while the inter-stage bubbles are left
//! for future works").
//!
//! Fault injection slows one pipeline stage by a factor; every other stage
//! then idles for the difference on every micro-batch, and no amount of
//! token balancing can recover it. The probe quantifies the damage so the
//! limitation is measurable, not just stated.

use gllm_bench::output::{f3, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    slowdown: f64,
    e2el_s: f64,
    throughput: f64,
    utilization: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    let trace = Trace::paper_online(Dataset::ShareGpt, 4.0, 13);

    println!("Probe — straggler stage (stage 2 slowed by the given factor)\n");
    let systems = [SystemConfig::gllm(), SystemConfig::vllm()];
    let slowdowns = [1.0, 1.25, 1.5, 2.0];
    // One engine config per slowdown level; the utilisation column needs
    // busy intervals, the token trace is unused.
    let configs: Vec<EngineConfig> = slowdowns
        .iter()
        .map(|&s| EngineConfig {
            stage_slowdown: vec![1.0, 1.0, s, 1.0],
            record_token_trace: false,
            ..EngineConfig::default()
        })
        .collect();
    let cells: Vec<(&SystemConfig, f64)> = systems
        .iter()
        .flat_map(|sys| slowdowns.iter().map(move |&s| (sys, s)))
        .collect();
    let (trace, deployment) = (&trace, &deployment);
    let job_list: Vec<ExperimentJob> = systems
        .iter()
        .flat_map(|sys| {
            configs.iter().map(move |cfg| ExperimentJob {
                trace,
                system: sys,
                deployment,
                cfg,
                tweak: None,
            })
        })
        .collect();
    let results = run_experiments(&job_list, jobs());
    let mut rows = Vec::new();
    let mut t = Table::new(&["system", "slowdown", "E2EL (s)", "tput (tok/s)", "mean util"]);
    for ((sys, slowdown), r) in cells.iter().zip(&results) {
        t.row(vec![
            sys.name.clone(),
            format!("{slowdown}x"),
            f3(r.report.mean_e2el_s),
            f3(r.report.throughput_tok_s),
            f3(r.mean_utilization),
        ]);
        rows.push(Row {
            system: sys.name.clone(),
            slowdown: *slowdown,
            e2el_s: r.report.mean_e2el_s,
            throughput: r.report.throughput_tok_s,
            utilization: r.mean_utilization,
        });
    }
    t.print();
    println!("\nexpected: utilisation of the healthy stages falls roughly as");
    println!("1/slowdown for both systems — inter-batch balancing (gLLM's");
    println!("contribution) cannot fix inter-stage imbalance, as §2.4 states.");
    write_json("abl_stage_imbalance", &rows);
}
