//! Extension study: TD-Pipe (temporal disaggregation) vs gLLM.
//!
//! TD-Pipe (§2.4) targets the prefill/decode *compute-time* imbalance with
//! dedicated prefill and decode phases — optimised for the offline,
//! high-throughput scenario, while "gLLM focuses on online serving
//! scenarios". This bench runs both regimes:
//!
//! * **offline**: one burst of requests, throughput is everything —
//!   TD-Pipe's homogeneous phases shine;
//! * **online**: Poisson arrivals — TD-Pipe's prefill phases stall ongoing
//!   decodes, inflating TPOT, which is the gap gLLM exists to close.

use gllm_bench::output::{f3, ms, Table};
use gllm_bench::{jobs, write_json};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{ArrivalProcess, Dataset, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    regime: String,
    system: String,
    ttft_s: f64,
    tpot_s: f64,
    p99_tpot_s: f64,
    e2el_s: f64,
    throughput: f64,
}

fn main() {
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    // Report-only bench: skip the per-iteration observers.
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    let offline = Trace::synthesize(Dataset::ShareGpt, ArrivalProcess::Burst, 1.0, 384, 29);
    let online = Trace::paper_online(Dataset::ShareGpt, 5.0, 29);
    let systems = [SystemConfig::td_pipe(), SystemConfig::gllm(), SystemConfig::vllm()];

    println!("Extension study — temporal disaggregation (TD-Pipe) vs gLLM\n");
    let mut rows = Vec::new();
    let mut t = Table::new(&[
        "regime", "system", "TTFT (ms)", "TPOT (ms)", "p99 TPOT (ms)", "E2EL (s)", "tput",
    ]);
    let regimes = [("offline burst", &offline), ("online @5 req/s", &online)];
    let cells: Vec<(&str, &SystemConfig)> = regimes
        .iter()
        .flat_map(|&(regime, _)| systems.iter().map(move |sys| (regime, sys)))
        .collect();
    let (deployment, cfg_ref) = (&deployment, &cfg);
    let job_list: Vec<ExperimentJob> = regimes
        .iter()
        .flat_map(|&(_, trace)| {
            systems.iter().map(move |sys| ExperimentJob {
                trace,
                system: sys,
                deployment,
                cfg: cfg_ref,
                tweak: None,
            })
        })
        .collect();
    let results = run_experiments(&job_list, jobs());
    for ((regime, sys), r) in cells.iter().zip(&results) {
        t.row(vec![
            (*regime).into(),
            sys.name.clone(),
            ms(r.report.mean_ttft_s),
            ms(r.report.mean_tpot_s),
            ms(r.report.p99_tpot_s),
            f3(r.report.mean_e2el_s),
            f3(r.report.throughput_tok_s),
        ]);
        rows.push(Row {
            regime: (*regime).into(),
            system: sys.name.clone(),
            ttft_s: r.report.mean_ttft_s,
            tpot_s: r.report.mean_tpot_s,
            p99_tpot_s: r.report.p99_tpot_s,
            e2el_s: r.report.mean_e2el_s,
            throughput: r.report.throughput_tok_s,
        });
    }
    t.print();
    println!("\nexpected: TD-Pipe's throughput is competitive offline (homogeneous");
    println!("phases), but online its prefill phases stall running decodes — mean");
    println!("and p99 TPOT blow up versus gLLM, which is the paper's positioning.");
    write_json("abl_tdpipe", &rows);
}
