//! Tiny flag parser shared by the bench binaries.
//!
//! Every figure binary accepts `--jobs N` to control how many worker
//! threads the sweep harness fans simulations across; the default is one
//! per available core. Zero external dependencies, same as everything else
//! in the harness.

/// Worker-thread count from `--jobs N` on the command line, defaulting to
/// [`gllm_sim::sweep::default_jobs`] (one per available core).
pub fn jobs() -> usize {
    jobs_from(std::env::args().collect::<Vec<_>>().as_slice())
}

/// [`jobs`] over an explicit argument list (testable).
pub fn jobs_from(args: &[String]) -> usize {
    flag_value(args, "--jobs")
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(gllm_sim::sweep::default_jobs)
}

/// Whether `flag` appears anywhere on the command line.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The value following `flag`, if both are present.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn jobs_parses_and_clamps() {
        assert_eq!(jobs_from(&argv(&["bin", "--jobs", "4"])), 4);
        assert_eq!(jobs_from(&argv(&["bin", "--jobs", "0"])), 1);
        assert_eq!(jobs_from(&argv(&["bin"])), gllm_sim::sweep::default_jobs());
        // Malformed value falls back to the default.
        assert_eq!(jobs_from(&argv(&["bin", "--jobs", "lots"])), gllm_sim::sweep::default_jobs());
    }

    #[test]
    fn flag_helpers() {
        let a = argv(&["bin", "--quick", "--jobs", "2"]);
        assert!(has_flag(&a, "--quick"));
        assert!(!has_flag(&a, "--slow"));
        assert_eq!(flag_value(&a, "--jobs"), Some("2"));
        assert_eq!(flag_value(&a, "--quick"), Some("--jobs"));
        assert_eq!(flag_value(&a, "--missing"), None);
    }
}
