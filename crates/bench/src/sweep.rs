//! Request-rate sweeps: the x-axis of the paper's Figures 10, 12 and 14.

use gllm_metrics::SloSpec;
use gllm_sim::engine::EngineConfig;
use gllm_sim::{run_experiment, Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

/// One `(system, rate)` measurement.
#[derive(Debug, Clone, Serialize)]
pub struct RatePoint {
    /// System under test.
    pub system: String,
    /// Offered request rate (req/s).
    pub rate: f64,
    /// Mean time to first token (s).
    pub ttft_s: f64,
    /// Mean time per output token (s).
    pub tpot_s: f64,
    /// Mean end-to-end latency (s).
    pub e2el_s: f64,
    /// Input+output token throughput (tok/s).
    pub throughput: f64,
    /// SLO attainment if an SLO was supplied.
    pub slo_attainment: Option<f64>,
    /// Requests finished / submitted.
    pub finished: usize,
    /// Requests submitted.
    pub total: usize,
    /// Preemption events.
    pub preemptions: u64,
}

/// Run `systems × rates` on paired workloads (same seed per rate) and
/// collect the paper's metric set per point.
pub fn sweep_rates(
    systems: &[SystemConfig],
    deployment: &Deployment,
    dataset: Dataset,
    rates: &[f64],
    seed: u64,
    slo: Option<SloSpec>,
) -> Vec<RatePoint> {
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    let mut out = Vec::with_capacity(systems.len() * rates.len());
    for &rate in rates {
        let trace = Trace::paper_online(dataset, rate, seed);
        for sys in systems {
            let r = run_experiment(&trace, sys, deployment, &cfg);
            out.push(RatePoint {
                system: sys.name.clone(),
                rate,
                ttft_s: r.report.mean_ttft_s,
                tpot_s: r.report.mean_tpot_s,
                e2el_s: r.report.mean_e2el_s,
                throughput: r.report.throughput_tok_s,
                slo_attainment: slo.map(|s| r.slo_attainment(s)),
                finished: r.report.finished_requests,
                total: r.report.total_requests,
                preemptions: r.preemptions,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_model::{ClusterSpec, ModelConfig};

    #[test]
    fn sweep_produces_a_point_per_system_rate_pair() {
        let d = Deployment::new(ModelConfig::qwen2_5_14b(), ClusterSpec::intra_node_l20(2));
        let systems = [SystemConfig::gllm(), SystemConfig::vllm()];
        let pts = sweep_rates(&systems, &d, Dataset::ShareGpt, &[0.5, 1.0], 5, None);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.finished == p.total));
        assert!(pts.iter().all(|p| p.throughput > 0.0));
    }
}
