//! Request-rate sweeps: the x-axis of the paper's Figures 10, 12 and 14.

use gllm_metrics::SloSpec;
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::parallel_map;
use gllm_sim::{run_experiment, Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};
use serde::Serialize;

/// One `(system, rate)` measurement.
#[derive(Debug, Clone, Serialize)]
pub struct RatePoint {
    /// System under test.
    pub system: String,
    /// Offered request rate (req/s).
    pub rate: f64,
    /// Mean time to first token (s).
    pub ttft_s: f64,
    /// Mean time per output token (s).
    pub tpot_s: f64,
    /// Mean end-to-end latency (s).
    pub e2el_s: f64,
    /// Input+output token throughput (tok/s).
    pub throughput: f64,
    /// SLO attainment if an SLO was supplied.
    pub slo_attainment: Option<f64>,
    /// Requests finished / submitted.
    pub finished: usize,
    /// Requests submitted.
    pub total: usize,
    /// Preemption events.
    pub preemptions: u64,
}

/// Run `systems × rates` on paired workloads (same seed per rate) and
/// collect the paper's metric set per point, fanning the independent
/// simulations across `jobs` worker threads. Points come back rate-major
/// (every system at rate 0, then rate 1, ...) — the same order the old
/// serial loop produced, byte-identical regardless of `jobs`.
pub fn sweep_rates(
    systems: &[SystemConfig],
    deployment: &Deployment,
    dataset: Dataset,
    rates: &[f64],
    seed: u64,
    slo: Option<SloSpec>,
    jobs: usize,
) -> Vec<RatePoint> {
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    sweep_rates_with_cfg(systems, deployment, dataset, rates, seed, slo, &cfg, jobs)
}

/// [`sweep_rates`] under an explicit engine config. The perf harness uses
/// this to time the same sweep with the hot-path optimizations switched
/// off; figure binaries should call [`sweep_rates`].
#[allow(clippy::too_many_arguments)]
pub fn sweep_rates_with_cfg(
    systems: &[SystemConfig],
    deployment: &Deployment,
    dataset: Dataset,
    rates: &[f64],
    seed: u64,
    slo: Option<SloSpec>,
    cfg: &EngineConfig,
    jobs: usize,
) -> Vec<RatePoint> {
    // Traces are shared across the systems at each rate, so build them once
    // up front instead of once per (system, rate) simulation.
    let traces: Vec<Trace> =
        rates.iter().map(|&rate| Trace::paper_online(dataset, rate, seed)).collect();
    let pairs: Vec<(usize, usize)> = (0..rates.len())
        .flat_map(|ri| (0..systems.len()).map(move |si| (ri, si)))
        .collect();
    parallel_map(&pairs, jobs, |_, &(ri, si)| {
        let sys = &systems[si];
        let rate = rates[ri];
        let r = run_experiment(&traces[ri], sys, deployment, cfg);
        RatePoint {
            system: sys.name.clone(),
            rate,
            ttft_s: r.report.mean_ttft_s,
            tpot_s: r.report.mean_tpot_s,
            e2el_s: r.report.mean_e2el_s,
            throughput: r.report.throughput_tok_s,
            slo_attainment: slo.map(|s| r.slo_attainment(s)),
            finished: r.report.finished_requests,
            total: r.report.total_requests,
            preemptions: r.preemptions,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_model::{ClusterSpec, ModelConfig};

    #[test]
    fn sweep_produces_a_point_per_system_rate_pair() {
        let d = Deployment::new(ModelConfig::qwen2_5_14b(), ClusterSpec::intra_node_l20(2));
        let systems = [SystemConfig::gllm(), SystemConfig::vllm()];
        let pts = sweep_rates(&systems, &d, Dataset::ShareGpt, &[0.5, 1.0], 5, None, 1);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.finished == p.total));
        assert!(pts.iter().all(|p| p.throughput > 0.0));
        // Rate-major order: both systems at 0.5 before either at 1.0.
        assert_eq!(pts[0].rate, 0.5);
        assert_eq!(pts[1].rate, 0.5);
        assert_eq!(pts[2].rate, 1.0);
        assert_eq!(pts[0].system, "gLLM");
        assert_eq!(pts[1].system, "vLLM");
    }
}
