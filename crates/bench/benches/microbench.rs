//! Criterion micro-benchmarks.
//!
//! `scheduler_overhead` verifies the paper's §3.4 claim that Token
//! Throttling costs ≈0.045 ms per iteration of "lightweight system state
//! collection and few mathematical computations" — here the full
//! view-build + plan step must land well under a model forward pass
//! (20–800 ms). The remaining groups size the substrates: KV cache
//! operations, the CPU transformer's decode step, and a complete
//! discrete-event serving experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gllm_core::sarathi::SarathiServe;
use gllm_core::throttle::TokenThrottle;
use gllm_core::{BatchPlan, PrefillChunk, RequestPool, SchedulePolicy};
use gllm_kvcache::{Blocks, KvCacheManager, Tokens};
use gllm_model::{ClusterSpec, ModelConfig};
use gllm_sim::engine::EngineConfig;
use gllm_sim::{run_experiment, Deployment, SystemConfig};
use gllm_transformer::sampler::SamplingParams;
use gllm_transformer::CausalLM;
use gllm_workload::{Dataset, Trace};
use std::hint::black_box;

/// A pool + cache mid-flight: 64 decoding sequences, 8 waiting prompts.
fn loaded_state() -> (RequestPool, KvCacheManager) {
    let mut pool = RequestPool::new(1024);
    let mut kv = KvCacheManager::new(Blocks(16_384), Tokens(16));
    for id in 0..64u64 {
        pool.add(id, 256, 128);
        let plan = BatchPlan {
            prefill: vec![PrefillChunk {
                seq: id,
                tokens: Tokens(256),
                context_before: Tokens(0),
                completes_prompt: true,
            }],
            decode: vec![],
        };
        kv.append(id, Tokens(256)).expect("fits");
        pool.commit(&plan);
        pool.complete(&plan);
    }
    for id in 64..72u64 {
        pool.add(id, 1024, 128);
    }
    (pool, kv)
}

fn bench_scheduler(c: &mut Criterion) {
    let (pool, kv) = loaded_state();
    let throttle = TokenThrottle::default();
    let sarathi = SarathiServe::default();
    let mut g = c.benchmark_group("scheduler_overhead");
    g.bench_function("token_throttle_view_plus_plan", |b| {
        b.iter(|| {
            let view = pool.view(kv.free_rate(), kv.free_blocks().to_tokens(kv.block_size()), kv.block_size(), 4);
            black_box(throttle.plan(&view))
        })
    });
    g.bench_function("sarathi_view_plus_plan", |b| {
        b.iter(|| {
            let view = pool.view(kv.free_rate(), kv.free_blocks().to_tokens(kv.block_size()), kv.block_size(), 4);
            black_box(sarathi.plan(&view))
        })
    });
    g.finish();
}

fn bench_kvcache(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvcache");
    g.bench_function("append_extend_free_cycle", |b| {
        b.iter_batched(
            || KvCacheManager::new(Blocks(4096), Tokens(16)),
            |mut kv| {
                for id in 0..32u64 {
                    kv.append(id, Tokens(200)).expect("fits");
                }
                for id in 0..32u64 {
                    for _ in 0..16 {
                        kv.append(id, Tokens(1)).expect("fits");
                    }
                }
                for id in 0..32u64 {
                    kv.free(id).expect("live");
                }
                black_box(kv.free_rate())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_transformer(c: &mut Criterion) {
    let mut g = c.benchmark_group("transformer");
    g.bench_function("tiny_decode_step", |b| {
        let mut lm = CausalLM::new(ModelConfig::tiny(), 1, 256, 16, 7);
        lm.prefill(1, &[1, 2, 3, 4, 5, 6, 7, 8], 1024).expect("prefill");
        let mut tok = 9u32;
        b.iter(|| {
            // Criterion runs thousands of iterations; recycle the sequence
            // before the KV cache fills so the step cost stays stationary.
            if lm.kv().free_rate() < 0.1 {
                lm.release(1).expect("live");
                lm.prefill(1, &[1, 2, 3, 4, 5, 6, 7, 8], 1024).expect("prefill");
                tok = 9;
            }
            let logits = lm.decode_step(1, tok).expect("capacity");
            tok = gllm_transformer::sampler::argmax(&logits);
            black_box(tok)
        })
    });
    g.bench_function("tiny_prefill_64_tokens", |b| {
        let prompt: Vec<u32> = (0..64).map(|i| (i % 256) as u32).collect();
        let mut id = 0u64;
        let mut lm = CausalLM::new(ModelConfig::tiny(), 1, 8192, 16, 7);
        b.iter(|| {
            id += 1;
            let l = lm.prefill(id, &prompt, 1024).expect("capacity");
            lm.release(id).expect("live");
            black_box(l[0])
        })
    });
    let _ = SamplingParams::greedy();
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let deployment = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
    let trace = Trace::paper_online(Dataset::ShareGpt, 2.0, 3);
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    g.bench_function("serving_experiment_2rps_128s", |b| {
        b.iter(|| black_box(run_experiment(&trace, &SystemConfig::gllm(), &deployment, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_kvcache, bench_transformer, bench_simulator);
criterion_main!(benches);
