//! The sweep harness's core guarantee, asserted end-to-end: fanning a
//! figure's simulations across worker threads produces **byte-identical**
//! serialized results to running them serially. One representative sweep
//! per figure family — rate sweeps (Figs. 10/12/14), experiment grids
//! (Figs. 15/16 and the ablations, including cost-model tweaks), and the
//! capacity grid (Fig. 13).

use gllm_bench::sweep_rates;
use gllm_metrics::ServingReport;
use gllm_model::{ClusterSpec, CostModel, ModelConfig};
use gllm_sim::capacity::max_throughput;
use gllm_sim::engine::EngineConfig;
use gllm_sim::sweep::{parallel_map, run_experiments, ExperimentJob};
use gllm_sim::{Deployment, SystemConfig};
use gllm_workload::{Dataset, Trace};

#[test]
fn parallel_sweep_matches_serial_bitwise() {
    // Family 1: rate sweep (the Fig. 10/12/14 shape).
    let d = Deployment::new(ModelConfig::qwen2_5_14b(), ClusterSpec::intra_node_l20(4));
    let systems = SystemConfig::paper_main();
    let serial = sweep_rates(&systems, &d, Dataset::ShareGpt, &[1.0, 4.0], 1001, None, 1);
    let fanned = sweep_rates(&systems, &d, Dataset::ShareGpt, &[1.0, 4.0], 1001, None, 8);
    assert_eq!(
        serde_json::to_vec(&serial).expect("serialise"),
        serde_json::to_vec(&fanned).expect("serialise"),
        "rate sweep diverged between 1 and 8 jobs"
    );

    // Family 2: experiment grid with a cost-model tweak (the ablation
    // shape). Reports must serialize identically.
    let trace = Trace::paper_online(Dataset::ShareGpt, 3.0, 31);
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    let tweak = |cost: &mut CostModel| cost.expert_imbalance = 0.25;
    let grid_systems = [SystemConfig::gllm(), SystemConfig::vllm()];
    let job_list: Vec<ExperimentJob> = grid_systems
        .iter()
        .map(|s| ExperimentJob {
            trace: &trace,
            system: s,
            deployment: &d,
            cfg: &cfg,
            tweak: Some(&tweak),
        })
        .collect();
    let reports = |jobs: usize| -> Vec<u8> {
        let rs: Vec<(String, ServingReport, u64)> = run_experiments(&job_list, jobs)
            .into_iter()
            .map(|r| (r.system.clone(), r.report, r.preemptions))
            .collect();
        serde_json::to_vec(&rs).expect("serialise")
    };
    assert_eq!(reports(1), reports(8), "ablation grid diverged between 1 and 8 jobs");

    // Family 3: capacity grid (the Fig. 13 shape).
    let cells = [1usize, 2, 4];
    let caps = |jobs: usize| -> Vec<u8> {
        let grid: Vec<(usize, f64)> = parallel_map(&cells, jobs, |_, &g| {
            let dep = Deployment::new(ModelConfig::qwen2_5_14b(), ClusterSpec::intra_node_l20(g));
            let cap = max_throughput(&SystemConfig::gllm(), &dep, Dataset::ShareGpt, 2.0, 77);
            (g, cap.max_throughput_tok_s)
        });
        serde_json::to_vec(&grid).expect("serialise")
    };
    assert_eq!(caps(1), caps(8), "capacity grid diverged between 1 and 8 jobs");
}
