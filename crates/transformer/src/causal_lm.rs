//! Single-process causal language model: pipeline stages + KV manager in
//! one object.
//!
//! [`CausalLM`] is the convenience wrapper used by tests, examples and the
//! functionality study: it owns every [`StageModel`] of a (possibly
//! 1-stage) pipeline plus the `gllm-kvcache` manager, and exposes
//! prefill/decode/generate. The threaded runtime (`gllm-runtime`) instead
//! distributes the same stages across worker threads — both paths execute
//! identical arithmetic, which is what the cross-plane equivalence tests
//! assert.

use gllm_kvcache::{Blocks, KvCacheManager, KvError, Tokens};
use gllm_model::ModelConfig;

use crate::model::{BatchChunk, StageModel};
use crate::sampler::{sample, SamplingParams};

/// A complete causal LM over `stages` pipeline stages.
pub struct CausalLM {
    cfg: ModelConfig,
    stages: Vec<StageModel>,
    kvm: KvCacheManager,
}

impl CausalLM {
    /// Build a model partitioned into `num_stages` stages with KV capacity
    /// `kv_blocks × block_size` tokens. Weights derive from `seed`
    /// (partition-independent).
    pub fn new(
        cfg: ModelConfig,
        num_stages: usize,
        kv_blocks: usize,
        block_size: usize,
        seed: u64,
    ) -> Self {
        assert!(num_stages >= 1 && num_stages <= cfg.num_layers);
        let kv_slots = kv_blocks * block_size;
        let per = cfg.num_layers / num_stages;
        let extra = cfg.num_layers % num_stages;
        let mut stages = Vec::with_capacity(num_stages);
        let mut start = 0;
        for s in 0..num_stages {
            let len = per + usize::from(s < extra);
            stages.push(StageModel::new(
                cfg.clone(),
                start..start + len,
                kv_slots,
                seed,
                s == 0,
                s + 1 == num_stages,
            ));
            start += len;
        }
        Self {
            cfg: cfg.clone(),
            stages,
            kvm: KvCacheManager::new(Blocks(kv_blocks), Tokens(block_size)),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The KV manager (inspect utilisation, page tables).
    pub fn kv(&self) -> &KvCacheManager {
        &self.kvm
    }

    /// Run one micro-batch of chunks through every stage. KV slots for the
    /// new tokens are allocated here; returns `(seq, logits)` for each
    /// chunk with `sample == true`.
    pub fn forward_batch(&mut self, chunks: &[BatchChunk]) -> Result<Vec<(u64, Vec<f32>)>, KvError> {
        for c in chunks {
            debug_assert_eq!(
                self.kvm.context_len(c.seq).get(),
                c.start_pos,
                "gap in KV for {}",
                c.seq
            );
            self.kvm.append(c.seq, Tokens(c.tokens.len()))?;
        }
        let tables: Vec<_> = chunks
            .iter()
            .map(|c| self.kvm.table(c.seq).expect("just appended").clone())
            .collect();
        let table_refs: Vec<&_> = tables.iter().collect();
        let mut hidden = self.stages[0].embed(chunks);
        for stage in self.stages.iter_mut() {
            stage.forward(chunks, &table_refs, &mut hidden);
        }
        Ok(self.stages.last().expect("nonempty").project(chunks, &hidden))
    }

    /// Prefill `prompt` for `seq` in chunks of `chunk_size`, returning the
    /// logits after the final token.
    pub fn prefill(
        &mut self,
        seq: u64,
        prompt: &[u32],
        chunk_size: usize,
    ) -> Result<Vec<f32>, KvError> {
        assert!(!prompt.is_empty() && chunk_size >= 1);
        let mut logits = None;
        let mut pos = 0;
        for chunk in prompt.chunks(chunk_size) {
            let last = pos + chunk.len() == prompt.len();
            let c = BatchChunk { seq, start_pos: pos, tokens: chunk.to_vec(), sample: last };
            let mut out = self.forward_batch(std::slice::from_ref(&c))?;
            if last {
                logits = Some(out.remove(0).1);
            }
            pos += chunk.len();
        }
        Ok(logits.expect("final chunk sampled"))
    }

    /// One decode step: feed `token` at the sequence's current position.
    pub fn decode_step(&mut self, seq: u64, token: u32) -> Result<Vec<f32>, KvError> {
        let pos = self.kvm.context_len(seq).get();
        let c = BatchChunk { seq, start_pos: pos, tokens: vec![token], sample: true };
        let mut out = self.forward_batch(std::slice::from_ref(&c))?;
        Ok(out.remove(0).1)
    }

    /// Generate `max_new` tokens after `prompt` (chunked prefill of
    /// `chunk_size`), sampling with `params`. Returns the generated ids.
    pub fn generate(
        &mut self,
        seq: u64,
        prompt: &[u32],
        max_new: usize,
        chunk_size: usize,
        params: &SamplingParams,
    ) -> Result<Vec<u32>, KvError> {
        let mut logits = self.prefill(seq, prompt, chunk_size)?;
        let mut out = Vec::with_capacity(max_new);
        for step in 0..max_new {
            let tok = sample(&logits, params, seq, step);
            out.push(tok);
            if step + 1 == max_new {
                break;
            }
            logits = self.decode_step(seq, tok)?;
        }
        Ok(out)
    }

    /// Release a finished sequence's KV.
    pub fn release(&mut self, seq: u64) -> Result<(), KvError> {
        self.kvm.free(seq)
    }

    /// Prefill `child` whose prompt shares a prefix with the already-cached
    /// `parent` (prefix caching, §3.4): every *full* KV block of the common
    /// prefix is shared by reference, and only the remainder of the prompt
    /// is computed. Returns the logits after the final prompt token.
    ///
    /// The caller guarantees `prompt` starts with the parent's cached
    /// tokens up to the shared-block boundary; this is checked in debug
    /// builds by the caller owning the token text (the KV cache itself
    /// stores only projections).
    pub fn prefill_shared(
        &mut self,
        parent: u64,
        child: u64,
        prompt: &[u32],
        chunk_size: usize,
    ) -> Result<Vec<f32>, KvError> {
        let shared = self.kvm.fork_prefix(parent, child)?.get();
        assert!(
            shared < prompt.len(),
            "prompt ({}) must extend past the shared prefix ({shared})",
            prompt.len()
        );
        let mut logits = None;
        let mut pos = shared;
        for chunk in prompt[shared..].chunks(chunk_size) {
            let last = pos + chunk.len() == prompt.len();
            let c = BatchChunk { seq: child, start_pos: pos, tokens: chunk.to_vec(), sample: last };
            let mut out = self.forward_batch(std::slice::from_ref(&c))?;
            if last {
                logits = Some(out.remove(0).1);
            }
            pos += chunk.len();
        }
        Ok(logits.expect("final chunk sampled"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(stages: usize) -> CausalLM {
        CausalLM::new(ModelConfig::tiny(), stages, 64, 4, 2024)
    }

    #[test]
    fn generation_is_deterministic_and_stage_count_invariant() {
        let prompt = vec![5u32, 9, 33, 120, 7];
        let mut a = lm(1);
        let mut b = lm(2);
        let mut c = lm(4);
        let ga = a.generate(1, &prompt, 12, 64, &SamplingParams::greedy()).unwrap();
        let gb = b.generate(1, &prompt, 12, 64, &SamplingParams::greedy()).unwrap();
        let gc = c.generate(1, &prompt, 12, 64, &SamplingParams::greedy()).unwrap();
        assert_eq!(ga, gb, "2-stage pipeline changed outputs");
        assert_eq!(ga, gc, "4-stage pipeline changed outputs");
        assert_eq!(ga.len(), 12);
    }

    #[test]
    fn chunk_size_does_not_change_generation() {
        let prompt: Vec<u32> = (0..17).map(|i| (i * 13) % 256).collect();
        let mut whole = lm(1);
        let mut chunked = lm(1);
        let gw = whole.generate(1, &prompt, 8, 1024, &SamplingParams::greedy()).unwrap();
        let gc = chunked.generate(1, &prompt, 8, 3, &SamplingParams::greedy()).unwrap();
        assert_eq!(gw, gc, "chunked prefill changed generation");
    }

    #[test]
    fn interleaved_sequences_do_not_interfere() {
        let p1 = vec![1u32, 2, 3];
        let p2 = vec![40u32, 50, 60, 70];
        // Interleaved in one model.
        let mut m = lm(2);
        let l1 = m.prefill(1, &p1, 2).unwrap();
        let l2 = m.prefill(2, &p2, 3).unwrap();
        let t1 = crate::sampler::argmax(&l1);
        let t2 = crate::sampler::argmax(&l2);
        let d1 = m.decode_step(1, t1).unwrap();
        let d2 = m.decode_step(2, t2).unwrap();
        // Isolated runs.
        let mut s1 = lm(2);
        let li1 = s1.prefill(1, &p1, 2).unwrap();
        let di1 = s1.decode_step(1, crate::sampler::argmax(&li1)).unwrap();
        let mut s2 = lm(2);
        let li2 = s2.prefill(2, &p2, 3).unwrap();
        let di2 = s2.decode_step(2, crate::sampler::argmax(&li2)).unwrap();
        assert_eq!(l1, li1);
        assert_eq!(l2, li2);
        assert_eq!(d1, di1);
        assert_eq!(d2, di2);
    }

    #[test]
    fn release_returns_kv() {
        let mut m = lm(1);
        m.prefill(7, &[1, 2, 3, 4, 5], 2).unwrap();
        assert!(m.kv().utilization() > 0.0);
        m.release(7).unwrap();
        assert_eq!(m.kv().utilization(), 0.0);
    }

    #[test]
    fn kv_exhaustion_reported_as_error() {
        let mut m = CausalLM::new(ModelConfig::tiny(), 1, 2, 4, 1);
        let err = m.prefill(1, &[0; 9], 9).unwrap_err();
        assert!(matches!(err, KvError::OutOfBlocks { .. }));
    }

    #[test]
    fn prefix_sharing_is_bitexact_and_saves_blocks() {
        let shared_prefix: Vec<u32> = (0..12).map(|i| (i * 17 + 3) % 256).collect();
        let mut prompt_a = shared_prefix.clone();
        prompt_a.extend([7, 8, 9]);
        let mut prompt_b = shared_prefix.clone();
        prompt_b.extend([100, 120]);

        // Independent prefills (no sharing).
        let mut solo = lm(2);
        let la = solo.prefill(1, &prompt_a, 64).unwrap();
        let used_without_sharing = {
            let mut fresh = lm(2);
            fresh.prefill(1, &prompt_a, 64).unwrap();
            fresh.prefill(2, &prompt_b, 64).unwrap();
            fresh.kv().stats().used_blocks
        };
        let lb_solo = {
            let mut fresh = lm(2);
            fresh.prefill(2, &prompt_b, 64).unwrap()
        };

        // Shared-prefix prefill of B after A.
        let mut shared = lm(2);
        let la_shared = shared.prefill(1, &prompt_a, 64).unwrap();
        let lb_shared = shared.prefill_shared(1, 2, &prompt_b, 64).unwrap();
        assert_eq!(la, la_shared);
        assert_eq!(lb_solo, lb_shared, "prefix sharing changed the logits");
        assert!(
            shared.kv().stats().used_blocks < used_without_sharing,
            "sharing should save blocks: {} vs {}",
            shared.kv().stats().used_blocks,
            used_without_sharing
        );
        // Freeing the parent keeps the child's shared prefix alive.
        shared.release(1).unwrap();
        let tok = crate::sampler::argmax(&lb_shared);
        let after = shared.decode_step(2, tok).unwrap();
        let mut solo2 = lm(2);
        let lb2 = solo2.prefill(2, &prompt_b, 64).unwrap();
        let after_solo = solo2.decode_step(2, crate::sampler::argmax(&lb2)).unwrap();
        assert_eq!(after, after_solo);
    }

    #[test]
    fn stochastic_sampling_is_reproducible() {
        let p = SamplingParams { temperature: 0.9, top_k: 40, top_p: 0.95, seed: 7 };
        let prompt = vec![3u32, 1, 4, 1, 5];
        let mut a = lm(1);
        let mut b = lm(1);
        assert_eq!(
            a.generate(1, &prompt, 10, 4, &p).unwrap(),
            b.generate(1, &prompt, 10, 4, &p).unwrap()
        );
    }
}
