//! Paged key/value storage.
//!
//! The physical tensor behind PagedAttention: per layer, a flat `[total
//! slots × kv_dim]` array for keys and one for values, indexed by the slot
//! numbers that `gllm-kvcache`'s page tables hand out. Non-contiguous block
//! assignment is exactly what the paging tests exercise.

/// Flat paged K/V arrays for the layers one pipeline stage owns.
#[derive(Debug, Clone)]
pub struct PagedKvStore {
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
    kv_dim: usize,
    num_slots: usize,
}

impl PagedKvStore {
    /// Storage for `num_layers` layers × `num_slots` token slots of
    /// `kv_dim`-wide keys and values.
    pub fn new(num_layers: usize, num_slots: usize, kv_dim: usize) -> Self {
        Self {
            keys: vec![vec![0.0; num_slots * kv_dim]; num_layers],
            values: vec![vec![0.0; num_slots * kv_dim]; num_layers],
            kv_dim,
            num_slots,
        }
    }

    /// Token capacity (slots).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// KV width.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    /// Write one token's key and value into `slot` of `layer` (layer index
    /// is stage-local).
    pub fn write(&mut self, layer: usize, slot: usize, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.kv_dim);
        assert_eq!(value.len(), self.kv_dim);
        assert!(slot < self.num_slots, "slot {slot} out of range");
        let at = slot * self.kv_dim;
        self.keys[layer][at..at + self.kv_dim].copy_from_slice(key);
        self.values[layer][at..at + self.kv_dim].copy_from_slice(value);
    }

    /// Read one token's key.
    pub fn key(&self, layer: usize, slot: usize) -> &[f32] {
        let at = slot * self.kv_dim;
        &self.keys[layer][at..at + self.kv_dim]
    }

    /// Read one token's value.
    pub fn value(&self, layer: usize, slot: usize) -> &[f32] {
        let at = slot * self.kv_dim;
        &self.values[layer][at..at + self.kv_dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_noncontiguous_slots() {
        let mut s = PagedKvStore::new(2, 8, 4);
        let k = vec![1.0, 2.0, 3.0, 4.0];
        let v = vec![5.0, 6.0, 7.0, 8.0];
        s.write(1, 6, &k, &v);
        s.write(1, 0, &v, &k);
        assert_eq!(s.key(1, 6), &k[..]);
        assert_eq!(s.value(1, 6), &v[..]);
        assert_eq!(s.key(1, 0), &v[..]);
        // Other layers untouched.
        assert_eq!(s.key(0, 6), &[0.0; 4][..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_slot() {
        let mut s = PagedKvStore::new(1, 4, 2);
        s.write(0, 4, &[0.0, 0.0], &[0.0, 0.0]);
    }
}
