//! Token sampling strategies (§2.1: greedy, top-k, nucleus).
//!
//! Sampling randomness is derived from `(seed, seq, step)` with splitmix64,
//! never from a shared RNG stream — so the tokens a sequence samples are
//! independent of which batch it rode in, preserving the crate's
//! batch-invariance guarantee even for stochastic decoding.

/// Sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature; 0 means greedy argmax.
    pub temperature: f32,
    /// Keep only the `top_k` highest-probability tokens (0 = disabled).
    pub top_k: usize,
    /// Nucleus sampling mass (1.0 = disabled).
    pub top_p: f32,
    /// Master seed for the derived per-token randomness.
    pub seed: u64,
}

impl SamplingParams {
    /// Greedy decoding (deterministic argmax).
    pub fn greedy() -> Self {
        Self { temperature: 0.0, top_k: 0, top_p: 1.0, seed: 0 }
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        Self::greedy()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform `f64` in `[0, 1)` derived from `(seed, seq, step)`.
fn derived_uniform(seed: u64, seq: u64, step: usize) -> f64 {
    let z = splitmix64(seed ^ splitmix64(seq) ^ splitmix64(step as u64).rotate_left(17));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Greedy argmax with lowest-index tie-breaking.
pub fn argmax(logits: &[f32]) -> u32 {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in logits.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best as u32
}

/// Sample the next token from `logits` for `(seq, step)` under `params`.
pub fn sample(logits: &[f32], params: &SamplingParams, seq: u64, step: usize) -> u32 {
    if params.temperature <= 0.0 {
        return argmax(logits);
    }
    // Scale, rank, truncate to top-k / top-p, then inverse-CDF sample.
    let mut items: Vec<(usize, f32)> = logits
        .iter()
        .enumerate()
        .map(|(i, &v)| (i, v / params.temperature))
        .collect();
    items.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite logits").then(a.0.cmp(&b.0)));
    if params.top_k > 0 {
        items.truncate(params.top_k);
    }
    let max = items[0].1;
    let mut probs: Vec<f64> = items.iter().map(|&(_, v)| ((v - max) as f64).exp()).collect();
    let total: f64 = probs.iter().sum();
    for p in probs.iter_mut() {
        *p /= total;
    }
    if params.top_p < 1.0 {
        let mut mass = 0.0;
        let mut keep = probs.len();
        for (i, &p) in probs.iter().enumerate() {
            mass += p;
            if mass >= params.top_p as f64 {
                keep = i + 1;
                break;
            }
        }
        probs.truncate(keep);
        items.truncate(keep);
        let t: f64 = probs.iter().sum();
        for p in probs.iter_mut() {
            *p /= t;
        }
    }
    let u = derived_uniform(params.seed, seq, step);
    let mut acc = 0.0;
    for (&(idx, _), &p) in items.iter().zip(probs.iter()) {
        acc += p;
        if u < acc {
            return idx as u32;
        }
    }
    items.last().expect("nonempty distribution").0 as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_picks_argmax_with_lowest_index_ties() {
        assert_eq!(argmax(&[0.1, 3.0, 3.0, -1.0]), 1);
        assert_eq!(sample(&[0.1, 3.0, 2.0], &SamplingParams::greedy(), 9, 9), 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seq_and_step() {
        let p = SamplingParams { temperature: 1.0, top_k: 0, top_p: 1.0, seed: 42 };
        let logits = vec![1.0, 2.0, 0.5, 1.5];
        let a = sample(&logits, &p, 7, 3);
        let b = sample(&logits, &p, 7, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_varies_across_steps_and_sequences() {
        let p = SamplingParams { temperature: 1.0, top_k: 0, top_p: 1.0, seed: 42 };
        let logits: Vec<f32> = (0..16).map(|i| ((i * 37) % 11) as f32 / 3.0).collect();
        let by_step: Vec<u32> = (0..32).map(|s| sample(&logits, &p, 1, s)).collect();
        let distinct: std::collections::HashSet<_> = by_step.iter().collect();
        assert!(distinct.len() > 2, "steps should explore the distribution");
    }

    #[test]
    fn top_k_restricts_support() {
        let p = SamplingParams { temperature: 1.0, top_k: 2, top_p: 1.0, seed: 1 };
        let logits = vec![5.0, 4.0, -10.0, -10.0];
        for step in 0..64 {
            let t = sample(&logits, &p, 3, step);
            assert!(t <= 1, "token {t} outside top-2");
        }
    }

    #[test]
    fn top_p_restricts_support() {
        // One token carries ~all mass; nucleus 0.5 keeps only it.
        let p = SamplingParams { temperature: 1.0, top_k: 0, top_p: 0.5, seed: 1 };
        let logits = vec![10.0, 0.0, 0.0, 0.0];
        for step in 0..32 {
            assert_eq!(sample(&logits, &p, 3, step), 0);
        }
    }

    #[test]
    fn hot_temperature_flattens_distribution() {
        let cold = SamplingParams { temperature: 0.05, top_k: 0, top_p: 1.0, seed: 5 };
        let logits = vec![2.0, 1.9, 0.0];
        // Near-greedy at low temperature.
        let picks: Vec<u32> = (0..32).map(|s| sample(&logits, &cold, 1, s)).collect();
        assert!(picks.iter().filter(|&&t| t == 0).count() > 24);
    }
}
