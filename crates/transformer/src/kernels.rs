//! Dense CPU kernels.
//!
//! All kernels use fixed, sequential accumulation order so results are
//! bit-reproducible regardless of batch composition. Parallelism is applied
//! one level up (across sequences), never inside a reduction.

/// `y = W x` where `W` is `rows × cols` row-major and `x` has `cols`
/// elements. `y` must have `rows` elements.
pub fn matvec(w: &[f32], x: &[f32], y: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    assert_eq!(y.len(), rows, "output length mismatch");
    for (r, out) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (a, b) in row.iter().zip(x.iter()) {
            acc += a * b;
        }
        *out = acc;
    }
}

/// RMSNorm: `x_i ← x_i / rms(x) · g_i` with `rms(x) = sqrt(mean(x²) + ε)`.
pub fn rmsnorm(x: &mut [f32], gain: &[f32], eps: f32) {
    assert_eq!(x.len(), gain.len());
    let ss: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (ss + eps).sqrt();
    for (v, g) in x.iter_mut().zip(gain.iter()) {
        *v *= inv * g;
    }
}

/// Numerically stable in-place softmax.
pub fn softmax(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
}

/// SiLU activation: `x · σ(x)`.
#[inline]
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Apply rotary position embeddings in-place to one head-sized slice at
/// sequence position `pos`. Pairs `(2i, 2i+1)` rotate with angle
/// `pos · θ^(−2i/d)` (θ = 10000).
pub fn rope(head: &mut [f32], pos: usize) {
    let d = head.len();
    debug_assert!(d.is_multiple_of(2), "head dim must be even for RoPE");
    for i in 0..d / 2 {
        let freq = 1.0 / 10000f32.powf(2.0 * i as f32 / d as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        let a = head[2 * i];
        let b = head[2 * i + 1];
        head[2 * i] = a * cos - b * sin;
        head[2 * i + 1] = a * sin + b * cos;
    }
}

/// `acc += x` elementwise (residual connection).
pub fn add_assign(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len());
    for (a, b) in acc.iter_mut().zip(x.iter()) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut w = vec![0.0; 9];
        for i in 0..3 {
            w[i * 3 + i] = 1.0;
        }
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        matvec(&w, &x, &mut y, 3, 3);
        assert_eq!(y, x);
    }

    #[test]
    fn matvec_known_values() {
        // [[1,2],[3,4]] · [5,6] = [17, 39]
        let w = vec![1.0, 2.0, 3.0, 4.0];
        let mut y = vec![0.0; 2];
        matvec(&w, &[5.0, 6.0], &mut y, 2, 2);
        assert_eq!(y, vec![17.0, 39.0]);
    }

    #[test]
    fn rmsnorm_produces_unit_rms() {
        let mut x = vec![3.0, -4.0, 12.0, 0.0];
        let gain = vec![1.0; 4];
        rmsnorm(&mut x, &gain, 1e-6);
        let rms: f32 = (x.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1001.0, 1002.0];
        softmax(&mut x);
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn silu_fixed_points() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(10.0) - 10.0).abs() < 1e-3, "saturates to identity");
        assert!(silu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn rope_preserves_norm_and_is_position_dependent() {
        let orig = vec![1.0f32, 0.5, -0.3, 0.8];
        let mut a = orig.clone();
        rope(&mut a, 0);
        // Position 0 rotates by angle 0 → unchanged.
        assert_eq!(a, orig);
        let mut b = orig.clone();
        rope(&mut b, 7);
        assert_ne!(b, orig);
        let n0: f32 = orig.iter().map(|v| v * v).sum();
        let n7: f32 = b.iter().map(|v| v * v).sum();
        assert!((n0 - n7).abs() < 1e-5, "rotation preserves norm");
    }

    #[test]
    fn rope_relative_rotation_composes() {
        // Rotating the same vector to positions p and q differs by the
        // rotation of (q − p) applied in the same basis: check via dot
        // products (relative-position property RoPE is designed for).
        let q = vec![0.3f32, -0.7, 1.1, 0.2];
        let k = vec![0.9f32, 0.1, -0.4, 0.5];
        let dot = |a: &[f32], b: &[f32]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>();
        let mut q5 = q.clone();
        let mut k3 = k.clone();
        rope(&mut q5, 5);
        rope(&mut k3, 3);
        let mut q12 = q.clone();
        let mut k10 = k.clone();
        rope(&mut q12, 12);
        rope(&mut k10, 10);
        assert!((dot(&q5, &k3) - dot(&q12, &k10)).abs() < 1e-4);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = vec![1.0, 2.0];
        add_assign(&mut a, &[0.5, -0.5]);
        assert_eq!(a, vec![1.5, 1.5]);
    }
}
