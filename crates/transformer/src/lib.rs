//! An executable CPU decoder-only transformer with paged-KV grouped-query
//! attention.
//!
//! The paper's Table 1 argument is functional: gLLM's scheduling (chunked
//! prefill, hybrid batching, Token Throttling) must not change model
//! outputs. With no GPUs available, this crate provides a *real* — if small
//! — transformer that executes forward passes on the CPU so that claim can
//! be verified end-to-end: RMSNorm, rotary position embeddings,
//! grouped-query attention reading/writing a **paged** KV store indexed by
//! `gllm-kvcache` page tables, SwiGLU MLPs and an LM head with greedy /
//! top-k / nucleus sampling.
//!
//! Design properties the tests rely on:
//!
//! * **Determinism / batch invariance** — each sequence's computation is
//!   independent (per-sequence attention, fixed accumulation order), so the
//!   composition of a micro-batch cannot perturb results; chunked prefill
//!   equals whole-prompt prefill bit-for-bit.
//! * **Partition invariance** — weights are derived per layer index from a
//!   master seed, so a 4-stage pipeline instantiates the *same model* as a
//!   single stage, and pipelined execution must reproduce single-process
//!   outputs exactly.
//! * **Parallelism** — rayon parallelises across the sequences of a batch
//!   (the axis real engines batch over), per the HPC guide's
//!   "par_iter over the data" idiom.

pub mod causal_lm;
pub mod kernels;
pub mod kvstore;
pub mod model;
pub mod sampler;
pub mod weights;

pub use causal_lm::CausalLM;
pub use kvstore::PagedKvStore;
pub use model::{BatchChunk, StageModel};
pub use sampler::{sample, SamplingParams};
