//! One pipeline stage of the transformer.
//!
//! A [`StageModel`] owns a contiguous range of decoder layers (plus the
//! embedding table on the first stage and the final-norm/LM-head on the
//! last), and the paged KV storage for exactly those layers — mirroring how
//! the paper's workers each hold their stage's weights and KV while sharing
//! the driver's unified page tables.
//!
//! `forward` processes a micro-batch of [`BatchChunk`]s (prefill chunks
//! and/or decode steps). Within a layer, computation is parallelised with
//! rayon **across chunks** — each sequence's arithmetic is self-contained
//! with a fixed accumulation order, so batching and parallelism cannot
//! change results.

use std::ops::Range;

use gllm_kvcache::PageTable;
use gllm_model::ModelConfig;
use rayon::prelude::*;

use crate::kernels::{add_assign, matvec, rmsnorm, rope, silu, softmax};
use crate::kvstore::PagedKvStore;
use crate::weights::{
    gen_embedding, gen_final_norm, gen_layer, gen_lm_head, LayerWeights,
};

/// RMSNorm epsilon (Llama/Qwen convention).
const NORM_EPS: f32 = 1e-5;

/// One sequence's slice of a micro-batch.
#[derive(Debug, Clone)]
pub struct BatchChunk {
    /// Sequence id (for diagnostics; the page table is passed alongside).
    pub seq: u64,
    /// Global position of the first new token.
    pub start_pos: usize,
    /// New token ids (1 for a decode step, the chunk for a prefill).
    pub tokens: Vec<u32>,
    /// Whether to produce logits for the chunk's last token.
    pub sample: bool,
}

/// A contiguous range of decoder layers plus optional ends of the model.
pub struct StageModel {
    cfg: ModelConfig,
    layer_range: Range<usize>,
    layers: Vec<LayerWeights>,
    embedding: Option<Vec<f32>>,
    final_norm: Option<Vec<f32>>,
    lm_head: Option<Vec<f32>>,
    kv: PagedKvStore,
}

impl StageModel {
    /// Build the stage holding `layer_range` of `cfg`, with KV capacity
    /// `kv_slots` tokens. Weights derive from `seed` per absolute layer
    /// index, so any partitioning of the same `(cfg, seed)` pair is the
    /// same model. `is_first`/`is_last` attach the embedding / LM head.
    pub fn new(
        cfg: ModelConfig,
        layer_range: Range<usize>,
        kv_slots: usize,
        seed: u64,
        is_first: bool,
        is_last: bool,
    ) -> Self {
        assert!(layer_range.end <= cfg.num_layers);
        let layers = layer_range.clone().map(|l| gen_layer(&cfg, seed, l)).collect();
        Self {
            embedding: is_first.then(|| gen_embedding(&cfg, seed)),
            final_norm: is_last.then(|| gen_final_norm(&cfg, seed)),
            lm_head: is_last.then(|| gen_lm_head(&cfg, seed)),
            kv: PagedKvStore::new(layer_range.len(), kv_slots, cfg.kv_dim()),
            cfg,
            layer_range,
            layers,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The absolute layer range this stage owns.
    pub fn layer_range(&self) -> Range<usize> {
        self.layer_range.clone()
    }

    /// Embed a micro-batch's token ids into hidden rows (first stage only).
    /// Returns one `tokens × hidden` buffer per chunk.
    pub fn embed(&self, chunks: &[BatchChunk]) -> Vec<Vec<f32>> {
        let table = self.embedding.as_ref().expect("embed on a non-first stage");
        let h = self.cfg.hidden_size;
        chunks
            .par_iter()
            .map(|c| {
                let mut rows = Vec::with_capacity(c.tokens.len() * h);
                for &tok in &c.tokens {
                    let tok = tok as usize;
                    assert!(tok < self.cfg.vocab_size, "token id {tok} out of vocab");
                    rows.extend_from_slice(&table[tok * h..(tok + 1) * h]);
                }
                rows
            })
            .collect()
    }

    /// Run this stage's decoder layers over the micro-batch, mutating the
    /// hidden rows in place. `tables[i]` is chunk `i`'s page table and must
    /// already cover `start_pos + tokens.len()` slots.
    pub fn forward(&mut self, chunks: &[BatchChunk], tables: &[&PageTable], hidden: &mut [Vec<f32>]) {
        assert_eq!(chunks.len(), tables.len());
        assert_eq!(chunks.len(), hidden.len());
        let cfg = self.cfg.clone();
        for local in 0..self.layers.len() {
            // Phase 1 (parallel): project new tokens to Q/K/V and apply RoPE.
            let layer = &self.layers[local];
            let qkv: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = chunks
                .par_iter()
                .zip(hidden.par_iter())
                .map(|(c, hrows)| project_qkv(&cfg, layer, c, hrows))
                .collect();

            // Phase 2 (sequential): write new K/V into the paged store.
            for (ci, c) in chunks.iter().enumerate() {
                let (_, k, v) = &qkv[ci];
                for (ti, _) in c.tokens.iter().enumerate() {
                    let slot = tables[ci].slot_of(c.start_pos + ti);
                    let at = ti * cfg.kv_dim();
                    self.kv.write(
                        local,
                        slot,
                        &k[at..at + cfg.kv_dim()],
                        &v[at..at + cfg.kv_dim()],
                    );
                }
            }

            // Phase 3 (parallel): attention + output projection + MLP.
            let kv = &self.kv;
            let layer = &self.layers[local];
            chunks
                .par_iter()
                .zip(tables.par_iter())
                .zip(hidden.par_iter_mut())
                .enumerate()
                .for_each(|(ci, ((c, table), hrows))| {
                    attend_and_mlp(&cfg, layer, kv, local, c, table, &qkv[ci].0, hrows);
                });
        }
    }

    /// Final norm + LM head for every chunk with `sample == true` (last
    /// stage only). Returns `(seq, logits)` in chunk order.
    pub fn project(&self, chunks: &[BatchChunk], hidden: &[Vec<f32>]) -> Vec<(u64, Vec<f32>)> {
        let norm = self.final_norm.as_ref().expect("project on a non-last stage");
        let head = self.lm_head.as_ref().expect("project on a non-last stage");
        let h = self.cfg.hidden_size;
        let v = self.cfg.vocab_size;
        chunks
            .par_iter()
            .zip(hidden.par_iter())
            .filter(|(c, _)| c.sample)
            .map(|(c, hrows)| {
                let last = &hrows[(c.tokens.len() - 1) * h..c.tokens.len() * h];
                let mut x = last.to_vec();
                rmsnorm(&mut x, norm, NORM_EPS);
                let mut logits = vec![0.0f32; v];
                matvec(head, &x, &mut logits, v, h);
                (c.seq, logits)
            })
            .collect()
    }
}

/// Project one chunk's hidden rows to (roped Q, roped K, V).
fn project_qkv(
    cfg: &ModelConfig,
    layer: &LayerWeights,
    c: &BatchChunk,
    hrows: &[f32],
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let h = cfg.hidden_size;
    let qd = cfg.q_dim();
    let kvd = cfg.kv_dim();
    let hd = cfg.head_dim;
    let n = c.tokens.len();
    let mut q = vec![0.0f32; n * qd];
    let mut k = vec![0.0f32; n * kvd];
    let mut v = vec![0.0f32; n * kvd];
    let mut normed = vec![0.0f32; h];
    for t in 0..n {
        normed.copy_from_slice(&hrows[t * h..(t + 1) * h]);
        rmsnorm(&mut normed, &layer.attn_norm, NORM_EPS);
        matvec(&layer.wq, &normed, &mut q[t * qd..(t + 1) * qd], qd, h);
        matvec(&layer.wk, &normed, &mut k[t * kvd..(t + 1) * kvd], kvd, h);
        matvec(&layer.wv, &normed, &mut v[t * kvd..(t + 1) * kvd], kvd, h);
        let pos = c.start_pos + t;
        for head in 0..cfg.num_heads {
            rope(&mut q[t * qd + head * hd..t * qd + (head + 1) * hd], pos);
        }
        for head in 0..cfg.num_kv_heads {
            rope(&mut k[t * kvd + head * hd..t * kvd + (head + 1) * hd], pos);
        }
    }
    (q, k, v)
}

/// Grouped-query attention over the paged store, output projection,
/// residuals and the SwiGLU MLP for one chunk. Mutates the hidden rows.
#[allow(clippy::too_many_arguments)]
fn attend_and_mlp(
    cfg: &ModelConfig,
    layer: &LayerWeights,
    kv: &PagedKvStore,
    local_layer: usize,
    c: &BatchChunk,
    table: &PageTable,
    q: &[f32],
    hrows: &mut [f32],
) {
    let h = cfg.hidden_size;
    let qd = cfg.q_dim();
    let hd = cfg.head_dim;
    let group = cfg.num_heads / cfg.num_kv_heads;
    let scale = 1.0 / (hd as f32).sqrt();

    let mut attn_out = vec![0.0f32; qd];
    let mut proj = vec![0.0f32; h];
    for t in 0..c.tokens.len() {
        let pos = c.start_pos + t;
        let ctx = pos + 1; // causal: attend to positions 0..=pos
        attn_out.iter_mut().for_each(|x| *x = 0.0);
        for head in 0..cfg.num_heads {
            let kvh = head / group;
            let qh = &q[t * qd + head * hd..t * qd + (head + 1) * hd];
            let mut scores = vec![0.0f32; ctx];
            for (j, s) in scores.iter_mut().enumerate() {
                let key = kv.key(local_layer, table.slot_of(j));
                let kh = &key[kvh * hd..(kvh + 1) * hd];
                let mut dot = 0.0f32;
                for (a, b) in qh.iter().zip(kh.iter()) {
                    dot += a * b;
                }
                *s = dot * scale;
            }
            softmax(&mut scores);
            let out = &mut attn_out[head * hd..(head + 1) * hd];
            for (j, &p) in scores.iter().enumerate() {
                let val = kv.value(local_layer, table.slot_of(j));
                let vh = &val[kvh * hd..(kvh + 1) * hd];
                for (o, &x) in out.iter_mut().zip(vh.iter()) {
                    *o += p * x;
                }
            }
        }
        matvec(&layer.wo, &attn_out, &mut proj, h, qd);
        let row = &mut hrows[t * h..(t + 1) * h];
        add_assign(row, &proj);

        // SwiGLU MLP with pre-norm and residual.
        let mut normed = row.to_vec();
        rmsnorm(&mut normed, &layer.mlp_norm, NORM_EPS);
        let i = cfg.intermediate_size;
        let mut gate = vec![0.0f32; i];
        let mut up = vec![0.0f32; i];
        matvec(&layer.w_gate, &normed, &mut gate, i, h);
        matvec(&layer.w_up, &normed, &mut up, i, h);
        for (g, u) in gate.iter_mut().zip(up.iter()) {
            *g = silu(*g) * u;
        }
        matvec(&layer.w_down, &gate, &mut proj, h, i);
        add_assign(row, &proj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_kvcache::{Blocks, KvCacheManager, Tokens};

    fn tiny_stage(kv_slots: usize) -> StageModel {
        let cfg = ModelConfig::tiny();
        StageModel::new(cfg.clone(), 0..cfg.num_layers, kv_slots, 7, true, true)
    }

    fn run_prompt(stage: &mut StageModel, kvm: &mut KvCacheManager, seq: u64, prompt: &[u32]) -> Vec<f32> {
        kvm.append(seq, Tokens(prompt.len())).unwrap();
        let chunk = BatchChunk { seq, start_pos: 0, tokens: prompt.to_vec(), sample: true };
        let table = kvm.table(seq).unwrap();
        let mut hidden = stage.embed(std::slice::from_ref(&chunk));
        // Cloning the table is fine: slots were assigned at append time.
        let t = table.clone();
        stage.forward(std::slice::from_ref(&chunk), &[&t], &mut hidden);
        stage.project(std::slice::from_ref(&chunk), &hidden).remove(0).1
    }

    #[test]
    fn forward_is_deterministic() {
        let mut kvm = KvCacheManager::new(Blocks(16), Tokens(4));
        let mut s1 = tiny_stage(64);
        let a = run_prompt(&mut s1, &mut kvm, 1, &[3, 5, 7]);
        let mut kvm2 = KvCacheManager::new(Blocks(16), Tokens(4));
        let mut s2 = tiny_stage(64);
        let b = run_prompt(&mut s2, &mut kvm2, 1, &[3, 5, 7]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_prompts_give_different_logits() {
        let mut kvm = KvCacheManager::new(Blocks(32), Tokens(4));
        let mut s = tiny_stage(128);
        let a = run_prompt(&mut s, &mut kvm, 1, &[3, 5, 7]);
        let b = run_prompt(&mut s, &mut kvm, 2, &[3, 5, 8]);
        assert_ne!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn chunked_prefill_matches_whole_prefill_bitexact() {
        let prompt: Vec<u32> = vec![9, 2, 250, 17, 4, 99, 31, 8];
        // Whole prefill.
        let mut kvm_a = KvCacheManager::new(Blocks(32), Tokens(4));
        let mut sa = tiny_stage(128);
        let whole = run_prompt(&mut sa, &mut kvm_a, 1, &prompt);
        // Chunked prefill: 3 + 5 tokens.
        let mut kvm_b = KvCacheManager::new(Blocks(32), Tokens(4));
        let mut sb = tiny_stage(128);
        kvm_b.append(1, Tokens(3)).unwrap();
        let c1 = BatchChunk { seq: 1, start_pos: 0, tokens: prompt[..3].to_vec(), sample: false };
        let t1 = kvm_b.table(1).unwrap().clone();
        let mut h1 = sb.embed(std::slice::from_ref(&c1));
        sb.forward(std::slice::from_ref(&c1), &[&t1], &mut h1);
        kvm_b.append(1, Tokens(5)).unwrap();
        let c2 = BatchChunk { seq: 1, start_pos: 3, tokens: prompt[3..].to_vec(), sample: true };
        let t2 = kvm_b.table(1).unwrap().clone();
        let mut h2 = sb.embed(std::slice::from_ref(&c2));
        sb.forward(std::slice::from_ref(&c2), &[&t2], &mut h2);
        let chunked = sb.project(std::slice::from_ref(&c2), &h2).remove(0).1;
        assert_eq!(whole, chunked, "chunking changed the logits");
    }

    #[test]
    fn batched_execution_matches_sequential_bitexact() {
        // Two sequences in one micro-batch vs two separate passes.
        let p1: Vec<u32> = vec![1, 2, 3, 4];
        let p2: Vec<u32> = vec![200, 100, 50];
        let mut kvm = KvCacheManager::new(Blocks(64), Tokens(4));
        let mut s = tiny_stage(256);
        kvm.append(1, Tokens(p1.len())).unwrap();
        kvm.append(2, Tokens(p2.len())).unwrap();
        let chunks = vec![
            BatchChunk { seq: 1, start_pos: 0, tokens: p1.clone(), sample: true },
            BatchChunk { seq: 2, start_pos: 0, tokens: p2.clone(), sample: true },
        ];
        let t1 = kvm.table(1).unwrap().clone();
        let t2 = kvm.table(2).unwrap().clone();
        let mut hidden = s.embed(&chunks);
        s.forward(&chunks, &[&t1, &t2], &mut hidden);
        let batched = s.project(&chunks, &hidden);

        let mut kvm_a = KvCacheManager::new(Blocks(64), Tokens(4));
        let mut sa = tiny_stage(256);
        let solo1 = run_prompt(&mut sa, &mut kvm_a, 1, &p1);
        let mut kvm_b = KvCacheManager::new(Blocks(64), Tokens(4));
        let mut sb = tiny_stage(256);
        let solo2 = run_prompt(&mut sb, &mut kvm_b, 2, &p2);

        assert_eq!(batched[0].1, solo1);
        assert_eq!(batched[1].1, solo2);
    }

    #[test]
    fn pipelined_stages_match_single_stage_bitexact() {
        let cfg = ModelConfig::tiny();
        let prompt: Vec<u32> = vec![11, 22, 33, 44, 55];
        // Single stage.
        let mut kvm = KvCacheManager::new(Blocks(32), Tokens(4));
        let mut whole = tiny_stage(128);
        let expected = run_prompt(&mut whole, &mut kvm, 1, &prompt);
        // Two stages: layers 0..2 and 2..4.
        let mut s0 = StageModel::new(cfg.clone(), 0..2, 128, 7, true, false);
        let mut s1 = StageModel::new(cfg.clone(), 2..4, 128, 7, false, true);
        let mut kvm2 = KvCacheManager::new(Blocks(32), Tokens(4));
        kvm2.append(1, Tokens(prompt.len())).unwrap();
        let chunk = BatchChunk { seq: 1, start_pos: 0, tokens: prompt.clone(), sample: true };
        let t = kvm2.table(1).unwrap().clone();
        let mut hidden = s0.embed(std::slice::from_ref(&chunk));
        s0.forward(std::slice::from_ref(&chunk), &[&t], &mut hidden);
        s1.forward(std::slice::from_ref(&chunk), &[&t], &mut hidden);
        let got = s1.project(std::slice::from_ref(&chunk), &hidden).remove(0).1;
        assert_eq!(expected, got, "pipelining changed the logits");
    }

    #[test]
    fn paged_noncontiguous_blocks_do_not_change_results() {
        // Fragment the allocator so sequence 2's blocks are non-adjacent,
        // then check logits match a fresh contiguous run.
        let prompt: Vec<u32> = vec![7, 8, 9, 10, 11, 12];
        let mut kvm = KvCacheManager::new(Blocks(16), Tokens(2));
        let mut s = tiny_stage(32);
        kvm.append(10, Tokens(2)).unwrap(); // occupy block 0
        kvm.append(11, Tokens(2)).unwrap(); // occupy block 1
        kvm.free(10).unwrap(); // hole at block 0
        kvm.append(2, Tokens(prompt.len())).unwrap(); // spans hole + tail blocks
        let chunk = BatchChunk { seq: 2, start_pos: 0, tokens: prompt.clone(), sample: true };
        let t = kvm.table(2).unwrap().clone();
        let mut hidden = s.embed(std::slice::from_ref(&chunk));
        s.forward(std::slice::from_ref(&chunk), &[&t], &mut hidden);
        let frag = s.project(std::slice::from_ref(&chunk), &hidden).remove(0).1;

        let mut kvm2 = KvCacheManager::new(Blocks(16), Tokens(2));
        let mut s2 = tiny_stage(32);
        let contiguous = run_prompt(&mut s2, &mut kvm2, 2, &prompt);
        assert_eq!(frag, contiguous, "paging layout leaked into results");
    }
}
