//! Deterministic synthetic weights.
//!
//! Real checkpoints are unavailable offline, so weights are drawn from a
//! seeded generator. Crucially, every tensor's values are derived from
//! `(master_seed, layer_index, tensor_tag)` — *not* from the order tensors
//! happen to be created in — so a model partitioned into any number of
//! pipeline stages instantiates exactly the same parameters. That is what
//! lets the tests assert pipelined execution is bit-identical to
//! single-stage execution.

use gllm_model::ModelConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tags identifying each tensor within a layer (or globally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tensor {
    /// Token embedding table.
    Embedding,
    /// LM head projection.
    LmHead,
    /// Final RMSNorm gain.
    FinalNorm,
    /// Attention input norm gain.
    AttnNorm,
    /// Query projection.
    Wq,
    /// Key projection.
    Wk,
    /// Value projection.
    Wv,
    /// Output projection.
    Wo,
    /// MLP input norm gain.
    MlpNorm,
    /// SwiGLU gate projection.
    WGate,
    /// SwiGLU up projection.
    WUp,
    /// SwiGLU down projection.
    WDown,
}

impl Tensor {
    fn tag(self) -> u64 {
        match self {
            Tensor::Embedding => 1,
            Tensor::LmHead => 2,
            Tensor::FinalNorm => 3,
            Tensor::AttnNorm => 4,
            Tensor::Wq => 5,
            Tensor::Wk => 6,
            Tensor::Wv => 7,
            Tensor::Wo => 8,
            Tensor::MlpNorm => 9,
            Tensor::WGate => 10,
            Tensor::WUp => 11,
            Tensor::WDown => 12,
        }
    }
}

/// Weights of one decoder layer.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Attention-input RMSNorm gain, `[hidden]`.
    pub attn_norm: Vec<f32>,
    /// Query projection, `[q_dim × hidden]` row-major.
    pub wq: Vec<f32>,
    /// Key projection, `[kv_dim × hidden]`.
    pub wk: Vec<f32>,
    /// Value projection, `[kv_dim × hidden]`.
    pub wv: Vec<f32>,
    /// Output projection, `[hidden × q_dim]`.
    pub wo: Vec<f32>,
    /// MLP-input RMSNorm gain, `[hidden]`.
    pub mlp_norm: Vec<f32>,
    /// SwiGLU gate, `[intermediate × hidden]`.
    pub w_gate: Vec<f32>,
    /// SwiGLU up, `[intermediate × hidden]`.
    pub w_up: Vec<f32>,
    /// SwiGLU down, `[hidden × intermediate]`.
    pub w_down: Vec<f32>,
}

/// Splitmix64: cheap, high-quality seed derivation.
fn derive_seed(master: u64, layer: u64, tag: u64) -> u64 {
    let mut z = master ^ layer.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate one tensor of `n` values with scale `s` (uniform in `[-s, s]`).
pub fn gen_tensor(master: u64, layer: usize, tensor: Tensor, n: usize, s: f32) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(derive_seed(master, layer as u64, tensor.tag()));
    (0..n).map(|_| rng.gen_range(-s..=s)).collect()
}

/// Generate a norm gain (all ones perturbed slightly, like trained norms).
pub fn gen_norm(master: u64, layer: usize, tensor: Tensor, n: usize) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(derive_seed(master, layer as u64, tensor.tag()));
    (0..n).map(|_| 1.0 + rng.gen_range(-0.05f32..=0.05)).collect()
}

/// Generate layer `layer`'s weights for `cfg` from `master` seed.
pub fn gen_layer(cfg: &ModelConfig, master: u64, layer: usize) -> LayerWeights {
    let h = cfg.hidden_size;
    let q = cfg.q_dim();
    let kv = cfg.kv_dim();
    let i = cfg.intermediate_size;
    let s = 0.6 / (h as f32).sqrt();
    LayerWeights {
        attn_norm: gen_norm(master, layer, Tensor::AttnNorm, h),
        wq: gen_tensor(master, layer, Tensor::Wq, q * h, s),
        wk: gen_tensor(master, layer, Tensor::Wk, kv * h, s),
        wv: gen_tensor(master, layer, Tensor::Wv, kv * h, s),
        wo: gen_tensor(master, layer, Tensor::Wo, h * q, s),
        mlp_norm: gen_norm(master, layer, Tensor::MlpNorm, h),
        w_gate: gen_tensor(master, layer, Tensor::WGate, i * h, s),
        w_up: gen_tensor(master, layer, Tensor::WUp, i * h, s),
        w_down: gen_tensor(master, layer, Tensor::WDown, h * i, 0.6 / (i as f32).sqrt()),
    }
}

/// Generate the embedding table.
pub fn gen_embedding(cfg: &ModelConfig, master: u64) -> Vec<f32> {
    gen_tensor(master, usize::MAX, Tensor::Embedding, cfg.vocab_size * cfg.hidden_size, 0.5)
}

/// Generate the LM head (`[vocab × hidden]`).
pub fn gen_lm_head(cfg: &ModelConfig, master: u64) -> Vec<f32> {
    gen_tensor(
        master,
        usize::MAX,
        Tensor::LmHead,
        cfg.vocab_size * cfg.hidden_size,
        0.6 / (cfg.hidden_size as f32).sqrt(),
    )
}

/// Generate the final RMSNorm gain.
pub fn gen_final_norm(cfg: &ModelConfig, master: u64) -> Vec<f32> {
    gen_norm(master, usize::MAX, Tensor::FinalNorm, cfg.hidden_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let cfg = ModelConfig::tiny();
        let a = gen_layer(&cfg, 42, 1);
        let b = gen_layer(&cfg, 42, 1);
        assert_eq!(a.wq, b.wq);
        assert_eq!(a.w_down, b.w_down);
    }

    #[test]
    fn different_layers_differ() {
        let cfg = ModelConfig::tiny();
        let a = gen_layer(&cfg, 42, 0);
        let b = gen_layer(&cfg, 42, 1);
        assert_ne!(a.wq, b.wq);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = ModelConfig::tiny();
        assert_ne!(gen_layer(&cfg, 1, 0).wq, gen_layer(&cfg, 2, 0).wq);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = ModelConfig::tiny();
        let l = gen_layer(&cfg, 7, 0);
        assert_eq!(l.wq.len(), cfg.q_dim() * cfg.hidden_size);
        assert_eq!(l.wk.len(), cfg.kv_dim() * cfg.hidden_size);
        assert_eq!(l.wo.len(), cfg.hidden_size * cfg.q_dim());
        assert_eq!(l.w_down.len(), cfg.hidden_size * cfg.intermediate_size);
        assert_eq!(gen_embedding(&cfg, 7).len(), cfg.vocab_size * cfg.hidden_size);
    }

    #[test]
    fn norm_gains_are_near_one() {
        let cfg = ModelConfig::tiny();
        let n = gen_norm(7, 0, Tensor::AttnNorm, cfg.hidden_size);
        assert!(n.iter().all(|&g| (0.9..=1.1).contains(&g)));
    }
}
