//! Per-sequence logical→physical block mapping.
//!
//! A [`PageTable`] records which physical blocks back a sequence's KV cache
//! and how many token slots are filled. It is pure bookkeeping — allocation
//! and freeing go through the [`crate::manager::KvCacheManager`] so that
//! reference counts stay consistent.

use gllm_units::{Blocks, Tokens};
use serde::{Deserialize, Serialize};

use crate::allocator::BlockId;

/// One sequence's page table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTable {
    /// Physical blocks in logical order.
    blocks: Vec<BlockId>,
    /// Number of token slots currently filled.
    num_tokens: Tokens,
    /// Tokens per block (fixed for the lifetime of the table).
    block_size: Tokens,
}

impl PageTable {
    /// An empty table with the given block size.
    pub fn new(block_size: Tokens) -> Self {
        assert!(!block_size.is_zero());
        Self {
            blocks: Vec::new(),
            num_tokens: Tokens::ZERO,
            block_size,
        }
    }

    /// Tokens per block.
    #[inline]
    pub fn block_size(&self) -> Tokens {
        self.block_size
    }

    /// Token slots currently filled.
    #[inline]
    pub fn num_tokens(&self) -> Tokens {
        self.num_tokens
    }

    /// Physical blocks backing this sequence, in logical order.
    #[inline]
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Free token slots remaining in the last block.
    pub fn slack(&self) -> Tokens {
        Tokens(self.blocks.len() * self.block_size.get() - self.num_tokens.get())
    }

    /// Blocks that must be appended before `extra` more tokens fit.
    pub fn blocks_needed_for(&self, extra: Tokens) -> Blocks {
        let total = self.num_tokens + extra;
        total
            .to_blocks(self.block_size)
            .saturating_sub(Blocks(self.blocks.len()))
    }

    /// Append physical blocks (handed out by the manager).
    pub(crate) fn push_blocks(&mut self, new_blocks: impl IntoIterator<Item = BlockId>) {
        self.blocks.extend(new_blocks);
    }

    /// Mark `n` more token slots as filled. Panics if capacity is exceeded —
    /// the manager must have appended blocks first.
    pub(crate) fn fill(&mut self, n: Tokens) {
        let cap = self.blocks.len() * self.block_size.get();
        assert!(
            self.num_tokens.get() + n.get() <= cap,
            "page table overflow: {} + {} > {cap}",
            self.num_tokens.get(),
            n.get()
        );
        self.num_tokens += n;
    }

    /// Drain all blocks (eviction); the table keeps its block size but
    /// forgets its contents.
    pub(crate) fn take_blocks(&mut self) -> Vec<BlockId> {
        self.num_tokens = Tokens::ZERO;
        std::mem::take(&mut self.blocks)
    }

    /// Global slot index of logical token position `pos`, for indexing a
    /// flat paged KV tensor: `block.index() × block_size + offset`.
    pub fn slot_of(&self, pos: usize) -> usize {
        assert!(pos < self.num_tokens.get(), "position {pos} not filled");
        let bs = self.block_size.get();
        let block = self.blocks[pos / bs];
        block.index() * bs + pos % bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(blocks: &[u32], block_size: usize) -> PageTable {
        let mut t = PageTable::new(Tokens(block_size));
        t.push_blocks(blocks.iter().copied().map(BlockId));
        t
    }

    #[test]
    fn blocks_needed_rounds_up() {
        let mut t = table_with(&[0], 16);
        t.fill(Tokens(10));
        assert_eq!(t.blocks_needed_for(Tokens(6)), Blocks(0)); // fits in slack
        assert_eq!(t.blocks_needed_for(Tokens(7)), Blocks(1));
        assert_eq!(t.blocks_needed_for(Tokens(16 + 7)), Blocks(2));
    }

    #[test]
    fn slack_tracks_last_block_occupancy() {
        let mut t = table_with(&[0, 1], 16);
        t.fill(Tokens(20));
        assert_eq!(t.slack(), Tokens(12));
        assert_eq!(t.num_tokens(), Tokens(20));
    }

    #[test]
    fn slot_of_maps_through_noncontiguous_blocks() {
        let mut t = table_with(&[7, 2], 4);
        t.fill(Tokens(6));
        assert_eq!(t.slot_of(0), 7 * 4);
        assert_eq!(t.slot_of(3), 7 * 4 + 3);
        assert_eq!(t.slot_of(4), 2 * 4);
        assert_eq!(t.slot_of(5), 2 * 4 + 1);
    }

    #[test]
    #[should_panic(expected = "not filled")]
    fn slot_of_unfilled_position_panics() {
        let mut t = table_with(&[0], 4);
        t.fill(Tokens(2));
        t.slot_of(2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn fill_beyond_capacity_panics() {
        let mut t = table_with(&[0], 4);
        t.fill(Tokens(5));
    }

    #[test]
    fn take_blocks_resets_table() {
        let mut t = table_with(&[3, 4], 4);
        t.fill(Tokens(5));
        let drained = t.take_blocks();
        assert_eq!(drained, vec![BlockId(3), BlockId(4)]);
        assert_eq!(t.num_tokens(), Tokens(0));
        assert!(t.blocks().is_empty());
    }
}
