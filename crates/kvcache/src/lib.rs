//! PagedAttention-style KV cache management.
//!
//! The paper's gLLM engine adopts vLLM's paged KV cache (§3.4): device
//! memory is carved into fixed-size blocks, each sequence owns a page table
//! mapping logical token positions to physical blocks, and all pipeline
//! stages share one unified page table managed by the driver worker (§3.3).
//! This crate implements that substrate:
//!
//! * [`allocator::BlockAllocator`] — free-list allocator with reference
//!   counts (reference counts enable prefix sharing / copy-on-write),
//! * [`page_table::PageTable`] — a sequence's logical→physical mapping,
//! * [`manager::KvCacheManager`] — the driver-side manager: allocation for
//!   prefill chunks, extension for decode steps, preemption (eviction with
//!   recomputation bookkeeping), watermarks, and the *free-rate* signal
//!   (`KV_free`) that Token Throttling's UT component consumes.
//!
//! The same manager backs both the discrete-event simulator and the real
//! threaded runtime, so the KV pressure the scheduler reacts to is computed
//! by identical code in both planes.

pub mod allocator;
pub mod manager;
pub mod page_table;

pub use allocator::{BlockAllocator, BlockId};
pub use manager::{KvCacheManager, KvError, KvStats, SeqId};
pub use page_table::PageTable;

// Re-exported so downstream crates can name the unit newtypes without a
// separate `gllm-units` dependency edge.
pub use gllm_units::{Blocks, Bytes, Tokens};
