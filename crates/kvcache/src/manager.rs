//! Driver-side KV cache manager.
//!
//! In the paper's runtime the driver worker owns KV cache management and all
//! workers share its page tables (§3.3, Fig. 6 caption: "the KV cache usage
//! is consistent across all GPUs since they share unified page tables").
//! [`KvCacheManager`] is that component: it allocates blocks for prefill
//! chunks, extends sequences during decode, evicts sequences under pressure
//! (preemption with recomputation, §3.1.3), and exposes the `KV_free` signal
//! Token Throttling's UT rule consumes.
//!
//! All token/block quantities at this interface use the `gllm-units`
//! newtypes so token-vs-block confusion (PR 1's headline bug) cannot
//! recur silently.

use std::collections::BTreeMap;

use gllm_units::{Blocks, Tokens};
use serde::{Deserialize, Serialize};

use crate::allocator::{BlockAllocator, BlockId};
use crate::page_table::PageTable;

/// Opaque sequence identifier (matches the request id in `gllm-core`).
pub type SeqId = u64;

/// KV cache operation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Not enough free blocks to satisfy an allocation.
    OutOfBlocks {
        /// Blocks the operation needed.
        requested: Blocks,
        /// Blocks actually free.
        available: Blocks,
    },
    /// The sequence id has no page table.
    UnknownSequence(SeqId),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::OutOfBlocks { requested, available } => {
                write!(f, "out of KV blocks: need {requested}, have {available}")
            }
            KvError::UnknownSequence(id) => write!(f, "unknown sequence {id}"),
        }
    }
}

impl std::error::Error for KvError {}

/// Point-in-time snapshot of cache occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvStats {
    /// Total physical blocks.
    pub total_blocks: Blocks,
    /// Free physical blocks.
    pub free_blocks: Blocks,
    /// Blocks with at least one owner.
    pub used_blocks: Blocks,
    /// Sequences with live page tables.
    pub num_sequences: usize,
    /// Cumulative evictions since construction.
    pub preemptions: u64,
}

/// The unified KV cache manager shared by every pipeline stage.
#[derive(Debug, Clone)]
pub struct KvCacheManager {
    block_size: Tokens,
    allocator: BlockAllocator,
    tables: BTreeMap<SeqId, PageTable>,
    preemptions: u64,
}

impl KvCacheManager {
    /// A manager over `num_blocks` blocks of `block_size` tokens each.
    pub fn new(num_blocks: Blocks, block_size: Tokens) -> Self {
        assert!(!block_size.is_zero());
        Self {
            block_size,
            allocator: BlockAllocator::new(num_blocks),
            tables: BTreeMap::new(),
            preemptions: 0,
        }
    }

    /// A manager sized from a cluster's token capacity (as computed by
    /// `gllm_model::ClusterSpec`), rounding down to whole blocks.
    pub fn from_token_capacity(capacity_tokens: Tokens, block_size: Tokens) -> Self {
        let blocks = capacity_tokens.full_blocks(block_size).max(Blocks(1));
        Self::new(blocks, block_size)
    }

    /// Tokens per block.
    #[inline]
    pub fn block_size(&self) -> Tokens {
        self.block_size
    }

    /// Maximum tokens the cache can hold.
    pub fn token_capacity(&self) -> Tokens {
        self.allocator.num_total().to_tokens(self.block_size)
    }

    /// The paper's `KV_free ∈ [0, 1]`: fraction of blocks free.
    #[inline]
    pub fn free_rate(&self) -> f64 {
        self.allocator.free_rate()
    }

    /// Fraction of blocks in use (`1 − KV_free`).
    #[inline]
    pub fn utilization(&self) -> f64 {
        1.0 - self.free_rate()
    }

    /// Free blocks right now.
    pub fn free_blocks(&self) -> Blocks {
        self.allocator.num_free()
    }

    /// Whether `seq` has a live page table.
    pub fn contains(&self, seq: SeqId) -> bool {
        self.tables.contains_key(&seq)
    }

    /// Tokens cached for `seq` (0 when unknown).
    pub fn context_len(&self, seq: SeqId) -> Tokens {
        self.tables.get(&seq).map_or(Tokens::ZERO, |t| t.num_tokens())
    }

    /// Borrow a sequence's page table (for slot lookup by the transformer).
    pub fn table(&self, seq: SeqId) -> Option<&PageTable> {
        self.tables.get(&seq)
    }

    /// Blocks that appending `tokens` to `seq` would allocate.
    pub fn blocks_needed(&self, seq: SeqId, tokens: Tokens) -> Blocks {
        match self.tables.get(&seq) {
            Some(t) => t.blocks_needed_for(tokens),
            None => tokens.to_blocks(self.block_size),
        }
    }

    /// Whether appending `tokens` to `seq` would succeed right now.
    pub fn can_append(&self, seq: SeqId, tokens: Tokens) -> bool {
        self.blocks_needed(seq, tokens) <= self.allocator.num_free()
    }

    /// Maximum tokens appendable to `seq` right now: the slack in its last
    /// block plus every free block (the engine uses this to trim prefill
    /// chunks under KV pressure).
    pub fn max_appendable(&self, seq: SeqId) -> Tokens {
        let slack = self.tables.get(&seq).map_or(Tokens::ZERO, |t| t.slack());
        slack + self.allocator.num_free().to_tokens(self.block_size)
    }

    /// Append `tokens` slots to `seq`, allocating blocks as needed and
    /// creating the page table on first use. Atomic: on failure nothing is
    /// allocated.
    pub fn append(&mut self, seq: SeqId, tokens: Tokens) -> Result<(), KvError> {
        // Single map probe on the hot path: admission calls this once per
        // decode slot per micro-batch, so the existing-sequence branch must
        // not pay a second `entry` lookup after `blocks_needed`.
        if let Some(table) = self.tables.get_mut(&seq) {
            let needed = table.blocks_needed_for(tokens);
            if needed > self.allocator.num_free() {
                return Err(KvError::OutOfBlocks {
                    requested: needed,
                    available: self.allocator.num_free(),
                });
            }
            let new_blocks = self
                .allocator
                .allocate_many(needed)
                .expect("free-count checked above"); // lint:allow(panic-freedom): free count verified on the previous line, allocation cannot fail
            table.push_blocks(new_blocks);
            table.fill(tokens);
            return Ok(());
        }
        let needed = tokens.to_blocks(self.block_size);
        if needed > self.allocator.num_free() {
            return Err(KvError::OutOfBlocks {
                requested: needed,
                available: self.allocator.num_free(),
            });
        }
        let new_blocks = self
            .allocator
            .allocate_many(needed)
            .expect("free-count checked above"); // lint:allow(panic-freedom): free count verified on the previous line, allocation cannot fail
        let mut table = PageTable::new(self.block_size);
        table.push_blocks(new_blocks);
        table.fill(tokens);
        self.tables.insert(seq, table);
        Ok(())
    }

    /// Release every block owned by `seq` (normal completion).
    pub fn free(&mut self, seq: SeqId) -> Result<(), KvError> {
        let mut table = self.tables.remove(&seq).ok_or(KvError::UnknownSequence(seq))?;
        for b in table.take_blocks() {
            self.allocator.release(b);
        }
        Ok(())
    }

    /// Evict `seq` under memory pressure, returning the number of cached
    /// tokens that must be recomputed when the sequence is rescheduled
    /// (the paper's "premature preemption … causes costly recomputation
    /// time", §3.1.3).
    pub fn evict(&mut self, seq: SeqId) -> Result<Tokens, KvError> {
        let lost = self.context_len(seq);
        self.free(seq)?;
        self.preemptions += 1;
        Ok(lost)
    }

    /// Share the whole-block prefix of `parent` with `child` (prefix
    /// caching): every *full* block of the parent is retained and appended
    /// to the child's table. Returns the number of tokens shared.
    ///
    /// The child must not already exist.
    pub fn fork_prefix(&mut self, parent: SeqId, child: SeqId) -> Result<Tokens, KvError> {
        assert!(!self.tables.contains_key(&child), "child {child} already exists");
        let parent_table = self
            .tables
            .get(&parent)
            .ok_or(KvError::UnknownSequence(parent))?;
        let full_blocks = parent_table.num_tokens().full_blocks(self.block_size);
        let shared: Vec<BlockId> = parent_table.blocks()[..full_blocks.get()].to_vec();
        for &b in &shared {
            self.allocator.retain(b);
        }
        let mut table = PageTable::new(self.block_size);
        let tokens = full_blocks.to_tokens(self.block_size);
        table.push_blocks(shared);
        table.fill(tokens);
        self.tables.insert(child, table);
        Ok(tokens)
    }

    /// Whether the last block of `seq` is exclusively owned (safe to append
    /// into without copy-on-write).
    pub fn last_block_exclusive(&self, seq: SeqId) -> bool {
        self.tables
            .get(&seq)
            .and_then(|t| t.blocks().last())
            .is_none_or(|&b| self.allocator.is_exclusive(b))
    }

    /// Cumulative evictions.
    pub fn preemption_count(&self) -> u64 {
        self.preemptions
    }

    /// Occupancy snapshot.
    pub fn stats(&self) -> KvStats {
        KvStats {
            total_blocks: self.allocator.num_total(),
            free_blocks: self.allocator.num_free(),
            used_blocks: self.allocator.num_used(),
            num_sequences: self.tables.len(),
            preemptions: self.preemptions,
        }
    }

    /// Ids of all live sequences, in ascending order (the table is a
    /// `BTreeMap`, so iteration is deterministic by construction).
    pub fn live_sequences(&self) -> Vec<SeqId> {
        self.tables.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mgr(blocks: usize, block_size: usize) -> KvCacheManager {
        KvCacheManager::new(Blocks(blocks), Tokens(block_size))
    }

    #[test]
    fn append_allocates_only_needed_blocks() {
        let mut m = mgr(10, 16);
        m.append(1, Tokens(17)).unwrap();
        assert_eq!(m.free_blocks(), Blocks(8));
        // 15 more tokens fit in the second block's slack.
        m.append(1, Tokens(15)).unwrap();
        assert_eq!(m.free_blocks(), Blocks(8));
        m.append(1, Tokens(1)).unwrap();
        assert_eq!(m.free_blocks(), Blocks(7));
        assert_eq!(m.context_len(1), Tokens(33));
    }

    #[test]
    fn failed_append_is_atomic() {
        let mut m = mgr(2, 16);
        m.append(1, Tokens(16)).unwrap();
        let err = m.append(2, Tokens(33)).unwrap_err();
        assert_eq!(
            err,
            KvError::OutOfBlocks { requested: Blocks(3), available: Blocks(1) }
        );
        assert_eq!(m.free_blocks(), Blocks(1));
        assert!(!m.contains(2));
    }

    #[test]
    fn free_returns_all_blocks() {
        let mut m = mgr(4, 4);
        m.append(7, Tokens(13)).unwrap();
        assert_eq!(m.free_blocks(), Blocks(0));
        m.free(7).unwrap();
        assert_eq!(m.free_blocks(), Blocks(4));
        assert_eq!(m.free_rate(), 1.0);
        assert!(matches!(m.free(7), Err(KvError::UnknownSequence(7))));
    }

    #[test]
    fn evict_counts_preemptions_and_reports_lost_tokens() {
        let mut m = mgr(4, 4);
        m.append(1, Tokens(10)).unwrap();
        assert_eq!(m.evict(1).unwrap(), Tokens(10));
        assert_eq!(m.preemption_count(), 1);
        assert_eq!(m.free_blocks(), Blocks(4));
    }

    #[test]
    fn can_append_predicts_append() {
        let mut m = mgr(2, 8);
        assert!(m.can_append(1, Tokens(16)));
        assert!(!m.can_append(1, Tokens(17)));
        m.append(1, Tokens(16)).unwrap();
        assert!(m.can_append(1, Tokens(0)));
        assert!(!m.can_append(1, Tokens(1)));
    }

    #[test]
    fn fork_shares_full_blocks_only() {
        let mut m = mgr(8, 4);
        m.append(1, Tokens(10)).unwrap(); // 3 blocks, last partially filled
        let shared = m.fork_prefix(1, 2).unwrap();
        assert_eq!(shared, Tokens(8));
        assert_eq!(m.context_len(2), Tokens(8));
        // Only 3 blocks total allocated; 2 shared + 1 exclusive to parent.
        assert_eq!(m.stats().used_blocks, Blocks(3));
        assert!(!m.last_block_exclusive(2));
        // Freeing the parent keeps the shared blocks alive.
        m.free(1).unwrap();
        assert_eq!(m.stats().used_blocks, Blocks(2));
        assert_eq!(m.context_len(2), Tokens(8));
        m.free(2).unwrap();
        assert_eq!(m.free_blocks(), Blocks(8));
    }

    #[test]
    fn token_capacity_and_sizing_helpers() {
        let m = KvCacheManager::from_token_capacity(Tokens(1000), Tokens(16));
        assert_eq!(m.token_capacity(), Tokens(62 * 16));
        assert_eq!(m.block_size(), Tokens(16));
    }

    #[test]
    fn live_sequences_sorted() {
        let mut m = mgr(8, 4);
        m.append(5, Tokens(1)).unwrap();
        m.append(2, Tokens(1)).unwrap();
        m.append(9, Tokens(1)).unwrap();
        assert_eq!(m.live_sequences(), vec![2, 5, 9]);
    }

    proptest! {
        /// Random append/free workloads never leak or double-count blocks,
        /// and `can_append` never lies.
        #[test]
        fn no_leaks_under_random_workload(
            ops in proptest::collection::vec((0u8..3, 0u64..6, 1usize..40), 1..300)
        ) {
            let mut m = mgr(32, 8);
            for (op, seq, tokens) in ops {
                match op {
                    0 => {
                        let fits = m.can_append(seq, Tokens(tokens));
                        let res = m.append(seq, Tokens(tokens));
                        prop_assert_eq!(fits, res.is_ok());
                    }
                    1 => { let _ = m.free(seq); }
                    _ => { let _ = m.evict(seq); }
                }
                let s = m.stats();
                prop_assert_eq!(s.free_blocks + s.used_blocks, s.total_blocks);
                let live_tokens: Tokens =
                    m.live_sequences().iter().map(|&s| m.context_len(s)).sum();
                // Every live token occupies a slot in some used block.
                prop_assert!(live_tokens <= s.used_blocks.to_tokens(m.block_size()));
            }
            for seq in m.live_sequences() {
                m.free(seq).unwrap();
            }
            prop_assert_eq!(m.free_rate(), 1.0);
        }
    }
}
