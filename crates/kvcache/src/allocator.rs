//! Reference-counted physical block allocator.
//!
//! Physical KV blocks are identified by dense [`BlockId`]s so the real
//! transformer can index a flat tensor with them. Reference counting lets
//! multiple sequences share prefix blocks (the prefix-caching feature the
//! paper lists among its integrated optimizations in §3.4); a block returns
//! to the free list only when its last owner releases it.

use gllm_units::Blocks;
use serde::{Deserialize, Serialize};

/// Index of one physical KV block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The dense index, for slot arithmetic.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Free-list allocator over a fixed pool of blocks with per-block reference
/// counts.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    ref_counts: Vec<u32>,
    free_list: Vec<BlockId>,
}

impl BlockAllocator {
    /// An allocator over `num_blocks` physical blocks, all initially free.
    pub fn new(num_blocks: Blocks) -> Self {
        let n = num_blocks.get();
        assert!(n > 0, "KV cache must have at least one block");
        assert!(n <= u32::MAX as usize, "block pool too large");
        Self {
            ref_counts: vec![0; n],
            // Pop from the back; reversed so low ids are handed out first,
            // which makes tests and traces easier to read.
            free_list: (0..n as u32).rev().map(BlockId).collect(),
        }
    }

    /// Total blocks in the pool.
    #[inline]
    pub fn num_total(&self) -> Blocks {
        Blocks(self.ref_counts.len())
    }

    /// Blocks currently free.
    #[inline]
    pub fn num_free(&self) -> Blocks {
        Blocks(self.free_list.len())
    }

    /// Blocks with at least one owner.
    #[inline]
    pub fn num_used(&self) -> Blocks {
        self.num_total() - self.num_free()
    }

    /// Fraction of the pool that is free — the paper's `KV_free ∈ [0, 1]`.
    #[inline]
    pub fn free_rate(&self) -> f64 {
        self.num_free().get() as f64 / self.num_total().get() as f64
    }

    /// Allocate one block with reference count 1, or `None` if exhausted.
    pub fn allocate(&mut self) -> Option<BlockId> {
        let id = self.free_list.pop()?;
        debug_assert_eq!(self.ref_counts[id.index()], 0);
        self.ref_counts[id.index()] = 1;
        Some(id)
    }

    /// Allocate `n` blocks atomically: either all succeed or none are taken.
    pub fn allocate_many(&mut self, n: Blocks) -> Option<Vec<BlockId>> {
        if self.num_free() < n {
            return None;
        }
        (0..n.get()).map(|_| self.allocate()).collect()
    }

    /// Add one owner to an allocated block (prefix sharing).
    pub fn retain(&mut self, id: BlockId) {
        let rc = &mut self.ref_counts[id.index()];
        assert!(*rc > 0, "retain of a free block {id:?}");
        *rc += 1;
    }

    /// Drop one owner; the block returns to the free list when the count
    /// reaches zero.
    pub fn release(&mut self, id: BlockId) {
        let rc = &mut self.ref_counts[id.index()];
        assert!(*rc > 0, "double free of block {id:?}");
        *rc -= 1;
        if *rc == 0 {
            self.free_list.push(id);
        }
    }

    /// Current owner count of a block.
    pub fn ref_count(&self, id: BlockId) -> u32 {
        self.ref_counts[id.index()]
    }

    /// Whether a block has exactly one owner (safe to write in place).
    pub fn is_exclusive(&self, id: BlockId) -> bool {
        self.ref_counts[id.index()] == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocates_all_blocks_then_fails() {
        let mut a = BlockAllocator::new(Blocks(4));
        let got: Vec<_> = (0..4).map(|_| a.allocate().unwrap()).collect();
        assert_eq!(got.len(), 4);
        assert!(a.allocate().is_none());
        assert_eq!(a.free_rate(), 0.0);
    }

    #[test]
    fn release_returns_block_to_pool() {
        let mut a = BlockAllocator::new(Blocks(2));
        let b = a.allocate().unwrap();
        a.release(b);
        assert_eq!(a.num_free(), Blocks(2));
        assert_eq!(a.free_rate(), 1.0);
    }

    #[test]
    fn allocate_many_is_atomic() {
        let mut a = BlockAllocator::new(Blocks(3));
        let _held = a.allocate().unwrap();
        assert!(a.allocate_many(Blocks(3)).is_none());
        assert_eq!(a.num_free(), Blocks(2), "failed bulk allocation must not leak");
        assert!(a.allocate_many(Blocks(2)).is_some());
    }

    #[test]
    fn shared_block_survives_first_release() {
        let mut a = BlockAllocator::new(Blocks(1));
        let b = a.allocate().unwrap();
        a.retain(b);
        assert_eq!(a.ref_count(b), 2);
        assert!(!a.is_exclusive(b));
        a.release(b);
        assert_eq!(a.num_free(), Blocks(0));
        a.release(b);
        assert_eq!(a.num_free(), Blocks(1));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BlockAllocator::new(Blocks(1));
        let b = a.allocate().unwrap();
        a.release(b);
        a.release(b);
    }

    #[test]
    #[should_panic(expected = "retain of a free block")]
    fn retain_of_free_block_panics() {
        let mut a = BlockAllocator::new(Blocks(1));
        a.retain(BlockId(0));
    }

    proptest! {
        /// Any interleaving of allocations and releases conserves blocks:
        /// free + used == total, and re-allocating freed blocks always
        /// succeeds.
        #[test]
        fn conservation_under_random_ops(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut a = BlockAllocator::new(Blocks(16));
            let mut held: Vec<BlockId> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        if let Some(b) = a.allocate() {
                            held.push(b);
                        } else {
                            prop_assert_eq!(a.num_free(), Blocks(0));
                        }
                    }
                    1 => {
                        if let Some(b) = held.pop() {
                            a.release(b);
                        }
                    }
                    _ => {
                        if let Some(&b) = held.first() {
                            a.retain(b);
                            held.push(b);
                        }
                    }
                }
                prop_assert_eq!(a.num_free() + a.num_used(), a.num_total());
                prop_assert!((0.0..=1.0).contains(&a.free_rate()));
            }
            for b in held {
                a.release(b);
            }
            prop_assert_eq!(a.num_free(), Blocks(16));
        }
    }
}
