//! Replay of real Azure LLM inference traces.
//!
//! The paper's Azure workload comes from
//! `AzureLLMInferenceTrace_conv.csv` (arrival timestamp, context tokens,
//! generated tokens). When a real trace file is available, this loader
//! turns it into a [`Trace`] directly — the synthetic Azure-like generator
//! is only the fallback for offline reproduction.
//!
//! Accepted shapes (header names are matched case-insensitively by
//! substring, so both the public dataset's `TIMESTAMP,ContextTokens,
//! GeneratedTokens` and simplified `arrival,input,output` files work):
//!
//! ```csv
//! TIMESTAMP,ContextTokens,GeneratedTokens
//! 2023-11-16 18:21:01.773,374,60
//! ```
//!
//! or with numeric arrival seconds:
//!
//! ```csv
//! arrival_s,input_tokens,output_tokens
//! 0.55,374,60
//! ```

use crate::request::Request;
use crate::trace::Trace;

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for the header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

/// Parse a wall-clock timestamp (`YYYY-MM-DD HH:MM:SS[.fff]`) into seconds
/// since midnight of its day — only *differences* matter, and Azure's
/// public conversation trace spans a single day.
fn timestamp_seconds(s: &str, line: usize) -> Result<f64, ParseError> {
    let time = s
        .split_whitespace()
        .nth(1)
        .ok_or_else(|| err(line, format!("expected 'date time', got {s:?}")))?;
    let mut parts = time.split(':');
    let (h, m, sec) = match (parts.next(), parts.next(), parts.next()) {
        (Some(h), Some(m), Some(sec)) => (h, m, sec),
        _ => return Err(err(line, format!("bad time of day {time:?}"))),
    };
    let h: f64 = h.parse().map_err(|_| err(line, "bad hour"))?;
    let m: f64 = m.parse().map_err(|_| err(line, "bad minute"))?;
    let sec: f64 = sec.parse().map_err(|_| err(line, "bad second"))?;
    Ok(h * 3600.0 + m * 60.0 + sec)
}

/// Parse an Azure-style CSV into a trace. Arrivals are shifted so the
/// first request lands at t = 0 and re-sorted; ids are assigned densely in
/// arrival order. Rows with zero tokens are clamped to 1 (the serving
/// system needs at least one prompt and one output token).
pub fn parse_azure_csv(content: &str) -> Result<Trace, ParseError> {
    let mut lines = content.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty file"))?;
    let cols: Vec<String> = header.split(',').map(|c| c.trim().to_ascii_lowercase()).collect();
    let find = |names: &[&str]| -> Option<usize> {
        cols.iter().position(|c| names.iter().any(|n| c.contains(n)))
    };
    let t_col = find(&["timestamp", "arrival"])
        .ok_or_else(|| err(0, format!("no timestamp/arrival column in {header:?}")))?;
    let in_col = find(&["context", "input", "prompt"])
        .ok_or_else(|| err(0, format!("no context/input column in {header:?}")))?;
    let out_col = find(&["generated", "output"])
        .ok_or_else(|| err(0, format!("no generated/output column in {header:?}")))?;

    let mut rows: Vec<(f64, usize, usize)> = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split(',').map(str::trim).collect();
        let need = t_col.max(in_col).max(out_col);
        if fields.len() <= need {
            return Err(err(line_no, format!("expected >= {} columns", need + 1)));
        }
        let t_raw = fields[t_col];
        let arrival = match t_raw.parse::<f64>() {
            Ok(v) => v,
            Err(_) => timestamp_seconds(t_raw, line_no)?,
        };
        let input: usize = fields[in_col]
            .parse()
            .map_err(|_| err(line_no, format!("bad input tokens {:?}", fields[in_col])))?;
        let output: usize = fields[out_col]
            .parse()
            .map_err(|_| err(line_no, format!("bad output tokens {:?}", fields[out_col])))?;
        rows.push((arrival, input.max(1), output.max(1)));
    }
    if rows.is_empty() {
        return Err(err(0, "no data rows"));
    }
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let t0 = rows[0].0;
    let requests = rows
        .into_iter()
        .enumerate()
        .map(|(id, (t, input, output))| Request {
            id: id as u64,
            arrival_s: t - t0,
            prompt_len: input,
            output_len: output,
        })
        .collect();
    Ok(Trace { requests })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_public_dataset_shape() {
        let csv = "TIMESTAMP,ContextTokens,GeneratedTokens\n\
                   2023-11-16 18:21:01.500,374,60\n\
                   2023-11-16 18:21:03.250,120,15\n";
        let t = parse_azure_csv(csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests[0].arrival_s, 0.0);
        assert!((t.requests[1].arrival_s - 1.75).abs() < 1e-9);
        assert_eq!(t.requests[0].prompt_len, 374);
        assert_eq!(t.requests[1].output_len, 15);
    }

    #[test]
    fn parses_numeric_arrivals_and_reorders() {
        let csv = "arrival_s,input_tokens,output_tokens\n3.0,10,5\n1.0,20,6\n";
        let t = parse_azure_csv(csv).unwrap();
        assert_eq!(t.requests[0].prompt_len, 20, "sorted by arrival");
        assert_eq!(t.requests[0].id, 0);
        assert_eq!(t.requests[1].arrival_s, 2.0);
    }

    #[test]
    fn zero_token_rows_are_clamped() {
        let csv = "arrival,input,output\n0,0,0\n";
        let t = parse_azure_csv(csv).unwrap();
        assert_eq!(t.requests[0].prompt_len, 1);
        assert_eq!(t.requests[0].output_len, 1);
    }

    #[test]
    fn helpful_errors_for_bad_input() {
        assert!(parse_azure_csv("").unwrap_err().message.contains("empty"));
        assert!(parse_azure_csv("a,b,c\n").unwrap_err().message.contains("timestamp"));
        let e = parse_azure_csv("arrival,input,output\n1.0,x,2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad input tokens"));
        let e = parse_azure_csv("arrival,input,output\n1.0,2\n").unwrap_err();
        assert!(e.message.contains("columns"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "arrival,input,output\n0,5,5\n\n1,6,6\n";
        assert_eq!(parse_azure_csv(csv).unwrap().len(), 2);
    }
}
