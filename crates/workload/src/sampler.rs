//! Length distributions fit to the paper's Figure 11.
//!
//! Real ShareGPT and Azure traces are unavailable offline, so input/output
//! lengths are drawn from truncated log-normal distributions — the standard
//! parametric family for LLM request lengths — calibrated so that the
//! Azure-like dataset's mean input is ≈5.21× and mean output ≈1.66× the
//! ShareGPT-like dataset's, the exact ratios the paper reports for its
//! sampled datasets.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A truncated length distribution over token counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LengthDistribution {
    /// Log-normal with location `mu` and scale `sigma`, clamped to
    /// `[min, max]`.
    LogNormal {
        /// Location parameter (of the underlying normal).
        mu: f64,
        /// Scale parameter (of the underlying normal).
        sigma: f64,
        /// Minimum length after clamping.
        min: usize,
        /// Maximum length after clamping.
        max: usize,
    },
    /// Every request has exactly this length (for controlled experiments).
    Fixed(usize),
    /// Uniform over `[min, max]` inclusive.
    Uniform {
        /// Lower bound.
        min: usize,
        /// Upper bound (inclusive).
        max: usize,
    },
}

impl LengthDistribution {
    /// Draw one length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            LengthDistribution::LogNormal { mu, sigma, min, max } => {
                let d = LogNormal::new(mu, sigma).expect("sigma > 0");
                (d.sample(rng).round() as usize).clamp(min, max)
            }
            LengthDistribution::Fixed(n) => n,
            LengthDistribution::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }

    /// The distribution's support maximum (used for capacity sanity checks).
    pub fn max_len(&self) -> usize {
        match *self {
            LengthDistribution::LogNormal { max, .. } => max,
            LengthDistribution::Fixed(n) => n,
            LengthDistribution::Uniform { max, .. } => max,
        }
    }
}

/// The two datasets the paper replays, plus a fixed-shape control and a
/// fully custom variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dataset {
    /// ShareGPT-like: short chatty prompts, moderate outputs.
    ShareGpt,
    /// Azure-like: production trace with 5.21× longer inputs and 1.66×
    /// longer outputs than ShareGPT (paper §4.1, Fig. 11).
    Azure,
    /// Fixed prompt/output lengths (controlled experiments and tests).
    Fixed {
        /// Prompt length of every request.
        prompt: usize,
        /// Output length of every request.
        output: usize,
    },
    /// Arbitrary user-supplied length distributions (extension studies,
    /// e.g. long-context workloads).
    Custom {
        /// Prompt length distribution.
        input: LengthDistribution,
        /// Output length distribution.
        output: LengthDistribution,
    },
}

impl Dataset {
    /// Input (prompt) length distribution.
    pub fn input_distribution(&self) -> LengthDistribution {
        match *self {
            // Mean ≈ 220 tokens.
            Dataset::ShareGpt => LengthDistribution::LogNormal {
                mu: 4.89,
                sigma: 1.0,
                min: 4,
                max: 4096,
            },
            // Mean ≈ 5.21 × ShareGPT.
            Dataset::Azure => LengthDistribution::LogNormal {
                mu: 6.60,
                sigma: 0.95,
                min: 16,
                max: 8192,
            },
            Dataset::Fixed { prompt, .. } => LengthDistribution::Fixed(prompt),
            Dataset::Custom { input, .. } => input,
        }
    }

    /// Output length distribution.
    pub fn output_distribution(&self) -> LengthDistribution {
        match *self {
            // Mean ≈ 180 tokens.
            Dataset::ShareGpt => LengthDistribution::LogNormal {
                mu: 4.87,
                sigma: 0.8,
                min: 2,
                max: 2048,
            },
            // Mean ≈ 1.66 × ShareGPT.
            Dataset::Azure => LengthDistribution::LogNormal {
                mu: 5.45,
                sigma: 0.7,
                min: 2,
                max: 2048,
            },
            Dataset::Fixed { output, .. } => LengthDistribution::Fixed(output),
            Dataset::Custom { output, .. } => output,
        }
    }

    /// Short name used in bench output rows.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::ShareGpt => "sharegpt",
            Dataset::Azure => "azure",
            Dataset::Fixed { .. } => "fixed",
            Dataset::Custom { .. } => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(d: LengthDistribution, seed: u64, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn sharegpt_means_are_chat_scale() {
        let input = empirical_mean(Dataset::ShareGpt.input_distribution(), 1, 50_000);
        let output = empirical_mean(Dataset::ShareGpt.output_distribution(), 2, 50_000);
        assert!((120.0..350.0).contains(&input), "input mean {input}");
        assert!((120.0..280.0).contains(&output), "output mean {output}");
    }

    #[test]
    fn azure_ratios_match_paper() {
        // Paper: Azure has 5.21× longer inputs and 1.66× longer outputs.
        let si = empirical_mean(Dataset::ShareGpt.input_distribution(), 3, 50_000);
        let ai = empirical_mean(Dataset::Azure.input_distribution(), 4, 50_000);
        let so = empirical_mean(Dataset::ShareGpt.output_distribution(), 5, 50_000);
        let ao = empirical_mean(Dataset::Azure.output_distribution(), 6, 50_000);
        let in_ratio = ai / si;
        let out_ratio = ao / so;
        assert!((4.2..6.2).contains(&in_ratio), "input ratio {in_ratio}");
        assert!((1.3..2.0).contains(&out_ratio), "output ratio {out_ratio}");
    }

    #[test]
    fn samples_respect_truncation() {
        let d = Dataset::Azure.input_distribution();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((16..=8192).contains(&s));
        }
    }

    #[test]
    fn fixed_dataset_is_degenerate() {
        let d = Dataset::Fixed { prompt: 100, output: 20 };
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.input_distribution().sample(&mut rng), 100);
        assert_eq!(d.output_distribution().sample(&mut rng), 20);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = LengthDistribution::Uniform { min: 5, max: 9 };
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!((5..=9).contains(&d.sample(&mut rng)));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Dataset::ShareGpt.input_distribution();
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
