//! Request arrival processes.
//!
//! The paper mimics cloud serving by generating arrival times from a
//! Poisson process at a configurable request rate (§4.1), sending requests
//! for a fixed 128-second window. A deterministic uniform process and a
//! bursty process are also provided for controlled experiments (the bursty
//! one reproduces the "requests arrive, then the system drains" pattern of
//! Figure 4).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How request arrival times are generated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival gaps at `rate` requests/second.
    Poisson {
        /// Mean request rate (requests per second).
        rate: f64,
    },
    /// Evenly spaced arrivals at `rate` requests/second.
    Uniform {
        /// Request rate (requests per second).
        rate: f64,
    },
    /// All requests arrive at time zero (offline / batch scenario).
    Burst,
}

impl ArrivalProcess {
    /// Generate arrival times (sorted, seconds) over a `duration_s` window.
    ///
    /// For [`ArrivalProcess::Burst`], `expected` arrivals are emitted at
    /// t = 0; for the rate-driven processes the count is whatever falls in
    /// the window (`expected` is ignored).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        expected: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        match *self {
            ArrivalProcess::Poisson { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                let mut t = 0.0;
                let mut out = Vec::with_capacity((rate * duration_s) as usize + 16);
                loop {
                    // Inverse-CDF exponential gap; `gen` is in [0, 1), so
                    // guard the log argument away from zero.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    t += -u.ln() / rate;
                    if t >= duration_s {
                        break;
                    }
                    out.push(t);
                }
                out
            }
            ArrivalProcess::Uniform { rate } => {
                assert!(rate > 0.0, "rate must be positive");
                let n = (rate * duration_s).floor() as usize;
                (0..n).map(|i| i as f64 / rate).collect()
            }
            ArrivalProcess::Burst => vec![0.0; expected],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_count_is_near_rate_times_duration() {
        let mut rng = StdRng::seed_from_u64(7);
        let arrivals = ArrivalProcess::Poisson { rate: 10.0 }.generate(128.0, 0, &mut rng);
        let n = arrivals.len() as f64;
        // 1280 expected, std ≈ 36; allow 5σ.
        assert!((1100.0..1460.0).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn arrivals_are_sorted_and_in_window() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = ArrivalProcess::Poisson { rate: 5.0 }.generate(60.0, 0, &mut rng);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| (0.0..60.0).contains(&t)));
    }

    #[test]
    fn uniform_spacing_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = ArrivalProcess::Uniform { rate: 4.0 }.generate(2.0, 0, &mut rng);
        assert_eq!(a, vec![0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75]);
    }

    #[test]
    fn burst_emits_expected_count_at_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = ArrivalProcess::Burst.generate(100.0, 5, &mut rng);
        assert_eq!(a, vec![0.0; 5]);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            ArrivalProcess::Poisson { rate: 2.0 }.generate(30.0, 0, &mut rng)
        };
        assert_eq!(gen(11), gen(11));
        assert_ne!(gen(11), gen(12));
    }
}
