//! The unit of work: one serving request.

use serde::{Deserialize, Serialize};

/// One LLM serving request: a prompt of `prompt_len` tokens arriving at
/// `arrival_s`, generating `output_len` tokens before terminating.
///
/// The output length is fixed by the trace (as in the paper's replay
/// methodology, where the benchmark requests exactly the trace's output
/// size); the serving system does not know it in advance and discovers
/// termination one token at a time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique, dense request id (also used as the KV sequence id).
    pub id: u64,
    /// Arrival time in seconds from the start of the experiment.
    pub arrival_s: f64,
    /// Prompt length in tokens (≥ 1).
    pub prompt_len: usize,
    /// Number of output tokens to generate (≥ 1; the first is produced by
    /// the prefill's final chunk).
    pub output_len: usize,
}

impl Request {
    /// Total tokens this request will ever put in the KV cache.
    pub fn total_tokens(&self) -> usize {
        self.prompt_len + self.output_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tokens_adds_prompt_and_output() {
        let r = Request { id: 0, arrival_s: 0.0, prompt_len: 10, output_len: 5 };
        assert_eq!(r.total_tokens(), 15);
    }

    #[test]
    fn serde_round_trip() {
        let r = Request { id: 3, arrival_s: 1.25, prompt_len: 7, output_len: 9 };
        let s = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&s).unwrap(), r);
    }
}
