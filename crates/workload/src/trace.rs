//! Trace synthesis and serialisation.
//!
//! A [`Trace`] is the full input to one serving experiment: a sorted list of
//! [`Request`]s. The paper's methodology fixes the request-sending duration
//! at 128 seconds and derives the prompt count from `rate × duration`
//! (artifact appendix); [`Trace::synthesize`] mirrors that.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::arrivals::ArrivalProcess;
use crate::request::Request;
use crate::sampler::Dataset;
use crate::stats::mean;

/// The paper's fixed request-sending window (seconds).
pub const PAPER_SEND_WINDOW_S: f64 = 128.0;

/// A complete, replayable serving workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Requests sorted by arrival time, ids dense from 0.
    pub requests: Vec<Request>,
}

/// Aggregate statistics of a trace (for Fig. 11-style reporting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of requests.
    pub count: usize,
    /// Mean prompt length (tokens).
    pub mean_input: f64,
    /// Mean output length (tokens).
    pub mean_output: f64,
    /// Total prompt + output tokens across the trace.
    pub total_tokens: usize,
    /// Duration from first to last arrival (seconds).
    pub span_s: f64,
}

impl Trace {
    /// Synthesize a trace: lengths from `dataset`, arrival times from
    /// `arrivals` over `duration_s`. Fully determined by `seed`.
    ///
    /// `expected` bounds the request count for [`ArrivalProcess::Burst`];
    /// rate-driven processes ignore it.
    pub fn synthesize(
        dataset: Dataset,
        arrivals: ArrivalProcess,
        duration_s: f64,
        expected: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let times = arrivals.generate(duration_s, expected, &mut rng);
        let input = dataset.input_distribution();
        let output = dataset.output_distribution();
        let requests = times
            .into_iter()
            .enumerate()
            .map(|(i, t)| Request {
                id: i as u64,
                arrival_s: t,
                prompt_len: input.sample(&mut rng),
                output_len: output.sample(&mut rng),
            })
            .collect();
        Self { requests }
    }

    /// The paper's standard online workload: Poisson arrivals at `rate`
    /// req/s over the 128-second send window.
    pub fn paper_online(dataset: Dataset, rate: f64, seed: u64) -> Self {
        Self::synthesize(
            dataset,
            ArrivalProcess::Poisson { rate },
            PAPER_SEND_WINDOW_S,
            0,
            seed,
        )
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Aggregate statistics.
    pub fn summary(&self) -> TraceSummary {
        let inputs: Vec<f64> = self.requests.iter().map(|r| r.prompt_len as f64).collect();
        let outputs: Vec<f64> = self.requests.iter().map(|r| r.output_len as f64).collect();
        let span_s = match (self.requests.first(), self.requests.last()) {
            (Some(f), Some(l)) => l.arrival_s - f.arrival_s,
            _ => 0.0,
        };
        TraceSummary {
            count: self.len(),
            mean_input: mean(&inputs),
            mean_output: mean(&outputs),
            total_tokens: self.requests.iter().map(|r| r.total_tokens()).sum(),
            span_s,
        }
    }

    /// Serialise to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialisation cannot fail")
    }

    /// Deserialise from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic() {
        let a = Trace::paper_online(Dataset::ShareGpt, 4.0, 99);
        let b = Trace::paper_online(Dataset::ShareGpt, 4.0, 99);
        assert_eq!(a, b);
        let c = Trace::paper_online(Dataset::ShareGpt, 4.0, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn request_ids_are_dense_and_arrivals_sorted() {
        let t = Trace::paper_online(Dataset::Azure, 2.0, 1);
        for (i, r) in t.requests.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        assert!(t.requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    }

    #[test]
    fn paper_window_yields_rate_times_duration_requests() {
        let t = Trace::paper_online(Dataset::ShareGpt, 8.0, 5);
        let n = t.len() as f64;
        assert!((850.0..1200.0).contains(&n), "got {n}");
    }

    #[test]
    fn burst_trace_has_expected_count() {
        let t = Trace::synthesize(
            Dataset::Fixed { prompt: 100, output: 10 },
            ArrivalProcess::Burst,
            1.0,
            32,
            0,
        );
        assert_eq!(t.len(), 32);
        assert!(t.requests.iter().all(|r| r.arrival_s == 0.0));
        assert_eq!(t.summary().total_tokens, 32 * 110);
    }

    #[test]
    fn summary_reflects_dataset_scale() {
        let s = Trace::paper_online(Dataset::Azure, 4.0, 3).summary();
        let g = Trace::paper_online(Dataset::ShareGpt, 4.0, 3).summary();
        assert!(s.mean_input > 3.0 * g.mean_input);
        assert!(s.mean_output > g.mean_output);
        assert!(s.span_s <= PAPER_SEND_WINDOW_S);
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::paper_online(Dataset::ShareGpt, 1.0, 0);
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }
}
