//! Small statistics helpers shared by the workload and bench crates.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Linear-interpolated percentile; 0 for an empty slice. `p` is clamped
/// to `[0, 100]` (out-of-range requests — including NaN, which clamps to
/// 0 — yield the nearest endpoint instead of indexing out of bounds).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A [`histogram`] request that cannot describe any bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramConfigError {
    /// `bins` was zero: no bucket can receive anything.
    ZeroBins,
    /// `max <= min`: the range spans no width to divide into buckets.
    EmptyRange {
        /// Requested lower edge.
        min: usize,
        /// Requested upper edge.
        max: usize,
    },
}

impl std::fmt::Display for HistogramConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistogramConfigError::ZeroBins => write!(f, "histogram needs at least one bin"),
            HistogramConfigError::EmptyRange { min, max } => {
                write!(f, "histogram range [{min}, {max}) is empty")
            }
        }
    }
}

impl std::error::Error for HistogramConfigError {}

/// Histogram of `values` over `bins` equal-width buckets spanning
/// `[min, max)`; values outside the range clamp to the edge buckets.
/// Returns `(bucket_lower_edges, counts)`, or a typed error for a
/// degenerate request (`bins == 0` or `max <= min`) instead of aborting.
pub fn histogram(
    values: &[usize],
    bins: usize,
    min: usize,
    max: usize,
) -> Result<(Vec<f64>, Vec<usize>), HistogramConfigError> {
    if bins == 0 {
        return Err(HistogramConfigError::ZeroBins);
    }
    if max <= min {
        return Err(HistogramConfigError::EmptyRange { min, max });
    }
    let width = (max - min) as f64 / bins as f64;
    let edges: Vec<f64> = (0..bins).map(|i| min as f64 + i as f64 * width).collect();
    let mut counts = vec![0usize; bins];
    for &v in values {
        let idx = (((v.saturating_sub(min)) as f64 / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    Ok((edges, counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 25.0), 2.5);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        // Regression: p > 100 used to index sorted[len] out of bounds.
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, 150.0), 3.0);
        assert_eq!(percentile(&xs, -25.0), 1.0);
        assert_eq!(percentile(&xs, f64::NAN), 1.0, "NaN clamps to the low endpoint");
    }

    #[test]
    fn histogram_counts_everything_once() {
        let vals = [0usize, 5, 10, 99, 100, 250];
        let (edges, counts) = histogram(&vals, 10, 0, 100).expect("valid request");
        assert_eq!(edges.len(), 10);
        assert_eq!(counts.iter().sum::<usize>(), vals.len());
        // 100 and 250 clamp into the last bucket.
        assert_eq!(counts[9], 3);
    }

    #[test]
    fn histogram_rejects_degenerate_requests() {
        assert_eq!(histogram(&[1, 2], 0, 0, 10), Err(HistogramConfigError::ZeroBins));
        assert_eq!(
            histogram(&[1, 2], 4, 10, 10),
            Err(HistogramConfigError::EmptyRange { min: 10, max: 10 })
        );
        assert_eq!(
            histogram(&[1, 2], 4, 10, 3),
            Err(HistogramConfigError::EmptyRange { min: 10, max: 3 })
        );
        let msg = HistogramConfigError::EmptyRange { min: 10, max: 3 }.to_string();
        assert!(msg.contains("[10, 3)"), "got: {msg}");
    }
}
