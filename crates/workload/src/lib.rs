//! Synthetic LLM serving workloads.
//!
//! The paper evaluates on two real traces: ShareGPT (user conversations with
//! ChatGPT) and an Azure LLM-inference production trace, replayed at Poisson
//! arrival times over a fixed 128-second send window (§4.1 and artifact
//! appendix). Neither dataset ships with this reproduction, so this crate
//! synthesizes workloads whose *length marginals* match the paper's
//! Figure 11: log-normal input/output lengths, with the Azure-like
//! distribution having 5.21× longer inputs and 1.66× longer outputs on
//! average than the ShareGPT-like one.
//!
//! Everything is seeded and deterministic: the same `(dataset, rate, seed)`
//! triple always yields the same trace, so comparisons between systems run
//! on paired workloads.

pub mod arrivals;
pub mod azure_csv;
pub mod request;
pub mod sampler;
pub mod stats;
pub mod trace;

pub use arrivals::ArrivalProcess;
pub use azure_csv::parse_azure_csv;
pub use request::Request;
pub use sampler::{Dataset, LengthDistribution};
pub use stats::{histogram, mean, percentile, HistogramConfigError};
pub use trace::{Trace, TraceSummary};
