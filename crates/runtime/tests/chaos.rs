//! Chaos suite: seeded fault injection against the threaded pipeline
//! runtime.
//!
//! The contract under test (ISSUE 5 / DESIGN §10): for every recoverable
//! fault — a killed stage worker, a dropped or delayed activation, a KV
//! reservation failure within the retry budget — the recovered run's
//! outputs are **bit-identical** to the fault-free run's. Unrecoverable
//! faults (KV failures past the budget) degrade to a structured
//! [`StreamEvent::Failed`] rejection of the victim while every other
//! request still completes bit-identically. In neither case may the
//! runtime panic or stall indefinitely, and every injected fault and
//! recovery must be visible in the audit counters and the pipeline trace.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use gllm_core::throttle::TokenThrottle;
use gllm_core::SchedulePolicy;
use gllm_runtime::driver::DriverOutput;
use gllm_runtime::{FaultPlan, GenRequest, RuntimeConfig, Server};
use gllm_transformer::sampler::SamplingParams;

fn req(id: u64, prompt: Vec<u32>, max_new: usize) -> GenRequest {
    GenRequest { id, prompt, max_new, params: SamplingParams::greedy() }
}

/// A deterministic mixed workload: varying prompt lengths and output
/// budgets so multi-batch pipelines build up real in-flight state.
fn workload(n: u64) -> Vec<GenRequest> {
    (0..n)
        .map(|i| {
            let len = 4 + (i as usize % 5) * 3;
            let prompt = (0..len).map(|j| ((i * 31 + j as u64 * 7) % 256) as u32).collect();
            req(i, prompt, 6 + (i as usize % 4))
        })
        .collect()
}

/// Chaos-friendly config: short heartbeat so dropped activations recover
/// in test time, trace recording on so fault visibility can be asserted.
fn chaos_cfg(stages: usize, plan: FaultPlan) -> RuntimeConfig {
    RuntimeConfig {
        fault_plan: plan,
        batch_timeout: Duration::from_millis(250),
        record_trace: true,
        stall_timeout: Duration::from_secs(60),
        ..RuntimeConfig::tiny(stages)
    }
}

/// Run `reqs` to completion under `cfg`, returning outputs + driver state.
fn run(cfg: RuntimeConfig, reqs: Vec<GenRequest>) -> (BTreeMap<u64, Vec<u32>>, DriverOutput) {
    let server = Server::start(cfg, Arc::new(TokenThrottle::default()) as Arc<dyn SchedulePolicy>)
        .expect("valid config");
    let out = server.generate_all(reqs).expect("runtime stalled under fault injection");
    (out, server.shutdown_full())
}

/// The fault-free outputs the chaos runs must reproduce bit-for-bit.
fn baseline(stages: usize, reqs: Vec<GenRequest>) -> BTreeMap<u64, Vec<u32>> {
    run(chaos_cfg(stages, FaultPlan::none()), reqs).0
}

/// Assert the audit report exists, has no violations, and expose it.
fn clean_audit(out: &DriverOutput) -> &gllm_metrics::AuditReport {
    let audit = out.audit.as_ref().expect("audit defaults on");
    assert_eq!(audit.final_snapshot.violations, 0, "recovery must not trip invariants");
    audit
}

#[test]
fn killed_middle_worker_recovers_bit_identically() {
    let reqs = workload(6);
    let want = baseline(3, reqs.clone());
    let (out, drv) = run(chaos_cfg(3, FaultPlan::parse("kill:1@2").expect("spec")), reqs);
    assert_eq!(out, want, "recovered run diverged from fault-free run");
    let audit = clean_audit(&drv);
    assert!(audit.final_snapshot.faults_injected >= 1, "the kill must be on record");
    assert!(audit.final_snapshot.recoveries >= 1, "a kill must force a recovery");
    assert_eq!(audit.final_snapshot.requests_failed, 0, "recoverable fault, no rejections");
    let trace = drv.trace.to_chrome_trace_string();
    assert!(trace.contains("kill worker stage 1"), "trace must name the fault");
    assert!(trace.contains("\"recovery\""), "trace must mark the recovery");
}

#[test]
fn killed_last_stage_recovers_bit_identically() {
    // The last stage owns the result channel: its death is detected via
    // result_rx disconnection rather than a failed send.
    let reqs = workload(5);
    let want = baseline(3, reqs.clone());
    let (out, drv) = run(chaos_cfg(3, FaultPlan::parse("kill:2@1").expect("spec")), reqs);
    assert_eq!(out, want);
    let audit = clean_audit(&drv);
    assert!(audit.final_snapshot.recoveries >= 1);
    assert_eq!(audit.final_snapshot.requests_failed, 0);
}

#[test]
fn dropped_driver_activation_recovers_bit_identically() {
    // The driver broadcasts batch metadata, then "loses" its own
    // activation send: downstream desynchronises (or the heartbeat
    // expires) and recovery recomputes the lost batch.
    let reqs = workload(5);
    let want = baseline(2, reqs.clone());
    let (out, drv) = run(chaos_cfg(2, FaultPlan::parse("drop:0@1").expect("spec")), reqs);
    assert_eq!(out, want);
    let audit = clean_audit(&drv);
    assert!(audit.final_snapshot.faults_injected >= 1);
    assert!(audit.final_snapshot.recoveries >= 1, "a lost activation must force a recovery");
    assert!(audit.final_snapshot.batches_requeued >= 1, "the wedged batch must be requeued");
}

#[test]
fn dropped_midstream_activation_recovers_bit_identically() {
    let reqs = workload(5);
    let want = baseline(3, reqs.clone());
    let (out, drv) = run(chaos_cfg(3, FaultPlan::parse("drop:1@2").expect("spec")), reqs);
    assert_eq!(out, want);
    let audit = clean_audit(&drv);
    assert!(audit.final_snapshot.recoveries >= 1);
    assert_eq!(audit.final_snapshot.requests_failed, 0);
}

#[test]
fn delayed_activation_changes_nothing_but_latency() {
    let reqs = workload(5);
    let want = baseline(3, reqs.clone());
    let (out, drv) = run(chaos_cfg(3, FaultPlan::parse("delay:1@2+30").expect("spec")), reqs);
    assert_eq!(out, want);
    let audit = clean_audit(&drv);
    assert!(audit.final_snapshot.faults_injected >= 1, "the delay must be on record");
    assert_eq!(audit.final_snapshot.recoveries, 0, "a delay is not a failure");
    assert_eq!(audit.final_snapshot.requests_failed, 0);
}

#[test]
fn kv_failures_within_the_retry_budget_recover_bit_identically() {
    let reqs = workload(4);
    let want = baseline(2, reqs.clone());
    // Two failed reservations for request 1; default budget is 4 retries.
    let (out, drv) = run(chaos_cfg(2, FaultPlan::parse("kvfail:1x2").expect("spec")), reqs);
    assert_eq!(out, want, "KV retries must not change any output token");
    let audit = clean_audit(&drv);
    assert!(audit.final_snapshot.faults_injected >= 2, "both charges fire");
    assert_eq!(audit.final_snapshot.requests_failed, 0, "within budget: no rejection");
}

#[test]
fn kv_exhaustion_fails_the_victim_structuredly_and_spares_the_rest() {
    let reqs = workload(4);
    let want = baseline(2, reqs.clone());
    let cfg = RuntimeConfig {
        max_kv_retries: 2,
        ..chaos_cfg(2, FaultPlan::parse("kvfail:1x100").expect("spec"))
    };
    let (out, drv) = run(cfg, reqs);
    assert!(out[&1].is_empty(), "the victim fails with no surviving tokens");
    for (id, toks) in &want {
        if *id != 1 {
            assert_eq!(&out[id], toks, "request {id} must be untouched by the rejection");
        }
    }
    let audit = drv.audit.as_ref().expect("audit defaults on");
    assert_eq!(audit.final_snapshot.requests_failed, 1, "exactly the victim fails");
    assert_eq!(audit.final_snapshot.violations, 0, "a structured failure is not a violation");
}

/// Satellite: kill a worker thread mid-run and assert the pipeline fully
/// recovers — every request completes, outputs bit-identical, failure and
/// recovery visible in both the audit snapshot and the exported trace.
#[test]
fn worker_thread_killed_mid_run_fully_recovers() {
    let reqs = workload(8);
    let n = reqs.len();
    let want = baseline(4, reqs.clone());
    let (out, drv) = run(chaos_cfg(4, FaultPlan::parse("kill:2@3").expect("spec")), reqs);
    assert_eq!(out, want, "full recovery must be bit-identical");
    assert_eq!(drv.recorder.finished_count(), n, "every request finishes");
    let audit = clean_audit(&drv);
    assert!(audit.final_snapshot.faults_injected >= 1);
    assert!(audit.final_snapshot.recoveries >= 1);
    assert!(audit.final_snapshot.batches_requeued >= 1, "in-flight work was requeued");
    assert_eq!(audit.final_snapshot.in_flight, 0, "pipeline drained after recovery");
    assert_eq!(audit.final_snapshot.live_kv_seqs, 0, "KV drained after recovery");
    let trace = drv.trace.to_chrome_trace_string();
    assert!(trace.contains("fault"), "trace records the fault instant");
    assert!(trace.contains("\"recovery\""), "trace records the recovery instant");
}

#[test]
fn seeded_chaos_matrix_recovers_bit_identically_across_seeds() {
    // The acceptance matrix: seeded plans (kills, drops, delays, in-budget
    // KV failures) across pipeline depths — every recovered run must
    // reproduce the fault-free outputs exactly, with zero violations and
    // zero structured rejections.
    for stages in [2usize, 3] {
        let reqs = workload(5);
        let want = baseline(stages, reqs.clone());
        for seed in 0..6u64 {
            let plan = FaultPlan::seeded(seed, stages, 6, 5);
            let label = format!("stages={stages} seed={seed} plan={:?}", plan.faults);
            let (out, drv) = run(chaos_cfg(stages, plan), reqs.clone());
            assert_eq!(out, want, "diverged: {label}");
            let audit = drv.audit.as_ref().expect("audit defaults on");
            assert_eq!(audit.final_snapshot.violations, 0, "violations: {label}");
            assert_eq!(
                audit.final_snapshot.requests_failed, 0,
                "seeded faults are recoverable: {label}"
            );
        }
    }
}

#[test]
fn single_stage_seeded_plans_degrade_to_recoverable_kv_faults() {
    let reqs = workload(4);
    let want = baseline(1, reqs.clone());
    for seed in 0..4u64 {
        let plan = FaultPlan::seeded(seed, 1, 6, 4);
        let (out, drv) = run(chaos_cfg(1, plan), reqs.clone());
        assert_eq!(out, want, "seed {seed}");
        let audit = drv.audit.as_ref().expect("audit defaults on");
        assert_eq!(audit.final_snapshot.requests_failed, 0, "seed {seed}");
        assert_eq!(audit.final_snapshot.violations, 0, "seed {seed}");
    }
}
