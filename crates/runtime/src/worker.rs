//! Ordinary (non-driver) stage workers, and the spawner that (re)builds
//! the downstream pipeline.
//!
//! A worker loops on its metadata channel: for each announced micro-batch
//! it prepares the chunk structures (possible before activations arrive —
//! the overlap §3.3 describes), blocks on the previous stage's activation
//! stream, runs its decoder layers and forwards the result. The last stage
//! additionally projects logits, samples tokens and returns them to the
//! driver.
//!
//! [`StageSpawner`] owns everything needed to wire stages `1..S` from
//! scratch — model config, layer partition, weight seed, fault injector —
//! so the driver can tear a dead pipeline down and respawn it with
//! *identical* weights (same seed ⇒ same parameters), which is what makes
//! recovered runs bit-identical to fault-free runs.

use std::ops::Range;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gllm_model::ModelConfig;
use gllm_transformer::sampler::sample;
use gllm_transformer::StageModel;

use crate::fault::{ActivationFate, FaultInjector};
use crate::messages::{Activations, BatchResult, WorkerMsg};

/// What a worker does with its stage output.
pub enum StageOutput {
    /// Forward activations to the next stage.
    Next(Sender<Activations>),
    /// Final stage: sample and report to the driver.
    Result(Sender<BatchResult>),
}

/// The driver's handles to one generation of downstream stages. Dropping
/// the senders cascades every worker to a clean exit (each blocks only on
/// its own inputs), after which `handles` can be joined without deadlock.
pub struct PipelineLinks {
    /// Per-worker metadata broadcast channels (stages `1..S`).
    pub meta_txs: Vec<Sender<WorkerMsg>>,
    /// Activation channel into stage 1 (`None` on single-stage pipelines).
    pub act_tx: Option<Sender<Activations>>,
    /// Sampled tokens from the last stage.
    pub result_rx: Receiver<BatchResult>,
    /// Worker thread handles, stage order.
    pub handles: Vec<JoinHandle<()>>,
}

impl PipelineLinks {
    /// Links to nothing: every channel closed, no threads. Used as the
    /// placeholder while the driver swaps generations during recovery.
    pub fn empty() -> Self {
        let (_, result_rx) = unbounded();
        Self { meta_txs: Vec::new(), act_tx: None, result_rx, handles: Vec::new() }
    }
}

/// Everything needed to (re)build the downstream pipeline stages from
/// seeded weights.
pub struct StageSpawner {
    model: ModelConfig,
    /// Layer range per stage (index 0 is the driver's, never respawned).
    ranges: Vec<Range<usize>>,
    kv_slots: usize,
    seed: u64,
    injector: FaultInjector,
}

impl StageSpawner {
    /// A spawner for `ranges.len()` stages over `model`.
    pub fn new(
        model: ModelConfig,
        ranges: Vec<Range<usize>>,
        kv_slots: usize,
        seed: u64,
        injector: FaultInjector,
    ) -> Self {
        Self { model, ranges, kv_slots, seed, injector }
    }

    /// Total pipeline stages (including the driver's stage 0).
    pub fn num_stages(&self) -> usize {
        self.ranges.len()
    }

    /// Wire and spawn stages `1..S`: a metadata channel per worker plus
    /// the activation chain driver → 1 → … → S−1 → results. Weights are
    /// rebuilt from the seed, so a respawned stage is parameter-identical
    /// to the one it replaces. On a single-stage pipeline this returns
    /// [`PipelineLinks::empty`]-shaped links (no workers, closed results).
    pub fn spawn_downstream(&self) -> PipelineLinks {
        let num_stages = self.ranges.len();
        let (result_tx, result_rx) = unbounded();
        let mut meta_txs = Vec::with_capacity(num_stages.saturating_sub(1));
        let mut handles = Vec::with_capacity(num_stages.saturating_sub(1));
        let mut first_act_tx = None;
        let mut next_act_rx: Option<Receiver<Activations>> = None;
        for (s, range) in self.ranges.iter().enumerate().skip(1) {
            let (meta_tx, meta_rx) = unbounded();
            meta_txs.push(meta_tx);
            let act_rx = match next_act_rx.take() {
                Some(rx) => rx,
                None => {
                    let (tx, rx) = unbounded();
                    first_act_tx = Some(tx);
                    rx
                }
            };
            let is_last = s + 1 == num_stages;
            let output = if is_last {
                StageOutput::Result(result_tx.clone())
            } else {
                let (tx, rx) = unbounded();
                next_act_rx = Some(rx);
                StageOutput::Next(tx)
            };
            let stage = StageModel::new(
                self.model.clone(),
                range.clone(),
                self.kv_slots,
                self.seed,
                false,
                is_last,
            );
            let injector = self.injector.clone();
            handles.push(std::thread::spawn(move || {
                run_worker(s, stage, meta_rx, act_rx, output, injector)
            }));
        }
        PipelineLinks { meta_txs, act_tx: first_act_tx, result_rx, handles }
    }
}

/// Run one worker until shutdown (or injected death). `meta_rx` delivers
/// batch metadata (ahead of data), `act_rx` the previous stage's
/// activations.
pub fn run_worker(
    stage_idx: usize,
    mut stage: StageModel,
    meta_rx: Receiver<WorkerMsg>,
    act_rx: Receiver<Activations>,
    output: StageOutput,
    injector: FaultInjector,
) {
    while let Ok(msg) = meta_rx.recv() {
        let meta = match msg {
            WorkerMsg::Batch(meta) => meta,
            WorkerMsg::Shutdown => break,
        };
        if injector.should_kill(stage_idx, meta.batch) {
            // Injected death: vanish without a goodbye. Our channels drop,
            // the neighbours cascade out, the driver detects and recovers.
            return;
        }
        // Preparation from metadata alone (tables, chunk layout) happens
        // here, before the activations land.
        let tables: Vec<_> = meta.tables.iter().collect();
        let Ok(acts) = act_rx.recv() else {
            // Upstream stage gone: the pipeline is tearing down.
            break;
        };
        if acts.batch != meta.batch {
            // Metadata/activation streams desynchronised — an upstream
            // activation was lost. There is no way to resynchronise
            // locally (the missing batch's hidden state is gone), so exit
            // and let the teardown cascade reach the driver, which rolls
            // the lost batches back and recomputes them.
            break;
        }
        let mut hidden = acts.hidden;
        stage.forward(&meta.chunks, &tables, &mut hidden);
        match &output {
            StageOutput::Next(tx) => {
                match injector.activation_fate(stage_idx, meta.batch) {
                    ActivationFate::Drop => continue,
                    ActivationFate::Delay(d) => std::thread::sleep(d),
                    ActivationFate::Deliver => {}
                }
                if tx.send(Activations { batch: meta.batch, hidden }).is_err() {
                    break;
                }
            }
            StageOutput::Result(tx) => {
                let logits = stage.project(&meta.chunks, &hidden);
                let mut tokens = Vec::with_capacity(logits.len());
                let mut li = 0;
                for (ci, chunk) in meta.chunks.iter().enumerate() {
                    if !chunk.sample {
                        continue;
                    }
                    let (seq, lg) = &logits[li];
                    li += 1;
                    let Some((params, step)) = meta.samples[ci].as_ref() else { continue };
                    tokens.push((*seq, sample(lg, params, *seq, *step)));
                }
                if tx.send(BatchResult { batch: meta.batch, tokens }).is_err() {
                    break;
                }
            }
        }
    }
}
