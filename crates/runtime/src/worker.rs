//! Ordinary (non-driver) stage workers.
//!
//! A worker loops on its metadata channel: for each announced micro-batch
//! it prepares the chunk structures (possible before activations arrive —
//! the overlap §3.3 describes), blocks on the previous stage's activation
//! stream, runs its decoder layers and forwards the result. The last stage
//! additionally projects logits, samples tokens and returns them to the
//! driver.

use crossbeam::channel::{Receiver, Sender};
use gllm_transformer::sampler::sample;
use gllm_transformer::StageModel;

use crate::messages::{Activations, BatchResult, WorkerMsg};

/// What a worker does with its stage output.
pub enum StageOutput {
    /// Forward activations to the next stage.
    Next(Sender<Activations>),
    /// Final stage: sample and report to the driver.
    Result(Sender<BatchResult>),
}

/// Run one worker until shutdown. `meta_rx` delivers batch metadata (ahead
/// of data), `act_rx` the previous stage's activations.
pub fn run_worker(
    mut stage: StageModel,
    meta_rx: Receiver<WorkerMsg>,
    act_rx: Receiver<Activations>,
    output: StageOutput,
) {
    while let Ok(msg) = meta_rx.recv() {
        let meta = match msg {
            WorkerMsg::Batch(meta) => meta,
            WorkerMsg::Shutdown => break,
        };
        // Preparation from metadata alone (tables, chunk layout) happens
        // here, before the activations land.
        let tables: Vec<_> = meta.tables.iter().collect();
        let Ok(acts) = act_rx.recv() else {
            // Upstream stage gone: the pipeline is tearing down.
            break;
        };
        assert_eq!(acts.batch, meta.batch, "metadata/activation stream desynchronised");
        let mut hidden = acts.hidden;
        stage.forward(&meta.chunks, &tables, &mut hidden);
        match &output {
            StageOutput::Next(tx) => {
                if tx.send(Activations { batch: meta.batch, hidden }).is_err() {
                    break;
                }
            }
            StageOutput::Result(tx) => {
                let logits = stage.project(&meta.chunks, &hidden);
                let mut tokens = Vec::with_capacity(logits.len());
                let mut li = 0;
                for (ci, chunk) in meta.chunks.iter().enumerate() {
                    if !chunk.sample {
                        continue;
                    }
                    let (seq, lg) = &logits[li];
                    li += 1;
                    let Some((params, step)) = meta.samples[ci].as_ref() else { continue };
                    tokens.push((*seq, sample(lg, params, *seq, *step)));
                }
                if tx.send(BatchResult { batch: meta.batch, tokens }).is_err() {
                    break;
                }
            }
        }
    }
}
