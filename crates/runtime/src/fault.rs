//! Deterministic fault injection for the threaded pipeline runtime.
//!
//! The paper's runtime assumes every stage survives the whole serving run.
//! Production pipelines do not get that luxury: workers die, inter-stage
//! messages are lost or delayed, allocations fail. This module provides a
//! *seeded, reproducible* way to inject exactly those failures so the
//! driver's recovery path (see `driver.rs`) can be exercised — and proven
//! bit-identical to the fault-free run — under test.
//!
//! A [`FaultPlan`] is a declarative list of [`FaultKind`]s, parseable from
//! a compact spec string (`kill:1@3,delay:0@2+20,kvfail:4x2`) or generated
//! from a seed. At runtime the plan is armed into a [`FaultInjector`] — a
//! cheap `Arc<Mutex<_>>` handle shared by the driver and every worker.
//! Each fault fires at most the declared number of times; every firing is
//! appended to a log the driver drains into the audit counters and the
//! pipeline trace, so no injected fault is ever invisible post-mortem.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// One injectable failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Stage `stage` (≥ 1; the driver stage is not killable) exits
    /// without warning when batch `at_batch`'s metadata reaches it.
    KillWorker {
        /// Pipeline stage index of the victim worker.
        stage: usize,
        /// Batch id that triggers the death.
        at_batch: u64,
    },
    /// The activation message leaving `from_stage` for batch `at_batch`
    /// is silently dropped (the metadata still arrives downstream).
    DropActivation {
        /// Sending stage index.
        from_stage: usize,
        /// Batch id whose activations are lost.
        at_batch: u64,
    },
    /// The activation message leaving `from_stage` for batch `at_batch`
    /// is delayed by `delay_ms` before delivery.
    DelayActivation {
        /// Sending stage index.
        from_stage: usize,
        /// Batch id whose activations are held back.
        at_batch: u64,
        /// Added latency in milliseconds.
        delay_ms: u64,
    },
    /// The next `times` KV reservations for sequence `seq` fail at
    /// admission time (the driver retries, then rejects the request).
    FailKvAlloc {
        /// Victim sequence id.
        seq: u64,
        /// How many consecutive attempts fail before allocation succeeds.
        times: u32,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::KillWorker { stage, at_batch } => {
                write!(f, "kill:{stage}@{at_batch}")
            }
            FaultKind::DropActivation { from_stage, at_batch } => {
                write!(f, "drop:{from_stage}@{at_batch}")
            }
            FaultKind::DelayActivation { from_stage, at_batch, delay_ms } => {
                write!(f, "delay:{from_stage}@{at_batch}+{delay_ms}")
            }
            FaultKind::FailKvAlloc { seq, times } => write!(f, "kvfail:{seq}x{times}"),
        }
    }
}

/// A malformed fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError(pub String);

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for FaultParseError {}

/// A reproducible set of faults to inject into one serving run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in declaration order.
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    /// The no-fault plan (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse a comma-separated spec:
    ///
    /// * `kill:STAGE@BATCH` — kill worker `STAGE` (≥ 1) at batch `BATCH`,
    /// * `drop:STAGE@BATCH` — drop the activations stage `STAGE` sends
    ///   for batch `BATCH`,
    /// * `delay:STAGE@BATCH+MS` — delay those activations by `MS` ms,
    /// * `kvfail:SEQxTIMES` — fail sequence `SEQ`'s next `TIMES` KV
    ///   reservations.
    ///
    /// The empty string parses to the no-fault plan.
    pub fn parse(spec: &str) -> Result<Self, FaultParseError> {
        let mut faults = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let Some((kind, rest)) = part.split_once(':') else {
                return Err(FaultParseError(format!("{part:?}: expected KIND:ARGS")));
            };
            let at = |s: &str| -> Result<(usize, u64), FaultParseError> {
                let Some((stage, batch)) = s.split_once('@') else {
                    return Err(FaultParseError(format!("{part:?}: expected STAGE@BATCH")));
                };
                let stage = stage
                    .parse()
                    .map_err(|_| FaultParseError(format!("{part:?}: bad stage {stage:?}")))?;
                let batch = batch
                    .parse()
                    .map_err(|_| FaultParseError(format!("{part:?}: bad batch {batch:?}")))?;
                Ok((stage, batch))
            };
            match kind {
                "kill" => {
                    let (stage, at_batch) = at(rest)?;
                    if stage == 0 {
                        return Err(FaultParseError(format!(
                            "{part:?}: stage 0 is the driver and cannot be killed"
                        )));
                    }
                    faults.push(FaultKind::KillWorker { stage, at_batch });
                }
                "drop" => {
                    let (from_stage, at_batch) = at(rest)?;
                    faults.push(FaultKind::DropActivation { from_stage, at_batch });
                }
                "delay" => {
                    let Some((head, ms)) = rest.split_once('+') else {
                        return Err(FaultParseError(format!(
                            "{part:?}: expected STAGE@BATCH+MS"
                        )));
                    };
                    let (from_stage, at_batch) = at(head)?;
                    let delay_ms = ms
                        .parse()
                        .map_err(|_| FaultParseError(format!("{part:?}: bad delay {ms:?}")))?;
                    faults.push(FaultKind::DelayActivation { from_stage, at_batch, delay_ms });
                }
                "kvfail" => {
                    let Some((seq, times)) = rest.split_once('x') else {
                        return Err(FaultParseError(format!("{part:?}: expected SEQxTIMES")));
                    };
                    let seq = seq
                        .parse()
                        .map_err(|_| FaultParseError(format!("{part:?}: bad seq {seq:?}")))?;
                    let times = times
                        .parse()
                        .map_err(|_| FaultParseError(format!("{part:?}: bad count {times:?}")))?;
                    if times == 0 {
                        return Err(FaultParseError(format!("{part:?}: zero-shot kvfail")));
                    }
                    faults.push(FaultKind::FailKvAlloc { seq, times });
                }
                other => {
                    return Err(FaultParseError(format!(
                        "unknown fault kind {other:?} (kill, drop, delay, kvfail)"
                    )))
                }
            }
        }
        Ok(Self { faults })
    }

    /// A seeded pseudo-random plan of 1–3 faults over a pipeline of
    /// `stages` stages, batches `0..max_batch` and sequences `0..max_seq`.
    /// The same seed always yields the same plan, and every generated
    /// fault is recoverable (KV failures stay within the driver's default
    /// retry budget), so a chaos matrix over seeds proves bit-identical
    /// recovery rather than structured rejection.
    pub fn seeded(seed: u64, stages: usize, max_batch: u64, max_seq: u64) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            // splitmix64: tiny, dependency-free, well distributed.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut faults = Vec::new();
        if stages < 2 {
            // Only KV faults make sense on a single-stage pipeline.
            faults.push(FaultKind::FailKvAlloc {
                seq: next() % max_seq.max(1),
                times: 1 + (next() % 2) as u32,
            });
            return Self { faults };
        }
        let n = 1 + (next() % 3) as usize;
        for _ in 0..n {
            let at_batch = next() % max_batch.max(1);
            match next() % 4 {
                0 => faults.push(FaultKind::KillWorker {
                    stage: 1 + (next() as usize % (stages - 1)),
                    at_batch,
                }),
                1 => faults.push(FaultKind::DropActivation {
                    from_stage: next() as usize % (stages - 1),
                    at_batch,
                }),
                2 => faults.push(FaultKind::DelayActivation {
                    from_stage: next() as usize % (stages - 1),
                    at_batch,
                    delay_ms: 1 + next() % 20,
                }),
                _ => faults.push(FaultKind::FailKvAlloc {
                    seq: next() % max_seq.max(1),
                    times: 1 + (next() % 2) as u32,
                }),
            }
        }
        Self { faults }
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = FaultParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// What the injector decided about one outbound activation message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationFate {
    /// Send normally.
    Deliver,
    /// Never send it (the downstream stage desynchronises and the driver
    /// recovers by timeout or cascade).
    Drop,
    /// Sleep this long, then send.
    Delay(Duration),
}

#[derive(Debug, Default)]
struct InjectorState {
    /// One-shot kill switches keyed by (stage, batch).
    kills: BTreeMap<(usize, u64), ()>,
    /// One-shot activation fates keyed by (from_stage, batch).
    fates: BTreeMap<(usize, u64), ActivationFate>,
    /// Remaining KV-allocation failures per sequence.
    kv: BTreeMap<u64, u32>,
    /// Faults that fired but the driver has not yet folded into the audit
    /// counters / trace.
    pending: Vec<String>,
    /// Every fault that ever fired, in firing order (for tests).
    fired: Vec<String>,
}

/// Shared handle the driver and workers consult at well-defined points.
///
/// All methods take one short lock; none blocks, sends or receives while
/// holding it (lock-discipline clean). A fault-free injector is a single
/// `is_empty` flag check per call site.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    state: Arc<Mutex<InjectorState>>,
    /// Fast path: a plan with no faults never needs the lock.
    armed: bool,
}

impl FaultInjector {
    /// Arm a plan. An empty plan produces an inert injector.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut st = InjectorState::default();
        for f in &plan.faults {
            match *f {
                FaultKind::KillWorker { stage, at_batch } => {
                    st.kills.insert((stage, at_batch), ());
                }
                FaultKind::DropActivation { from_stage, at_batch } => {
                    st.fates.insert((from_stage, at_batch), ActivationFate::Drop);
                }
                FaultKind::DelayActivation { from_stage, at_batch, delay_ms } => {
                    st.fates.insert(
                        (from_stage, at_batch),
                        ActivationFate::Delay(Duration::from_millis(delay_ms)),
                    );
                }
                FaultKind::FailKvAlloc { seq, times } => {
                    st.kv.insert(seq, times);
                }
            }
        }
        Self { armed: !plan.is_empty(), state: Arc::new(Mutex::new(st)) }
    }

    fn with<T>(&self, f: impl FnOnce(&mut InjectorState) -> T) -> T {
        // A panicking holder must not disarm fault bookkeeping mid-test.
        let mut guard = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// Whether the worker receiving `batch`'s metadata at `stage` should
    /// die now. Consumed on fire.
    pub fn should_kill(&self, stage: usize, batch: u64) -> bool {
        if !self.armed {
            return false;
        }
        self.with(|st| {
            if st.kills.remove(&(stage, batch)).is_some() {
                let desc = format!("kill worker stage {stage} at batch {batch}");
                st.pending.push(desc.clone());
                st.fired.push(desc);
                true
            } else {
                false
            }
        })
    }

    /// What to do with the activations `from_stage` is about to send for
    /// `batch`. Consumed on fire (a later identical batch id delivers).
    pub fn activation_fate(&self, from_stage: usize, batch: u64) -> ActivationFate {
        if !self.armed {
            return ActivationFate::Deliver;
        }
        self.with(|st| match st.fates.remove(&(from_stage, batch)) {
            Some(fate) => {
                let desc = match fate {
                    ActivationFate::Drop => {
                        format!("drop activations from stage {from_stage} for batch {batch}")
                    }
                    ActivationFate::Delay(d) => format!(
                        "delay activations from stage {from_stage} for batch {batch} by {} ms",
                        d.as_millis()
                    ),
                    ActivationFate::Deliver => String::new(),
                };
                if !desc.is_empty() {
                    st.pending.push(desc.clone());
                    st.fired.push(desc);
                }
                fate
            }
            None => ActivationFate::Deliver,
        })
    }

    /// Whether the KV reservation the driver is about to make for `seq`
    /// should fail. Each call that returns `true` consumes one of the
    /// fault's remaining charges.
    pub fn kv_alloc_should_fail(&self, seq: u64) -> bool {
        if !self.armed {
            return false;
        }
        self.with(|st| {
            let Some(left) = st.kv.get_mut(&seq) else { return false };
            if *left == 0 {
                return false;
            }
            *left -= 1;
            if *left == 0 {
                st.kv.remove(&seq);
            }
            let desc = format!("fail KV allocation for seq {seq}");
            st.pending.push(desc.clone());
            st.fired.push(desc);
            true
        })
    }

    /// Forget any remaining KV failures for `seq` (the driver rejected
    /// the request; the fault must not leak onto a reused id).
    pub fn clear_kv_fault(&self, seq: u64) {
        if !self.armed {
            return;
        }
        self.with(|st| {
            st.kv.remove(&seq);
        })
    }

    /// Drain descriptions of faults that fired since the last call. The
    /// driver folds these into the audit counters and pipeline trace.
    pub fn take_fired(&self) -> Vec<String> {
        if !self.armed {
            return Vec::new();
        }
        self.with(|st| std::mem::take(&mut st.pending))
    }

    /// Every fault that ever fired, in firing order.
    pub fn fired_log(&self) -> Vec<String> {
        self.with(|st| st.fired.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        let plan = FaultPlan::parse("kill:1@3, drop:0@5,delay:2@4+20,kvfail:7x3").unwrap();
        assert_eq!(
            plan.faults,
            vec![
                FaultKind::KillWorker { stage: 1, at_batch: 3 },
                FaultKind::DropActivation { from_stage: 0, at_batch: 5 },
                FaultKind::DelayActivation { from_stage: 2, at_batch: 4, delay_ms: 20 },
                FaultKind::FailKvAlloc { seq: 7, times: 3 },
            ]
        );
        let rendered: Vec<String> = plan.faults.iter().map(|f| f.to_string()).collect();
        assert_eq!(rendered.join(","), "kill:1@3,drop:0@5,delay:2@4+20,kvfail:7x3");
        let reparsed: FaultPlan = rendered.join(",").parse().unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["kill:0@1", "kill:1", "boom:1@2", "delay:1@2", "kvfail:3", "kvfail:3x0", "x"] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,  ").unwrap().is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 3, 8, 4);
            let b = FaultPlan::seeded(seed, 3, 8, 4);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(!a.is_empty());
            for f in &a.faults {
                match *f {
                    FaultKind::KillWorker { stage, .. } => assert!(stage >= 1 && stage < 3),
                    FaultKind::DropActivation { from_stage, .. }
                    | FaultKind::DelayActivation { from_stage, .. } => assert!(from_stage < 2),
                    FaultKind::FailKvAlloc { seq, times } => {
                        assert!(seq < 4);
                        assert!(times >= 1 && times <= 2, "must stay within retry budget");
                    }
                }
            }
        }
        // Single-stage plans degrade to KV faults only.
        for f in &FaultPlan::seeded(9, 1, 8, 4).faults {
            assert!(matches!(f, FaultKind::FailKvAlloc { .. }));
        }
    }

    #[test]
    fn kill_and_fate_fire_exactly_once() {
        let inj = FaultInjector::new(&FaultPlan::parse("kill:1@3,drop:0@2").unwrap());
        assert!(!inj.should_kill(1, 2));
        assert!(!inj.should_kill(2, 3));
        assert!(inj.should_kill(1, 3));
        assert!(!inj.should_kill(1, 3), "one-shot");
        assert_eq!(inj.activation_fate(0, 1), ActivationFate::Deliver);
        assert_eq!(inj.activation_fate(0, 2), ActivationFate::Drop);
        assert_eq!(inj.activation_fate(0, 2), ActivationFate::Deliver, "one-shot");
        let fired = inj.fired_log();
        assert_eq!(fired.len(), 2);
        assert_eq!(inj.take_fired().len(), 2);
        assert!(inj.take_fired().is_empty(), "pending drained");
        assert_eq!(inj.fired_log().len(), 2, "cumulative log survives draining");
    }

    #[test]
    fn kv_failures_decrement_and_clear() {
        let inj = FaultInjector::new(&FaultPlan::parse("kvfail:7x2").unwrap());
        assert!(inj.kv_alloc_should_fail(7));
        assert!(inj.kv_alloc_should_fail(7));
        assert!(!inj.kv_alloc_should_fail(7), "charges exhausted");
        assert!(!inj.kv_alloc_should_fail(8));
        let inj = FaultInjector::new(&FaultPlan::parse("kvfail:7x5").unwrap());
        assert!(inj.kv_alloc_should_fail(7));
        inj.clear_kv_fault(7);
        assert!(!inj.kv_alloc_should_fail(7), "cleared on rejection");
    }

    #[test]
    fn inert_injector_never_fires() {
        let inj = FaultInjector::default();
        assert!(!inj.should_kill(1, 0));
        assert_eq!(inj.activation_fate(0, 0), ActivationFate::Deliver);
        assert!(!inj.kv_alloc_should_fail(0));
        assert!(inj.take_fired().is_empty());
    }
}
