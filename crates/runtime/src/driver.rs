//! The driver worker.
//!
//! As in the paper (§3.3), the driver is a full pipeline stage that
//! *additionally* receives requests from the frontend, runs the global
//! scheduler, manages the unified KV cache/page tables, broadcasts batch
//! metadata to every worker and streams sampled tokens back to the
//! frontend. Everything is non-blocking: the driver multiplexes request
//! intake and batch results with `select!` while micro-batches execute on
//! downstream stages.
//!
//! # Failure detection and recovery
//!
//! The driver additionally owns the pipeline's fault tolerance. Three
//! signals mark a downstream failure: a metadata or activation send
//! erroring (the receiving worker is gone), the result channel
//! disconnecting (the last stage died or the teardown cascade reached
//! it), and a heartbeat timeout (batches in flight but no completion for
//! a whole `batch_timeout` window — the lost-activation case, where every
//! thread is still alive but the pipeline is wedged). Recovery then:
//!
//! 1. tears the current worker generation down (dropping the channels
//!    cascades every worker to a clean exit) and joins the threads,
//! 2. salvages any completed results still queued from the dead
//!    generation,
//! 3. rolls back every in-flight micro-batch ([`RequestPool::uncommit`])
//!    — their completions will never arrive,
//! 4. evicts all resident KV (it died with the stages that computed it)
//!    and resets every context-holding sequence for recomputation,
//! 5. respawns stages `1..S` from the same weight seed, and
//! 6. if recoveries exceed the bound, fails the open requests with
//!    structured [`StreamEvent::Failed`] events instead of stalling.
//!
//! Because recompute-preemption is already bit-identical (sampling
//! depends only on per-sequence text and step, never on batch shape),
//! a recovered run produces exactly the tokens the fault-free run would.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use gllm_core::{admit, BatchPlan, RequestPool, SchedulePolicy};
use gllm_kvcache::{KvCacheManager, Tokens};
use gllm_metrics::{
    AuditReport, AuditSnapshot, InvariantAuditor, KvObservation, MetricsRecorder, PipelineTrace,
    PlanCaps,
};
use gllm_transformer::model::BatchChunk;
use gllm_transformer::sampler::{sample, SamplingParams};
use gllm_transformer::StageModel;

use crate::fault::{ActivationFate, FaultInjector};
use crate::messages::{
    Activations, BatchMeta, BatchResult, DriverMsg, GenRequest, StreamEvent, WorkerMsg,
};
use crate::worker::{PipelineLinks, StageSpawner};

/// Per-request bookkeeping the driver keeps beside the pool.
struct SeqInfo {
    /// Full token text: prompt followed by every generated token.
    text: Vec<u32>,
    /// Sampling configuration.
    params: SamplingParams,
}

/// Everything the driver thread hands back at shutdown.
#[derive(Debug)]
pub struct DriverOutput {
    /// Per-request timelines.
    pub recorder: MetricsRecorder,
    /// Invariant-audit report (`None` when auditing was off).
    pub audit: Option<AuditReport>,
    /// Structured per-batch pipeline events (empty unless recording was on).
    pub trace: PipelineTrace,
}

impl DriverOutput {
    /// An output with nothing recorded — what a caller gets when the driver
    /// thread died instead of draining.
    pub fn empty() -> Self {
        Self { recorder: MetricsRecorder::new(), audit: None, trace: PipelineTrace::new(false) }
    }
}

/// Everything [`run_driver`] needs, bundled (the flat 14-argument call
/// outgrew itself once fault tolerance arrived).
pub struct DriverParams {
    /// The driver's own pipeline stage (layers `0..k`).
    pub stage0: StageModel,
    /// The scheduling policy (shared with the simulator).
    pub policy: Arc<dyn SchedulePolicy>,
    /// The unified KV cache manager (driver-owned, as in the paper).
    pub kvm: KvCacheManager,
    /// Frontend requests and control.
    pub req_rx: Receiver<DriverMsg>,
    /// The initial downstream worker generation.
    pub links: PipelineLinks,
    /// Respawns downstream stages from seeded weights after a failure.
    pub spawner: StageSpawner,
    /// Token/rejection/failure events to the frontend.
    pub stream_tx: Sender<StreamEvent>,
    /// Pipeline depth (= number of stages).
    pub depth: usize,
    /// Per-batch sequence cap.
    pub max_seqs_per_batch: usize,
    /// Chunked pipeline parallelism.
    pub cpp: bool,
    /// Run the invariant auditor.
    pub audit: bool,
    /// Record the pipeline trace.
    pub record_trace: bool,
    /// Shared audit snapshot (read by the server for stall post-mortems).
    pub audit_state: Arc<Mutex<Option<AuditSnapshot>>>,
    /// Armed fault plan (inert when the plan is empty).
    pub injector: FaultInjector,
    /// Full pipeline recoveries allowed before failing open requests.
    pub max_recoveries: usize,
    /// KV-allocation retries per request before a structured rejection.
    pub max_kv_retries: usize,
    /// Heartbeat window: batches in flight with no completion for this
    /// long is treated as a wedged pipeline and triggers recovery.
    pub batch_timeout: Duration,
}

/// The driver loop. Returns the metrics, audit and trace at shutdown.
pub fn run_driver(params: DriverParams) -> DriverOutput {
    Driver::new(params).run()
}

/// What the multiplexer woke up on.
enum Wake {
    Req(DriverMsg),
    ReqClosed,
    Res(BatchResult),
    ResClosed,
    Tick,
}

/// Outcome of one scheduling attempt.
enum Step {
    /// A batch was dispatched (or the attempt consumed a transient
    /// condition) — try to schedule more.
    Continue,
    /// Nothing schedulable right now — leave the scheduling loop.
    Idle,
}

struct Driver {
    t0: Instant,
    pool: RequestPool,
    recorder: MetricsRecorder,
    seqs: HashMap<u64, SeqInfo>,
    /// In-flight plans by batch id. Ordered so a recovery rolls batches
    /// back deterministically (oldest first).
    plans: BTreeMap<u64, BatchPlan>,
    next_batch: u64,
    in_flight: usize,
    shutting_down: bool,
    single_stage: bool,
    auditor: Option<InvariantAuditor>,
    ptrace: PipelineTrace,

    stage0: StageModel,
    policy: Arc<dyn SchedulePolicy>,
    kvm: KvCacheManager,
    req_rx: Receiver<DriverMsg>,
    links: PipelineLinks,
    spawner: StageSpawner,
    stream_tx: Sender<StreamEvent>,
    depth: usize,
    audit_state: Arc<Mutex<Option<AuditSnapshot>>>,

    injector: FaultInjector,
    /// Set when a send failed or the result channel disconnected; the
    /// next loop turn runs recovery.
    pipeline_down: bool,
    recoveries: usize,
    max_recoveries: usize,
    /// Failed KV-allocation attempts per live request.
    kv_retries: HashMap<u64, usize>,
    max_kv_retries: usize,
    batch_timeout: Duration,
    /// Last time a batch completed (or the pipeline was (re)started).
    last_progress: Instant,
}

impl Driver {
    fn new(p: DriverParams) -> Self {
        let single_stage = p.spawner.num_stages() == 1;
        let auditor = p
            .audit
            .then(|| InvariantAuditor::new(p.kvm.stats().total_blocks, p.kvm.block_size(), p.depth));
        Self {
            t0: Instant::now(),
            pool: RequestPool::new(p.max_seqs_per_batch).with_cpp(p.cpp),
            recorder: MetricsRecorder::new(),
            seqs: HashMap::new(),
            plans: BTreeMap::new(),
            next_batch: 0,
            in_flight: 0,
            shutting_down: false,
            single_stage,
            auditor,
            ptrace: PipelineTrace::new(p.record_trace),
            stage0: p.stage0,
            policy: p.policy,
            kvm: p.kvm,
            req_rx: p.req_rx,
            links: p.links,
            spawner: p.spawner,
            stream_tx: p.stream_tx,
            depth: p.depth,
            audit_state: p.audit_state,
            injector: p.injector,
            pipeline_down: false,
            recoveries: 0,
            max_recoveries: p.max_recoveries,
            kv_retries: HashMap::new(),
            max_kv_retries: p.max_kv_retries,
            batch_timeout: p.batch_timeout,
            last_progress: Instant::now(),
        }
    }

    fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn run(mut self) -> DriverOutput {
        loop {
            let mut wake = Wake::Tick;
            crossbeam::channel::select! {
                recv(self.req_rx) -> msg => wake = match msg {
                    Ok(m) => Wake::Req(m),
                    Err(_) => Wake::ReqClosed,
                },
                recv(self.links.result_rx) -> res => wake = match res {
                    Ok(r) => Wake::Res(r),
                    Err(_) => Wake::ResClosed,
                },
                default(Duration::from_millis(1)) => {},
            }
            match wake {
                Wake::Req(DriverMsg::Submit(r)) => self.on_submit(r),
                Wake::Req(DriverMsg::Shutdown) | Wake::ReqClosed => self.shutting_down = true,
                Wake::Res(res) => self.on_result(res),
                Wake::ResClosed => {
                    if !self.single_stage {
                        self.pipeline_down = true;
                    }
                }
                Wake::Tick => {}
            }
            // Drain whatever else is ready before scheduling.
            while let Ok(msg) = self.req_rx.try_recv() {
                match msg {
                    DriverMsg::Submit(r) => self.on_submit(r),
                    DriverMsg::Shutdown => self.shutting_down = true,
                }
            }
            loop {
                match self.links.result_rx.try_recv() {
                    Ok(res) => self.on_result(res),
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => {
                        if !self.single_stage {
                            self.pipeline_down = true;
                        }
                        break;
                    }
                }
            }

            self.drain_fault_log();
            if !self.single_stage {
                if !self.pipeline_down
                    && self.in_flight > 0
                    && self.last_progress.elapsed() >= self.batch_timeout
                {
                    // Heartbeat expired: threads may all be alive, but no
                    // batch has completed for a whole window (e.g. a
                    // dropped activation wedged the chain).
                    let now = self.now();
                    if let Some(a) = self.auditor.as_mut() {
                        a.on_fault(now);
                    }
                    self.ptrace.fault(now, "heartbeat timeout: no batch completion");
                    self.pipeline_down = true;
                }
                if self.pipeline_down {
                    self.recover();
                }
            }

            // Schedule while pipeline slots remain.
            while self.in_flight < self.depth && !self.pipeline_down {
                match self.schedule_once() {
                    Step::Continue => {}
                    Step::Idle => break,
                }
            }

            if self.shutting_down && self.in_flight == 0 {
                break;
            }
        }
        self.drain_fault_log();
        for tx in &self.links.meta_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.links.handles.drain(..) {
            let _ = h.join();
        }
        let drained = !self.pool.has_work();
        DriverOutput {
            recorder: self.recorder,
            audit: self.auditor.map(|a| a.into_report(drained)),
            trace: self.ptrace,
        }
    }

    /// Fold injector firings (wherever they happened — worker threads
    /// included) into the audit counters and the pipeline trace.
    fn drain_fault_log(&mut self) {
        for desc in self.injector.take_fired() {
            let now = self.now();
            if let Some(a) = self.auditor.as_mut() {
                a.on_fault(now);
            }
            self.ptrace.fault(now, &desc);
        }
    }

    fn publish_snapshot(&mut self) {
        if let Some(a) = self.auditor.as_ref() {
            // Snapshot outside the critical section: the server reads this
            // mutex from another thread, so the guard should only span the
            // pointer-sized store, not the snapshot build.
            let snap = a.snapshot();
            if let Ok(mut shared) = self.audit_state.lock() {
                *shared = Some(snap);
            }
        }
    }

    fn on_submit(&mut self, r: GenRequest) {
        let now = self.now();
        self.recorder.on_arrival(r.id, now, r.prompt.len());
        if let Some(a) = self.auditor.as_mut() {
            a.on_arrival(r.id);
        }
        if r.prompt.is_empty()
            || r.max_new == 0
            || Tokens(r.prompt.len() + r.max_new) + self.kvm.block_size() > self.kvm.token_capacity()
        {
            if let Some(a) = self.auditor.as_mut() {
                a.on_abort(r.id);
            }
            let _ = self.stream_tx.send(StreamEvent::Rejected { seq: r.id });
            return;
        }
        self.pool.add(r.id, r.prompt.len(), r.max_new);
        self.seqs.insert(r.id, SeqInfo { text: r.prompt, params: r.params });
    }

    fn on_result(&mut self, res: BatchResult) {
        let Some(plan) = self.plans.remove(&res.batch) else {
            // A result for a batch we never scheduled (or already rolled
            // back): drop it rather than panicking; the auditor's
            // completion pairing will flag a genuine gap.
            return;
        };
        let outcome = self.pool.complete(&plan);
        let now = self.now();
        let token_of: HashMap<u64, u32> = res.tokens.into_iter().collect();
        for e in &outcome.emitted {
            let Some(&token) = token_of.get(&e.seq) else { continue };
            self.recorder.on_token(e.seq, now);
            if e.finished {
                self.recorder.on_finish(e.seq, now);
                let _ = self.kvm.free(e.seq);
                self.seqs.remove(&e.seq);
                self.kv_retries.remove(&e.seq);
            } else if let Some(info) = self.seqs.get_mut(&e.seq) {
                info.text.push(token);
            }
            let _ = self
                .stream_tx
                .send(StreamEvent::Token { seq: e.seq, token, finished: e.finished });
        }
        self.in_flight -= 1;
        self.last_progress = Instant::now();
        self.ptrace.complete(now, res.batch, outcome.emitted.len(), outcome.finished.len());
        if let Some(a) = self.auditor.as_mut() {
            a.on_complete(now, res.batch, &outcome.finished, kv_obs(&self.kvm));
        }
        self.publish_snapshot();
    }

    /// Terminate a live, not-in-flight request with a structured failure
    /// event: KV evicted, pool entry dropped, counters updated. The
    /// pipeline keeps serving everyone else.
    fn fail_request(&mut self, seq: u64) {
        let now = self.now();
        if self.kvm.contains(seq) {
            let _ = self.kvm.evict(seq);
            if let Some(a) = self.auditor.as_mut() {
                a.on_evict(seq);
            }
        }
        if self.pool.seq(seq).is_some() {
            self.pool.abort(seq);
        }
        self.seqs.remove(&seq);
        self.kv_retries.remove(&seq);
        self.injector.clear_kv_fault(seq);
        if let Some(a) = self.auditor.as_mut() {
            a.on_request_failed(now, seq);
        }
        self.publish_snapshot();
        let _ = self.stream_tx.send(StreamEvent::Failed { seq });
    }

    /// One scheduling attempt: plan, admit, commit, broadcast, execute
    /// stage 0, hand off (or finish inline on a single-stage pipeline).
    fn schedule_once(&mut self) -> Step {
        let view = self.pool.view(
            self.kvm.free_rate(),
            self.kvm.free_blocks().to_tokens(self.kvm.block_size()),
            self.kvm.block_size(),
            self.depth,
        );
        let kv_before = kv_obs(&self.kvm);
        let caps = self
            .policy
            .budget_caps(&view)
            .map(|(prefill_tokens, decode_seqs)| PlanCaps { prefill_tokens, decode_seqs });
        let proposed = self.policy.plan(&view);

        // Injected KV-allocation failures surface here, where the real
        // reservation would happen: back off and retry the whole round
        // (bounded), then reject the victim request with a structured
        // event while everyone else keeps flowing.
        let planned_seqs = proposed
            .prefill
            .iter()
            .map(|c| c.seq)
            .chain(proposed.decode.iter().map(|d| d.seq));
        let mut kv_victim = None;
        for seq in planned_seqs {
            if self.injector.kv_alloc_should_fail(seq) {
                kv_victim = Some(seq);
                break;
            }
        }
        if let Some(victim) = kv_victim {
            self.drain_fault_log();
            let attempts = self.kv_retries.entry(victim).or_insert(0);
            *attempts += 1;
            if *attempts > self.max_kv_retries
                && self.pool.seq(victim).is_some_and(|s| !s.is_in_flight())
            {
                self.fail_request(victim);
                return Step::Continue; // replan without the victim
            }
            return Step::Idle; // back off; retry next multiplexer turn
        }

        let proposed_copy = self.auditor.as_ref().map(|_| proposed.clone());
        let admission = admit(proposed, &mut self.pool, &mut self.kvm);
        for &victim in &admission.preempted {
            self.recorder.on_preemption(victim);
            let now = self.now();
            self.ptrace.preempt(now, victim);
            if let Some(a) = self.auditor.as_mut() {
                a.on_evict(victim);
            }
        }
        let plan = admission.plan;
        if plan.is_empty() {
            if self.in_flight == 0 && self.pool.has_work() {
                if let Some((victim, _)) = self.pool.preempt_stalled_waiting() {
                    if self.kvm.contains(victim) {
                        let _ = self.kvm.evict(victim);
                    }
                    self.recorder.on_preemption(victim);
                    let now = self.now();
                    self.ptrace.preempt(now, victim);
                    if let Some(a) = self.auditor.as_mut() {
                        a.on_evict(victim);
                    }
                    return Step::Continue;
                }
            }
            return Step::Idle;
        }
        self.pool.commit(&plan);
        let batch = self.next_batch;
        let meta = match build_meta(batch, &plan, &self.pool, &self.kvm, &self.seqs) {
            Ok(meta) => meta,
            Err(e) => {
                // The driver's own bookkeeping is inconsistent for this
                // sequence (a committed chunk without KV or pool entry).
                // Pre-fault-tolerance this was a panic; now the plan rolls
                // back, the offending request fails with an audit
                // violation on record, and the pipeline keeps serving.
                self.pool.uncommit(&plan);
                let now = self.now();
                if let Some(a) = self.auditor.as_mut() {
                    a.on_integrity_failure(now, Some(batch), e.to_string());
                }
                self.fail_request(e.seq);
                return Step::Continue;
            }
        };
        self.next_batch += 1;
        let now = self.now();
        if let (Some(a), Some(proposed)) = (self.auditor.as_mut(), proposed_copy.as_ref()) {
            a.on_schedule(now, batch, proposed, &plan, caps, kv_before, kv_obs(&self.kvm));
        }
        self.publish_snapshot();
        self.ptrace.schedule(
            now,
            batch,
            plan.prefill_tokens().get(),
            plan.decode_tokens().get(),
            plan.num_seqs(),
        );
        // Count the batch in flight *before* any send: if a worker died
        // mid-broadcast, recovery must see this batch among the plans to
        // roll back.
        self.plans.insert(batch, plan);
        self.in_flight += 1;
        // Preemptive metadata: every worker learns the batch layout
        // before any activations move.
        for tx in &self.links.meta_txs {
            if tx.send(WorkerMsg::Batch(meta.clone())).is_err() {
                self.pipeline_down = true;
                return Step::Idle;
            }
        }
        // Stage-0 execution (the driver is a worker too).
        let tables: Vec<_> = meta.tables.iter().collect();
        let stage_start = self.now();
        let mut hidden = self.stage0.embed(&meta.chunks);
        self.stage0.forward(&meta.chunks, &tables, &mut hidden);
        self.ptrace.stage(stage_start, self.now(), batch, 0);
        if self.single_stage {
            // Driver is also the last stage: project, sample, complete.
            let logits = self.stage0.project(&meta.chunks, &hidden);
            let mut tokens = Vec::with_capacity(logits.len());
            let mut li = 0;
            for (ci, chunk) in meta.chunks.iter().enumerate() {
                if !chunk.sample {
                    continue;
                }
                let (seq, lg) = &logits[li];
                li += 1;
                let Some((params, step)) = meta.samples[ci] else { continue };
                tokens.push((*seq, sample(lg, &params, *seq, step)));
            }
            self.on_result(BatchResult { batch, tokens });
            return Step::Continue;
        }
        match self.injector.activation_fate(0, batch) {
            ActivationFate::Drop => {
                // The metadata went out but the activations never will:
                // downstream desynchronises on the next batch, or the
                // heartbeat timeout fires. Either way recovery requeues
                // this batch.
                self.drain_fault_log();
                return Step::Continue;
            }
            ActivationFate::Delay(d) => {
                self.drain_fault_log();
                std::thread::sleep(d);
            }
            ActivationFate::Deliver => {}
        }
        let sent = self
            .links
            .act_tx
            .as_ref()
            .map(|tx| tx.send(Activations { batch, hidden }).is_ok())
            .unwrap_or(false);
        if !sent {
            // Stage 1 hung up: recovery will requeue this batch.
            self.pipeline_down = true;
            return Step::Idle;
        }
        Step::Continue
    }

    /// Tear down, roll back, respawn — see the module docs for the
    /// protocol. Bounded by `max_recoveries`, after which open requests
    /// fail with structured events instead of the run stalling.
    fn recover(&mut self) {
        self.recoveries += 1;
        let now = self.now();
        self.ptrace.fault(now, "pipeline down: tearing down for recovery");
        if let Some(a) = self.auditor.as_mut() {
            a.on_fault(now);
        }

        // 1. Tear down: dropping every sender cascades the workers out.
        let dead = std::mem::replace(&mut self.links, PipelineLinks::empty());
        drop(dead.meta_txs);
        drop(dead.act_tx);
        for h in dead.handles {
            let _ = h.join();
        }
        // 2. Salvage results that escaped before the generation died —
        //    queued messages survive their senders, and with the workers
        //    joined this drain is complete.
        while let Ok(res) = dead.result_rx.try_recv() {
            self.on_result(res);
        }
        // 3. Roll back every batch that will never complete, oldest first.
        let lost: Vec<BatchPlan> = std::mem::take(&mut self.plans).into_values().collect();
        for plan in &lost {
            self.pool.uncommit(plan);
        }
        self.in_flight = 0;
        // 4. All resident KV died with the stages that computed it.
        let mut live = self.kvm.live_sequences();
        live.sort_unstable();
        for seq in live {
            let _ = self.kvm.evict(seq);
            if let Some(a) = self.auditor.as_mut() {
                a.on_evict(seq);
            }
        }
        let reset = self.pool.preempt_all_live();
        let now = self.now();
        for &seq in &reset {
            self.recorder.on_preemption(seq);
            self.ptrace.preempt(now, seq);
        }
        if let Some(a) = self.auditor.as_mut() {
            a.on_recovery(now, lost.len());
        }
        self.ptrace.recovery(now, lost.len(), reset.len());
        self.publish_snapshot();

        // 6. Bounded: past the limit, fail the open requests (the likely
        //    trigger of the repeated failures) instead of stalling the
        //    whole run — then keep serving whatever arrives next.
        if self.recoveries > self.max_recoveries {
            let mut open: Vec<u64> = self.seqs.keys().copied().collect();
            open.sort_unstable();
            for seq in open {
                self.fail_request(seq);
            }
        }

        // 5. Respawn from the same seed: parameter-identical stages.
        self.links = self.spawner.spawn_downstream();
        self.pipeline_down = false;
        self.last_progress = Instant::now();
    }
}

/// Snapshot the KV manager for the auditor.
fn kv_obs(kvm: &KvCacheManager) -> KvObservation {
    let s = kvm.stats();
    KvObservation { free_blocks: s.free_blocks, used_blocks: s.used_blocks }
}

/// A committed plan referenced state the driver does not actually hold —
/// the bookkeeping inconsistency [`build_meta`] reports instead of
/// panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MetaIntegrityError {
    /// The sequence whose state is missing.
    seq: u64,
    /// What was missing.
    what: &'static str,
}

impl std::fmt::Display for MetaIntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "committed chunk for seq {} has no {}", self.seq, self.what)
    }
}

/// Assemble the broadcast metadata for an admitted, committed plan.
/// Every committed chunk must have a live pool entry, its request text
/// and a KV table; a gap is reported as a [`MetaIntegrityError`] so the
/// driver can reject the request instead of crashing the pipeline.
fn build_meta(
    batch: u64,
    plan: &BatchPlan,
    pool: &RequestPool,
    kvm: &KvCacheManager,
    seqs: &HashMap<u64, SeqInfo>,
) -> Result<BatchMeta, MetaIntegrityError> {
    let mut chunks = Vec::with_capacity(plan.num_seqs());
    let mut tables = Vec::with_capacity(plan.num_seqs());
    let mut samples = Vec::with_capacity(plan.num_seqs());
    for c in &plan.prefill {
        let Some(info) = seqs.get(&c.seq) else {
            return Err(MetaIntegrityError { seq: c.seq, what: "request text" });
        };
        let Some(table) = kvm.table(c.seq) else {
            return Err(MetaIntegrityError { seq: c.seq, what: "KV table" });
        };
        let Some(state) = pool.seq(c.seq) else {
            return Err(MetaIntegrityError { seq: c.seq, what: "pool entry" });
        };
        let start = c.context_before.get();
        let end = start + c.tokens.get();
        let Some(text) = info.text.get(start..end) else {
            return Err(MetaIntegrityError { seq: c.seq, what: "prompt text for its chunk range" });
        };
        chunks.push(BatchChunk {
            seq: c.seq,
            start_pos: start,
            tokens: text.to_vec(),
            sample: c.completes_prompt,
        });
        tables.push(table.clone());
        samples.push(c.completes_prompt.then_some((info.params, state.generated)));
    }
    for d in &plan.decode {
        let Some(info) = seqs.get(&d.seq) else {
            return Err(MetaIntegrityError { seq: d.seq, what: "request text" });
        };
        let Some(table) = kvm.table(d.seq) else {
            return Err(MetaIntegrityError { seq: d.seq, what: "KV table" });
        };
        let Some(state) = pool.seq(d.seq) else {
            return Err(MetaIntegrityError { seq: d.seq, what: "pool entry" });
        };
        let start = d.context_before.get();
        let Some(&token) = info.text.get(start) else {
            return Err(MetaIntegrityError { seq: d.seq, what: "text at its decode position" });
        };
        chunks.push(BatchChunk { seq: d.seq, start_pos: start, tokens: vec![token], sample: true });
        tables.push(table.clone());
        samples.push(Some((info.params, state.generated)));
    }
    Ok(BatchMeta { batch, chunks, tables, samples })
}
