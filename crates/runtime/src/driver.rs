//! The driver worker.
//!
//! As in the paper (§3.3), the driver is a full pipeline stage that
//! *additionally* receives requests from the frontend, runs the global
//! scheduler, manages the unified KV cache/page tables, broadcasts batch
//! metadata to every worker and streams sampled tokens back to the
//! frontend. Everything is non-blocking: the driver multiplexes request
//! intake and batch results with `select!` while micro-batches execute on
//! downstream stages.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use gllm_core::{admit, BatchPlan, RequestPool, SchedulePolicy};
use gllm_kvcache::{KvCacheManager, Tokens};
use gllm_metrics::{
    AuditReport, AuditSnapshot, InvariantAuditor, KvObservation, MetricsRecorder, PipelineTrace,
    PlanCaps,
};
use gllm_transformer::model::BatchChunk;
use gllm_transformer::sampler::{sample, SamplingParams};
use gllm_transformer::StageModel;

use crate::messages::{
    Activations, BatchMeta, BatchResult, DriverMsg, GenRequest, StreamEvent, WorkerMsg,
};

/// Per-request bookkeeping the driver keeps beside the pool.
struct SeqInfo {
    /// Full token text: prompt followed by every generated token.
    text: Vec<u32>,
    /// Sampling configuration.
    params: SamplingParams,
}

/// Everything the driver thread hands back at shutdown.
#[derive(Debug)]
pub struct DriverOutput {
    /// Per-request timelines.
    pub recorder: MetricsRecorder,
    /// Invariant-audit report (`None` when auditing was off).
    pub audit: Option<AuditReport>,
    /// Structured per-batch pipeline events (empty unless recording was on).
    pub trace: PipelineTrace,
}

impl DriverOutput {
    /// An output with nothing recorded — what a caller gets when the driver
    /// thread died instead of draining.
    pub fn empty() -> Self {
        Self { recorder: MetricsRecorder::new(), audit: None, trace: PipelineTrace::new(false) }
    }
}

/// The driver loop. Returns the metrics, audit and trace at shutdown.
#[allow(clippy::too_many_arguments)]
pub fn run_driver(
    mut stage0: StageModel,
    policy: Arc<dyn SchedulePolicy>,
    mut kvm: KvCacheManager,
    req_rx: Receiver<DriverMsg>,
    meta_txs: Vec<Sender<WorkerMsg>>,
    act_tx: Option<Sender<Activations>>,
    result_rx: Receiver<BatchResult>,
    stream_tx: Sender<StreamEvent>,
    depth: usize,
    max_seqs_per_batch: usize,
    cpp: bool,
    audit: bool,
    record_trace: bool,
    audit_state: Arc<Mutex<Option<AuditSnapshot>>>,
) -> DriverOutput {
    let t0 = Instant::now();
    let mut pool = RequestPool::new(max_seqs_per_batch).with_cpp(cpp);
    let mut recorder = MetricsRecorder::new();
    let mut seqs: HashMap<u64, SeqInfo> = HashMap::new();
    let mut plans: HashMap<u64, BatchPlan> = HashMap::new();
    let mut next_batch = 0u64;
    let mut in_flight = 0usize;
    let mut shutting_down = false;
    let single_stage = meta_txs.is_empty();
    let mut auditor =
        audit.then(|| InvariantAuditor::new(kvm.stats().total_blocks, kvm.block_size(), depth));
    let mut ptrace = PipelineTrace::new(record_trace);

    loop {
        crossbeam::channel::select! {
            recv(req_rx) -> msg => match msg {
                Ok(DriverMsg::Submit(r)) => on_submit(
                    r, t0, &mut pool, &mut recorder, &mut seqs, &kvm, &stream_tx,
                    &mut auditor,
                ),
                Ok(DriverMsg::Shutdown) | Err(_) => shutting_down = true,
            },
            recv(result_rx) -> res => {
                if let Ok(res) = res {
                    on_result(
                        res, t0, &mut pool, &mut kvm, &mut recorder, &mut seqs,
                        &mut plans, &mut in_flight, &stream_tx, &mut auditor,
                        &mut ptrace, &audit_state,
                    );
                }
            },
            default(Duration::from_millis(1)) => {},
        }
        // Drain whatever else is ready before scheduling.
        while let Ok(msg) = req_rx.try_recv() {
            match msg {
                DriverMsg::Submit(r) => on_submit(
                    r, t0, &mut pool, &mut recorder, &mut seqs, &kvm, &stream_tx,
                    &mut auditor,
                ),
                DriverMsg::Shutdown => shutting_down = true,
            }
        }
        while let Ok(res) = result_rx.try_recv() {
            on_result(
                res, t0, &mut pool, &mut kvm, &mut recorder, &mut seqs, &mut plans,
                &mut in_flight, &stream_tx, &mut auditor, &mut ptrace, &audit_state,
            );
        }

        // Schedule while pipeline slots remain.
        while in_flight < depth {
            let view = pool.view(
                kvm.free_rate(),
                kvm.free_blocks().to_tokens(kvm.block_size()),
                kvm.block_size(),
                depth,
            );
            let kv_before = kv_obs(&kvm);
            let caps = policy
                .budget_caps(&view)
                .map(|(prefill_tokens, decode_seqs)| PlanCaps { prefill_tokens, decode_seqs });
            let proposed = policy.plan(&view);
            let proposed_copy = auditor.as_ref().map(|_| proposed.clone());
            let admission = admit(proposed, &mut pool, &mut kvm);
            for &victim in &admission.preempted {
                recorder.on_preemption(victim);
                ptrace.preempt(t0.elapsed().as_secs_f64(), victim);
                if let Some(a) = auditor.as_mut() {
                    a.on_evict(victim);
                }
            }
            let plan = admission.plan;
            if plan.is_empty() {
                if in_flight == 0 && pool.has_work() {
                    if let Some((victim, _)) = pool.preempt_stalled_waiting() {
                        if kvm.contains(victim) {
                            let _ = kvm.evict(victim);
                        }
                        recorder.on_preemption(victim);
                        ptrace.preempt(t0.elapsed().as_secs_f64(), victim);
                        if let Some(a) = auditor.as_mut() {
                            a.on_evict(victim);
                        }
                        continue;
                    }
                }
                break;
            }
            pool.commit(&plan);
            let batch = next_batch;
            next_batch += 1;
            let now = t0.elapsed().as_secs_f64();
            if let (Some(a), Some(proposed)) = (auditor.as_mut(), proposed_copy.as_ref()) {
                a.on_schedule(now, batch, proposed, &plan, caps, kv_before, kv_obs(&kvm));
                // Snapshot outside the critical section: the server reads
                // this mutex from another thread, so the guard should only
                // span the pointer-sized store, not the snapshot build.
                let snap = a.snapshot();
                if let Ok(mut shared) = audit_state.lock() {
                    *shared = Some(snap);
                }
            }
            ptrace.schedule(
                now,
                batch,
                plan.prefill_tokens().get(),
                plan.decode_tokens().get(),
                plan.num_seqs(),
            );
            let meta = build_meta(batch, &plan, &pool, &kvm, &seqs);
            // Preemptive metadata: every worker learns the batch layout
            // before any activations move. A hung-up worker means the
            // pipeline is tearing down — stop scheduling instead of
            // panicking.
            let mut worker_gone = false;
            for tx in &meta_txs {
                if tx.send(WorkerMsg::Batch(meta.clone())).is_err() {
                    worker_gone = true;
                }
            }
            if worker_gone {
                shutting_down = true;
                break;
            }
            // Stage-0 execution (the driver is a worker too).
            let tables: Vec<_> = meta.tables.iter().collect();
            let stage_start = t0.elapsed().as_secs_f64();
            let mut hidden = stage0.embed(&meta.chunks);
            stage0.forward(&meta.chunks, &tables, &mut hidden);
            ptrace.stage(stage_start, t0.elapsed().as_secs_f64(), batch, 0);
            plans.insert(batch, plan);
            in_flight += 1;
            if single_stage {
                // Driver is also the last stage: project, sample, complete.
                let logits = stage0.project(&meta.chunks, &hidden);
                let mut tokens = Vec::with_capacity(logits.len());
                let mut li = 0;
                for (ci, chunk) in meta.chunks.iter().enumerate() {
                    if !chunk.sample {
                        continue;
                    }
                    let (seq, lg) = &logits[li];
                    li += 1;
                    let Some((params, step)) = meta.samples[ci] else { continue };
                    tokens.push((*seq, sample(lg, &params, *seq, step)));
                }
                on_result(
                    BatchResult { batch, tokens },
                    t0, &mut pool, &mut kvm, &mut recorder, &mut seqs, &mut plans,
                    &mut in_flight, &stream_tx, &mut auditor, &mut ptrace, &audit_state,
                );
            } else {
                let sent = act_tx
                    .as_ref()
                    .map(|tx| tx.send(Activations { batch, hidden }).is_ok())
                    .unwrap_or(false);
                if !sent {
                    // Stage 1 hung up: the batch will never complete, so
                    // un-count it before tearing down or the drain loop
                    // would wait forever.
                    plans.remove(&batch);
                    in_flight -= 1;
                    shutting_down = true;
                    break;
                }
            }
        }

        if shutting_down && in_flight == 0 {
            break;
        }
    }
    for tx in &meta_txs {
        let _ = tx.send(WorkerMsg::Shutdown);
    }
    let drained = !pool.has_work();
    DriverOutput {
        recorder,
        audit: auditor.map(|a| a.into_report(drained)),
        trace: ptrace,
    }
}

/// Snapshot the KV manager for the auditor.
fn kv_obs(kvm: &KvCacheManager) -> KvObservation {
    let s = kvm.stats();
    KvObservation { free_blocks: s.free_blocks, used_blocks: s.used_blocks }
}

#[allow(clippy::too_many_arguments)]
fn on_submit(
    r: GenRequest,
    t0: Instant,
    pool: &mut RequestPool,
    recorder: &mut MetricsRecorder,
    seqs: &mut HashMap<u64, SeqInfo>,
    kvm: &KvCacheManager,
    stream_tx: &Sender<StreamEvent>,
    auditor: &mut Option<InvariantAuditor>,
) {
    let now = t0.elapsed().as_secs_f64();
    recorder.on_arrival(r.id, now, r.prompt.len());
    if let Some(a) = auditor.as_mut() {
        a.on_arrival(r.id);
    }
    if r.prompt.is_empty()
        || r.max_new == 0
        || Tokens(r.prompt.len() + r.max_new) + kvm.block_size() > kvm.token_capacity()
    {
        if let Some(a) = auditor.as_mut() {
            a.on_abort(r.id);
        }
        let _ = stream_tx.send(StreamEvent::Rejected { seq: r.id });
        return;
    }
    pool.add(r.id, r.prompt.len(), r.max_new);
    seqs.insert(r.id, SeqInfo { text: r.prompt, params: r.params });
}

#[allow(clippy::too_many_arguments)]
fn on_result(
    res: BatchResult,
    t0: Instant,
    pool: &mut RequestPool,
    kvm: &mut KvCacheManager,
    recorder: &mut MetricsRecorder,
    seqs: &mut HashMap<u64, SeqInfo>,
    plans: &mut HashMap<u64, BatchPlan>,
    in_flight: &mut usize,
    stream_tx: &Sender<StreamEvent>,
    auditor: &mut Option<InvariantAuditor>,
    ptrace: &mut PipelineTrace,
    audit_state: &Mutex<Option<AuditSnapshot>>,
) {
    let Some(plan) = plans.remove(&res.batch) else {
        // A result for a batch we never scheduled: drop it rather than
        // panicking; the auditor's completion pairing will flag the gap.
        return;
    };
    let outcome = pool.complete(&plan);
    let now = t0.elapsed().as_secs_f64();
    let token_of: HashMap<u64, u32> = res.tokens.into_iter().collect();
    for e in &outcome.emitted {
        let Some(&token) = token_of.get(&e.seq) else { continue };
        recorder.on_token(e.seq, now);
        if e.finished {
            recorder.on_finish(e.seq, now);
            let _ = kvm.free(e.seq);
            seqs.remove(&e.seq);
        } else if let Some(info) = seqs.get_mut(&e.seq) {
            info.text.push(token);
        }
        let _ = stream_tx.send(StreamEvent::Token { seq: e.seq, token, finished: e.finished });
    }
    *in_flight -= 1;
    ptrace.complete(now, res.batch, outcome.emitted.len(), outcome.finished.len());
    if let Some(a) = auditor.as_mut() {
        a.on_complete(now, res.batch, &outcome.finished, kv_obs(kvm));
        // Same narrow-guard rule as the schedule path: build the snapshot
        // first, hold the lock only for the store.
        let snap = a.snapshot();
        if let Ok(mut shared) = audit_state.lock() {
            *shared = Some(snap);
        }
    }
}

/// Assemble the broadcast metadata for an admitted, committed plan.
fn build_meta(
    batch: u64,
    plan: &BatchPlan,
    pool: &RequestPool,
    kvm: &KvCacheManager,
    seqs: &HashMap<u64, SeqInfo>,
) -> BatchMeta {
    let mut chunks = Vec::with_capacity(plan.num_seqs());
    let mut tables = Vec::with_capacity(plan.num_seqs());
    let mut samples = Vec::with_capacity(plan.num_seqs());
    for c in &plan.prefill {
        let info = &seqs[&c.seq];
        let start = c.context_before.get();
        chunks.push(BatchChunk {
            seq: c.seq,
            start_pos: start,
            tokens: info.text[start..start + c.tokens.get()].to_vec(),
            sample: c.completes_prompt,
        });
        // lint:allow(panic-freedom): commit admitted this chunk, so its KV and pool entry exist
        tables.push(kvm.table(c.seq).expect("admitted chunk has KV").clone());
        samples.push(c.completes_prompt.then(|| {
            // lint:allow(panic-freedom): committed chunks always have a live pool entry
            (info.params, pool.seq(c.seq).expect("live").generated)
        }));
    }
    for d in &plan.decode {
        let info = &seqs[&d.seq];
        let start = d.context_before.get();
        chunks.push(BatchChunk {
            seq: d.seq,
            start_pos: start,
            tokens: vec![info.text[start]],
            sample: true,
        });
        // lint:allow(panic-freedom): commit admitted this slot, so its KV and pool entry exist
        tables.push(kvm.table(d.seq).expect("admitted slot has KV").clone());
        // lint:allow(panic-freedom): committed slots always have a live pool entry
        samples.push(Some((info.params, pool.seq(d.seq).expect("live").generated)));
    }
    BatchMeta { batch, chunks, tables, samples }
}
