//! The gLLM asynchronous serving runtime (§3.3), as threads.
//!
//! The paper's runtime is a multi-process system: a frontend process for
//! user interaction, a *driver worker* that schedules micro-batches, owns
//! the KV cache and broadcasts metadata, and *ordinary workers* that
//! execute pipeline stages, passing activations point-to-point. This crate
//! reproduces that architecture with OS threads and crossbeam channels
//! (standing in for ZeroMQ metadata sockets and NCCL activation streams):
//!
//! * **Non-blocking pipeline operations** — workers block only on their own
//!   inputs; the driver multiplexes request intake and batch results with
//!   `select!`, never stalling the pipeline.
//! * **Decoupled frontend–backend processing** — callers talk to the
//!   [`server::Server`] handle over channels; token streaming is
//!   independent of model execution.
//! * **Preemptive metadata scheduling** — the driver broadcasts each
//!   micro-batch's metadata (chunk composition + page tables) to *all*
//!   stages at schedule time, so a worker can prepare before the previous
//!   stage's activations arrive.
//!
//! Execution is real: every stage runs `gllm-transformer` layers, and the
//! scheduler driving it is the *same* `gllm-core` policy object the
//! simulator benchmarks — which is how the repository ties the performance
//! claims to functional correctness.
//!
//! The runtime is additionally *fault tolerant*: a seeded [`FaultPlan`]
//! can kill workers, drop or delay activations and fail KV reservations,
//! and the driver detects the damage, rolls in-flight batches back,
//! respawns the dead stages from the same weight seed and recomputes —
//! producing output bit-identical to the fault-free run (see
//! [`fault`] and the chaos test suite).

pub mod driver;
pub mod fault;
pub mod messages;
pub mod server;
pub mod worker;

pub use fault::{FaultInjector, FaultKind, FaultParseError, FaultPlan};
pub use messages::{GenRequest, StreamEvent};
pub use server::{ConfigError, RuntimeConfig, Server, StallError, SubmitError, Submitter};
