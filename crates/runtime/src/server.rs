//! The serving frontend: spawn, submit, stream, shut down.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gllm_core::SchedulePolicy;
use gllm_kvcache::KvCacheManager;
use gllm_metrics::MetricsRecorder;
use gllm_model::ModelConfig;
use gllm_transformer::StageModel;

use crate::driver::run_driver;
use crate::messages::{DriverMsg, GenRequest, StreamEvent};
use crate::worker::{run_worker, StageOutput};

/// Deployment parameters of a threaded serving instance.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The transformer to serve.
    pub model: ModelConfig,
    /// Pipeline stages (threads); 1 collapses to a single-worker engine.
    pub num_stages: usize,
    /// KV blocks.
    pub kv_blocks: usize,
    /// Tokens per KV block.
    pub block_size: usize,
    /// Per-batch sequence cap.
    pub max_seqs_per_batch: usize,
    /// Weight seed (same seed + model = same parameters at any stage
    /// count).
    pub seed: u64,
    /// Chunked pipeline parallelism: overlap a request's prefill chunks
    /// across stages (§3.4). Outputs are bit-identical either way.
    pub cpp: bool,
}

impl RuntimeConfig {
    /// A small default around the tiny test model.
    pub fn tiny(num_stages: usize) -> Self {
        Self {
            model: ModelConfig::tiny(),
            num_stages,
            kv_blocks: 256,
            block_size: 4,
            max_seqs_per_batch: 64,
            seed: 2024,
            cpp: false,
        }
    }
}

/// A cloneable handle that can submit requests to a running [`Server`].
#[derive(Clone)]
pub struct Submitter {
    req_tx: Sender<DriverMsg>,
}

impl Submitter {
    /// Submit a generation request.
    pub fn submit(&self, req: GenRequest) {
        self.req_tx
            .send(DriverMsg::Submit(req))
            .expect("driver hung up");
    }
}

/// A running serving instance: frontend handle to the driver + workers.
pub struct Server {
    req_tx: Sender<DriverMsg>,
    stream_rx: Receiver<StreamEvent>,
    driver: Option<JoinHandle<MetricsRecorder>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawn the driver and one worker thread per remaining stage.
    pub fn start(cfg: RuntimeConfig, policy: Arc<dyn SchedulePolicy>) -> Self {
        assert!(cfg.num_stages >= 1 && cfg.num_stages <= cfg.model.num_layers);
        let kv_slots = cfg.kv_blocks * cfg.block_size;

        // Even layer partition, remainder to early stages.
        let layers = cfg.model.num_layers;
        let per = layers / cfg.num_stages;
        let extra = layers % cfg.num_stages;
        let mut ranges = Vec::with_capacity(cfg.num_stages);
        let mut start = 0;
        for s in 0..cfg.num_stages {
            let len = per + usize::from(s < extra);
            ranges.push(start..start + len);
            start += len;
        }

        let (req_tx, req_rx) = unbounded();
        let (stream_tx, stream_rx) = unbounded();
        let (result_tx, result_rx) = unbounded();

        // Wire workers 1..S: a metadata channel each (driver broadcast),
        // and an activation chain driver → 1 → 2 → … → S−1 → results.
        let mut meta_txs = Vec::with_capacity(cfg.num_stages.saturating_sub(1));
        let mut workers = Vec::with_capacity(cfg.num_stages.saturating_sub(1));
        let mut first_act_tx = None;
        let mut next_act_rx: Option<Receiver<_>> = None;
        for s in 1..cfg.num_stages {
            let (meta_tx, meta_rx) = unbounded();
            meta_txs.push(meta_tx);
            let act_rx = if s == 1 {
                let (tx, rx) = unbounded();
                first_act_tx = Some(tx);
                rx
            } else {
                next_act_rx.take().expect("previous stage wired")
            };
            let is_last = s + 1 == cfg.num_stages;
            let output = if is_last {
                StageOutput::Result(result_tx.clone())
            } else {
                let (tx, rx) = unbounded();
                next_act_rx = Some(rx);
                StageOutput::Next(tx)
            };
            let stage = StageModel::new(
                cfg.model.clone(),
                ranges[s].clone(),
                kv_slots,
                cfg.seed,
                false,
                is_last,
            );
            workers.push(std::thread::spawn(move || run_worker(stage, meta_rx, act_rx, output)));
        }

        let stage0 = StageModel::new(
            cfg.model.clone(),
            ranges[0].clone(),
            kv_slots,
            cfg.seed,
            true,
            cfg.num_stages == 1,
        );
        let kvm = KvCacheManager::new(cfg.kv_blocks, cfg.block_size);
        let depth = cfg.num_stages;
        let max_seqs = cfg.max_seqs_per_batch;
        let cpp = cfg.cpp;
        let driver = std::thread::spawn(move || {
            run_driver(
                stage0, policy, kvm, req_rx, meta_txs, first_act_tx, result_rx, stream_tx,
                depth, max_seqs, cpp,
            )
        });

        Self { req_tx, stream_rx, driver: Some(driver), workers }
    }

    /// Submit a generation request.
    pub fn submit(&self, req: GenRequest) {
        self.req_tx
            .send(DriverMsg::Submit(req))
            .expect("driver hung up");
    }

    /// A cloneable submission handle usable from other threads (e.g. HTTP
    /// connection handlers) while the server itself lives elsewhere.
    pub fn submitter(&self) -> Submitter {
        Submitter { req_tx: self.req_tx.clone() }
    }

    /// Wait up to `timeout` for the next stream event.
    pub fn next_event(&self, timeout: Duration) -> Option<StreamEvent> {
        self.stream_rx.recv_timeout(timeout).ok()
    }

    /// Submit `reqs` and block until each finishes (or is rejected),
    /// returning the generated tokens per request id. Rejected requests
    /// map to an empty vector.
    pub fn generate_all(&self, reqs: Vec<GenRequest>) -> HashMap<u64, Vec<u32>> {
        let mut out: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut open = reqs.len();
        for r in reqs {
            out.insert(r.id, Vec::new());
            self.submit(r);
        }
        while open > 0 {
            match self.next_event(Duration::from_secs(60)) {
                Some(StreamEvent::Token { seq, token, finished }) => {
                    out.get_mut(&seq).expect("event for unknown request").push(token);
                    if finished {
                        open -= 1;
                    }
                }
                Some(StreamEvent::Rejected { seq }) => {
                    out.get_mut(&seq).expect("event for unknown request").clear();
                    open -= 1;
                }
                None => panic!("runtime stalled: no events within 60 s"),
            }
        }
        out
    }

    /// Drain in-flight work, stop every thread and return the driver's
    /// metrics.
    pub fn shutdown(mut self) -> MetricsRecorder {
        let _ = self.req_tx.send(DriverMsg::Shutdown);
        let recorder = self
            .driver
            .take()
            .expect("driver joined once")
            .join()
            .expect("driver panicked");
        for w in self.workers.drain(..) {
            w.join().expect("worker panicked");
        }
        recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_core::sarathi::SarathiServe;
    use gllm_core::throttle::TokenThrottle;
    use gllm_transformer::sampler::SamplingParams;
    use gllm_transformer::CausalLM;

    fn req(id: u64, prompt: Vec<u32>, max_new: usize) -> GenRequest {
        GenRequest { id, prompt, max_new, params: SamplingParams::greedy() }
    }

    fn reference_generation(prompt: &[u32], max_new: usize) -> Vec<u32> {
        let mut lm = CausalLM::new(ModelConfig::tiny(), 1, 256, 4, 2024);
        lm.generate(99, prompt, max_new, 1024, &SamplingParams::greedy()).unwrap()
    }

    #[test]
    fn single_stage_runtime_matches_reference_model() {
        let server = Server::start(RuntimeConfig::tiny(1), Arc::new(TokenThrottle::default()));
        let out = server.generate_all(vec![req(1, vec![5, 9, 33, 120, 7], 10)]);
        let rec = server.shutdown();
        assert_eq!(out[&1], reference_generation(&[5, 9, 33, 120, 7], 10));
        assert_eq!(rec.finished_count(), 1);
    }

    #[test]
    fn pipelined_runtime_matches_reference_model() {
        let server = Server::start(RuntimeConfig::tiny(4), Arc::new(TokenThrottle::default()));
        let out = server.generate_all(vec![req(1, vec![5, 9, 33, 120, 7], 10)]);
        server.shutdown();
        assert_eq!(out[&1], reference_generation(&[5, 9, 33, 120, 7], 10));
    }

    #[test]
    fn scheduler_choice_does_not_change_outputs() {
        // The Table 1 claim: gLLM's throttled scheduling and Sarathi's
        // coupled scheduling generate identical text.
        let prompts: Vec<Vec<u32>> = (0..6)
            .map(|i| (0..5 + i).map(|j| ((j * 37 + i * 11) % 256) as u32).collect())
            .collect();
        let reqs = |_: &str| -> Vec<GenRequest> {
            prompts.iter().enumerate().map(|(i, p)| req(i as u64, p.clone(), 8)).collect()
        };
        let a = Server::start(RuntimeConfig::tiny(2), Arc::new(TokenThrottle::default()));
        let out_throttle = a.generate_all(reqs("gllm"));
        a.shutdown();
        let b = Server::start(RuntimeConfig::tiny(2), Arc::new(SarathiServe::default()));
        let out_sarathi = b.generate_all(reqs("sarathi"));
        b.shutdown();
        assert_eq!(out_throttle, out_sarathi);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out_throttle[&(i as u64)], reference_generation(p, 8), "req {i}");
        }
    }

    #[test]
    fn concurrent_requests_all_complete_with_correct_lengths() {
        let server = Server::start(RuntimeConfig::tiny(2), Arc::new(TokenThrottle::default()));
        let reqs: Vec<GenRequest> = (0..10)
            .map(|i| req(i, vec![(i % 250) as u32 + 1; 3 + (i as usize % 5)], 4 + (i as usize % 7)))
            .collect();
        let expected: Vec<usize> = reqs.iter().map(|r| r.max_new).collect();
        let out = server.generate_all(reqs);
        let rec = server.shutdown();
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(out[&(i as u64)].len(), *want, "request {i}");
        }
        assert_eq!(rec.finished_count(), 10);
        // Wall-clock metrics are sane.
        for (_, tl) in rec.timelines() {
            assert!(tl.ttft().unwrap() >= 0.0);
            assert!(tl.e2el().unwrap() >= tl.ttft().unwrap());
        }
    }

    #[test]
    fn cpp_runtime_produces_identical_outputs() {
        // Chunk overlap across stages must not change a single token.
        let prompts: Vec<Vec<u32>> = (0..4)
            .map(|i| (0..30 + i * 5).map(|j| ((j * 13 + i * 7) % 256) as u32).collect())
            .collect();
        let reqs: Vec<GenRequest> =
            prompts.iter().enumerate().map(|(i, p)| req(i as u64, p.clone(), 6)).collect();
        // Small chunks force multi-chunk prefills.
        let policy = || Arc::new(SarathiServe::new(16));
        let classic = Server::start(RuntimeConfig::tiny(3), policy());
        let out_classic = classic.generate_all(reqs.clone());
        classic.shutdown();
        let cpp_cfg = RuntimeConfig { cpp: true, ..RuntimeConfig::tiny(3) };
        let with_cpp = Server::start(cpp_cfg, policy());
        let out_cpp = with_cpp.generate_all(reqs);
        with_cpp.shutdown();
        assert_eq!(out_classic, out_cpp, "CPP changed generated tokens");
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out_cpp[&(i as u64)], reference_generation(p, 6), "request {i}");
        }
    }

    #[test]
    fn oversized_request_is_rejected() {
        let server = Server::start(RuntimeConfig::tiny(1), Arc::new(TokenThrottle::default()));
        // Capacity is 256 blocks × 4 = 1024 tokens.
        let out = server.generate_all(vec![req(1, vec![1; 2000], 10), req(2, vec![1, 2, 3], 3)]);
        server.shutdown();
        assert!(out[&1].is_empty(), "oversized request must be rejected");
        assert_eq!(out[&2].len(), 3);
    }

    #[test]
    fn kv_pressure_preempts_and_recomputes_without_changing_outputs() {
        // Tiny cache: 16 blocks × 4 = 64 tokens for 4 requests needing
        // 4 × (10 + 8) = 72 tokens at peak.
        let cfg = RuntimeConfig {
            kv_blocks: 16,
            ..RuntimeConfig::tiny(2)
        };
        let prompts: Vec<Vec<u32>> =
            (0..4).map(|i| (0..10).map(|j| ((i * 31 + j * 7) % 256) as u32).collect()).collect();
        let server = Server::start(cfg, Arc::new(SarathiServe::default()));
        let out = server.generate_all(
            prompts.iter().enumerate().map(|(i, p)| req(i as u64, p.clone(), 8)).collect(),
        );
        let rec = server.shutdown();
        assert_eq!(rec.finished_count(), 4);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out[&(i as u64)], reference_generation(p, 8), "request {i}");
        }
    }
}
