//! The serving frontend: spawn, submit, stream, shut down.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use gllm_core::SchedulePolicy;
use gllm_kvcache::{Blocks, KvCacheManager, Tokens};
use gllm_metrics::{AuditSnapshot, MetricsRecorder};
use gllm_model::ModelConfig;
use gllm_transformer::StageModel;

use crate::driver::{run_driver, DriverOutput, DriverParams};
use crate::fault::{FaultInjector, FaultPlan};
use crate::messages::{DriverMsg, GenRequest, StreamEvent};
use crate::worker::StageSpawner;

/// Deployment parameters of a threaded serving instance.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The transformer to serve.
    pub model: ModelConfig,
    /// Pipeline stages (threads); 1 collapses to a single-worker engine.
    pub num_stages: usize,
    /// KV blocks.
    pub kv_blocks: usize,
    /// Tokens per KV block.
    pub block_size: usize,
    /// Per-batch sequence cap.
    pub max_seqs_per_batch: usize,
    /// Weight seed (same seed + model = same parameters at any stage
    /// count).
    pub seed: u64,
    /// Chunked pipeline parallelism: overlap a request's prefill chunks
    /// across stages (§3.4). Outputs are bit-identical either way.
    pub cpp: bool,
    /// Run the invariant auditor on every schedule/complete transition.
    /// Cheap (shadow counters only) and on by default.
    pub audit: bool,
    /// Record the structured pipeline trace (schedule/stage/complete
    /// events; exportable as a Chrome trace).
    pub record_trace: bool,
    /// How long [`Server::generate_all`] waits without any stream event
    /// before declaring the runtime stalled.
    pub stall_timeout: Duration,
    /// Faults to inject into this run (empty = none). Used by the chaos
    /// suite and the `--fault-plan` CLI flag.
    pub fault_plan: FaultPlan,
    /// Full pipeline recoveries the driver attempts before failing the
    /// open requests with structured [`StreamEvent::Failed`] events.
    pub max_recoveries: usize,
    /// KV-reservation retries per request before a structured failure.
    pub max_kv_retries: usize,
    /// Heartbeat window: batches in flight with no completion for this
    /// long is treated as a wedged pipeline and triggers recovery.
    pub batch_timeout: Duration,
}

impl RuntimeConfig {
    /// A small default around the tiny test model.
    pub fn tiny(num_stages: usize) -> Self {
        Self {
            model: ModelConfig::tiny(),
            num_stages,
            kv_blocks: 256,
            block_size: 4,
            max_seqs_per_batch: 64,
            seed: 2024,
            cpp: false,
            audit: true,
            record_trace: false,
            stall_timeout: Duration::from_secs(60),
            fault_plan: FaultPlan::none(),
            max_recoveries: 8,
            max_kv_retries: 4,
            batch_timeout: Duration::from_secs(5),
        }
    }
}

/// A [`RuntimeConfig`] that cannot be served. Returned by
/// [`Server::start`] instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_stages` was zero.
    NoStages,
    /// More stages than the model has layers to distribute.
    MoreStagesThanLayers {
        /// Requested stage count.
        stages: usize,
        /// Layers available.
        layers: usize,
    },
    /// The KV cache would hold zero tokens (`kv_blocks` or `block_size`
    /// was zero).
    EmptyKvCache,
    /// `max_seqs_per_batch` was zero: nothing could ever be scheduled.
    ZeroBatchCap,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoStages => write!(f, "num_stages must be at least 1"),
            ConfigError::MoreStagesThanLayers { stages, layers } => {
                write!(f, "{stages} pipeline stages over a {layers}-layer model")
            }
            ConfigError::EmptyKvCache => {
                write!(f, "KV cache holds zero tokens (kv_blocks and block_size must be positive)")
            }
            ConfigError::ZeroBatchCap => write!(f, "max_seqs_per_batch must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The runtime stopped producing stream events for a full timeout window.
///
/// Carries the auditor's last snapshot (when auditing is on) so a stall is
/// diagnosable post-mortem: how many batches were in flight, what the KV
/// shadow accounting looked like, and any violations detected before the
/// pipeline wedged.
#[derive(Debug, Clone)]
pub struct StallError {
    /// How long we waited for the next event.
    pub waited: Duration,
    /// Requests still open (submitted, neither finished nor rejected).
    pub pending: usize,
    /// True when the driver hung up (channel closed) rather than timing
    /// out while alive.
    pub disconnected: bool,
    /// The auditor's state as of the last schedule/complete transition.
    /// Boxed: the snapshot (with its fault/recovery counters) dominates
    /// the error's size, and `Result<_, StallError>` travels by value.
    pub snapshot: Option<Box<AuditSnapshot>>,
}

impl std::fmt::Display for StallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.disconnected {
            write!(f, "runtime disconnected: driver hung up with {} request(s) pending", self.pending)?;
        } else {
            write!(
                f,
                "runtime stalled: no stream events within {:.1} s with {} request(s) pending",
                self.waited.as_secs_f64(),
                self.pending
            )?;
        }
        match &self.snapshot {
            Some(s) => write!(
                f,
                " (audit: {} batches checked, {} in flight, {} violations)",
                s.batches_checked,
                s.in_flight,
                s.violations
            ),
            None => write!(f, " (audit off)"),
        }
    }
}

impl std::error::Error for StallError {}

/// A cloneable handle that can submit requests to a running [`Server`].
#[derive(Clone)]
pub struct Submitter {
    req_tx: Sender<DriverMsg>,
}

impl Submitter {
    /// Submit a generation request. Fails when the driver has shut down
    /// (or died) and will never serve it.
    pub fn submit(&self, req: GenRequest) -> Result<(), SubmitError> {
        self.req_tx.send(DriverMsg::Submit(req)).map_err(|_| SubmitError)
    }
}

/// The driver is no longer accepting requests: the server was shut down or
/// its thread died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitError;

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "driver disconnected: request was not submitted")
    }
}

impl std::error::Error for SubmitError {}

/// A running serving instance: frontend handle to the driver + workers.
///
/// The driver thread owns the downstream worker generation (it must, to
/// tear them down and respawn them on failure), so this handle only joins
/// the driver at shutdown.
pub struct Server {
    req_tx: Sender<DriverMsg>,
    stream_rx: Receiver<StreamEvent>,
    driver: Option<JoinHandle<DriverOutput>>,
    audit_state: Arc<Mutex<Option<AuditSnapshot>>>,
    stall_timeout: Duration,
}

impl Server {
    /// Validate the config, spawn the driver and one worker thread per
    /// remaining stage.
    pub fn start(
        cfg: RuntimeConfig,
        policy: Arc<dyn SchedulePolicy>,
    ) -> Result<Self, ConfigError> {
        if cfg.num_stages == 0 {
            return Err(ConfigError::NoStages);
        }
        if cfg.num_stages > cfg.model.num_layers {
            return Err(ConfigError::MoreStagesThanLayers {
                stages: cfg.num_stages,
                layers: cfg.model.num_layers,
            });
        }
        if cfg.kv_blocks == 0 || cfg.block_size == 0 {
            return Err(ConfigError::EmptyKvCache);
        }
        if cfg.max_seqs_per_batch == 0 {
            return Err(ConfigError::ZeroBatchCap);
        }
        let kv_slots = cfg.kv_blocks * cfg.block_size;

        // Even layer partition, remainder to early stages.
        let layers = cfg.model.num_layers;
        let per = layers / cfg.num_stages;
        let extra = layers % cfg.num_stages;
        let mut ranges = Vec::with_capacity(cfg.num_stages);
        let mut start = 0;
        for s in 0..cfg.num_stages {
            let len = per + usize::from(s < extra);
            ranges.push(start..start + len);
            start += len;
        }

        let (req_tx, req_rx) = unbounded();
        let (stream_tx, stream_rx) = unbounded();

        let stage0 = StageModel::new(
            cfg.model.clone(),
            ranges.first().cloned().unwrap_or(0..0),
            kv_slots,
            cfg.seed,
            true,
            cfg.num_stages == 1,
        );
        let injector = FaultInjector::new(&cfg.fault_plan);
        let spawner = StageSpawner::new(
            cfg.model.clone(),
            ranges,
            kv_slots,
            cfg.seed,
            injector.clone(),
        );
        let links = spawner.spawn_downstream();
        let kvm = KvCacheManager::new(Blocks(cfg.kv_blocks), Tokens(cfg.block_size));
        let audit_state = Arc::new(Mutex::new(None));
        let params = DriverParams {
            stage0,
            policy,
            kvm,
            req_rx,
            links,
            spawner,
            stream_tx,
            depth: cfg.num_stages,
            max_seqs_per_batch: cfg.max_seqs_per_batch,
            cpp: cfg.cpp,
            audit: cfg.audit,
            record_trace: cfg.record_trace,
            audit_state: Arc::clone(&audit_state),
            injector,
            max_recoveries: cfg.max_recoveries,
            max_kv_retries: cfg.max_kv_retries,
            batch_timeout: cfg.batch_timeout,
        };
        let driver = std::thread::spawn(move || run_driver(params));

        Ok(Self {
            req_tx,
            stream_rx,
            driver: Some(driver),
            audit_state,
            stall_timeout: cfg.stall_timeout,
        })
    }

    /// Submit a generation request. Fails when the driver has shut down
    /// (or died) and will never serve it.
    pub fn submit(&self, req: GenRequest) -> Result<(), SubmitError> {
        self.req_tx.send(DriverMsg::Submit(req)).map_err(|_| SubmitError)
    }

    /// A cloneable submission handle usable from other threads (e.g. HTTP
    /// connection handlers) while the server itself lives elsewhere.
    pub fn submitter(&self) -> Submitter {
        Submitter { req_tx: self.req_tx.clone() }
    }

    /// Wait up to `timeout` for the next stream event.
    pub fn next_event(&self, timeout: Duration) -> Option<StreamEvent> {
        self.stream_rx.recv_timeout(timeout).ok()
    }

    /// The auditor's state as of the last schedule/complete transition
    /// (`None` before the first batch or when auditing is off).
    pub fn audit_snapshot(&self) -> Option<AuditSnapshot> {
        // A driver panic poisons this mutex, and that is exactly when the
        // snapshot matters most (it feeds StallError post-mortems): recover
        // the data instead of returning None on poison.
        self.audit_state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Submit `reqs` and block until each finishes (or is rejected, or
    /// fails), returning the generated tokens per request id. Rejected and
    /// failed requests map to an empty vector.
    ///
    /// Errors with [`StallError`] — carrying the auditor's last snapshot —
    /// if no stream event arrives within the configured stall timeout.
    pub fn generate_all(
        &self,
        reqs: Vec<GenRequest>,
    ) -> Result<BTreeMap<u64, Vec<u32>>, StallError> {
        let mut out: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut open = reqs.len();
        for r in reqs {
            out.insert(r.id, Vec::new());
            if self.submit(r).is_err() {
                return Err(StallError {
                    waited: Duration::ZERO,
                    pending: open,
                    disconnected: true,
                    snapshot: self.audit_snapshot().map(Box::new),
                });
            }
        }
        while open > 0 {
            match self.next_event(self.stall_timeout) {
                Some(StreamEvent::Token { seq, token, finished }) => {
                    // Events for ids we never submitted (e.g. leftovers
                    // from an earlier call on the same server) are skipped
                    // rather than panicking.
                    if let Some(toks) = out.get_mut(&seq) {
                        toks.push(token);
                        if finished {
                            open -= 1;
                        }
                    }
                }
                Some(StreamEvent::Rejected { seq }) => {
                    if let Some(toks) = out.get_mut(&seq) {
                        toks.clear();
                        open -= 1;
                    }
                }
                Some(StreamEvent::Failed { seq }) => {
                    // Structured failure: any tokens streamed before the
                    // failure are discarded, as the event contract demands.
                    if let Some(toks) = out.get_mut(&seq) {
                        toks.clear();
                        open -= 1;
                    }
                }
                None => {
                    return Err(StallError {
                        waited: self.stall_timeout,
                        pending: open,
                        disconnected: false,
                        snapshot: self.audit_snapshot().map(Box::new),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Drain in-flight work, stop every thread and return everything the
    /// driver produced: metrics, audit report and pipeline trace. Does
    /// *not* assert audit cleanliness — callers inspect the report.
    pub fn shutdown_full(mut self) -> DriverOutput {
        let _ = self.req_tx.send(DriverMsg::Shutdown);
        match self.driver.take().map(JoinHandle::join) {
            Some(Ok(out)) => out,
            // A dead driver yields an empty output instead of re-raising
            // its panic on the caller's thread.
            Some(Err(_)) | None => DriverOutput::empty(),
        }
    }

    /// Drain in-flight work, stop every thread and return the driver's
    /// metrics. Panics if the invariant auditor detected any violation.
    pub fn shutdown(self) -> MetricsRecorder {
        let out = self.shutdown_full();
        if let Some(audit) = &out.audit {
            audit.assert_clean("runtime");
        }
        out.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_core::sarathi::SarathiServe;
    use gllm_core::throttle::TokenThrottle;
    use gllm_transformer::sampler::SamplingParams;
    use gllm_transformer::CausalLM;

    fn req(id: u64, prompt: Vec<u32>, max_new: usize) -> GenRequest {
        GenRequest { id, prompt, max_new, params: SamplingParams::greedy() }
    }

    fn start(cfg: RuntimeConfig, policy: Arc<dyn SchedulePolicy>) -> Server {
        Server::start(cfg, policy).expect("valid config")
    }

    fn reference_generation(prompt: &[u32], max_new: usize) -> Vec<u32> {
        let mut lm = CausalLM::new(ModelConfig::tiny(), 1, 256, 4, 2024);
        lm.generate(99, prompt, max_new, 1024, &SamplingParams::greedy()).unwrap()
    }

    #[test]
    fn invalid_configs_are_reported_not_aborted() {
        let start_err = |cfg: RuntimeConfig| -> ConfigError {
            match Server::start(cfg, Arc::new(TokenThrottle::default())) {
                Err(e) => e,
                Ok(_) => panic!("invalid config accepted"),
            }
        };
        assert_eq!(start_err(RuntimeConfig::tiny(0)), ConfigError::NoStages);
        let layers = ModelConfig::tiny().num_layers;
        let err = start_err(RuntimeConfig::tiny(layers + 1));
        assert_eq!(err, ConfigError::MoreStagesThanLayers { stages: layers + 1, layers });
        assert!(err.to_string().contains("pipeline stages"));
        assert_eq!(
            start_err(RuntimeConfig { kv_blocks: 0, ..RuntimeConfig::tiny(1) }),
            ConfigError::EmptyKvCache
        );
        assert_eq!(
            start_err(RuntimeConfig { block_size: 0, ..RuntimeConfig::tiny(1) }),
            ConfigError::EmptyKvCache
        );
        assert_eq!(
            start_err(RuntimeConfig { max_seqs_per_batch: 0, ..RuntimeConfig::tiny(1) }),
            ConfigError::ZeroBatchCap
        );
    }

    /// Regression: `audit_snapshot` must recover the last snapshot even
    /// when the mutex was poisoned by a panicking holder — a crashed
    /// driver is exactly the case where the post-mortem snapshot matters.
    #[test]
    fn audit_snapshot_survives_a_poisoned_mutex() {
        let server = start(RuntimeConfig::tiny(1), Arc::new(TokenThrottle::default()));
        server.generate_all(vec![req(1, vec![5, 9, 33], 4)]).expect("runtime stalled");
        assert!(server.audit_snapshot().is_some(), "audit on => snapshot recorded");

        // Poison the mutex the way a crashing driver would: panic while
        // holding the guard.
        let state = Arc::clone(&server.audit_state);
        let _ = std::thread::spawn(move || {
            let _guard = state.lock().expect("not yet poisoned");
            panic!("poison the audit mutex");
        })
        .join();
        assert!(server.audit_state.lock().is_err(), "mutex must now be poisoned");

        // The snapshot written before the crash is still readable.
        assert!(server.audit_snapshot().is_some());
        server.shutdown();
    }

    #[test]
    fn single_stage_runtime_matches_reference_model() {
        let server = start(RuntimeConfig::tiny(1), Arc::new(TokenThrottle::default()));
        let out = server.generate_all(vec![req(1, vec![5, 9, 33, 120, 7], 10)]).expect("runtime stalled");
        let rec = server.shutdown();
        assert_eq!(out[&1], reference_generation(&[5, 9, 33, 120, 7], 10));
        assert_eq!(rec.finished_count(), 1);
    }

    #[test]
    fn pipelined_runtime_matches_reference_model() {
        let server = start(RuntimeConfig::tiny(4), Arc::new(TokenThrottle::default()));
        let out = server.generate_all(vec![req(1, vec![5, 9, 33, 120, 7], 10)]).expect("runtime stalled");
        server.shutdown();
        assert_eq!(out[&1], reference_generation(&[5, 9, 33, 120, 7], 10));
    }

    #[test]
    fn scheduler_choice_does_not_change_outputs() {
        // The Table 1 claim: gLLM's throttled scheduling and Sarathi's
        // coupled scheduling generate identical text.
        let prompts: Vec<Vec<u32>> = (0..6)
            .map(|i| (0..5 + i).map(|j| ((j * 37 + i * 11) % 256) as u32).collect())
            .collect();
        let reqs = |_: &str| -> Vec<GenRequest> {
            prompts.iter().enumerate().map(|(i, p)| req(i as u64, p.clone(), 8)).collect()
        };
        let a = start(RuntimeConfig::tiny(2), Arc::new(TokenThrottle::default()));
        let out_throttle = a.generate_all(reqs("gllm")).expect("runtime stalled");
        a.shutdown();
        let b = start(RuntimeConfig::tiny(2), Arc::new(SarathiServe::default()));
        let out_sarathi = b.generate_all(reqs("sarathi")).expect("runtime stalled");
        b.shutdown();
        assert_eq!(out_throttle, out_sarathi);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out_throttle[&(i as u64)], reference_generation(p, 8), "req {i}");
        }
    }

    #[test]
    fn concurrent_requests_all_complete_with_correct_lengths() {
        let server = start(RuntimeConfig::tiny(2), Arc::new(TokenThrottle::default()));
        let reqs: Vec<GenRequest> = (0..10)
            .map(|i| req(i, vec![(i % 250) as u32 + 1; 3 + (i as usize % 5)], 4 + (i as usize % 7)))
            .collect();
        let expected: Vec<usize> = reqs.iter().map(|r| r.max_new).collect();
        let out = server.generate_all(reqs).expect("runtime stalled");
        let rec = server.shutdown();
        for (i, want) in expected.iter().enumerate() {
            assert_eq!(out[&(i as u64)].len(), *want, "request {i}");
        }
        assert_eq!(rec.finished_count(), 10);
        // Wall-clock metrics are sane.
        for (_, tl) in rec.timelines() {
            assert!(tl.ttft().unwrap() >= 0.0);
            assert!(tl.e2el().unwrap() >= tl.ttft().unwrap());
        }
    }

    #[test]
    fn cpp_runtime_produces_identical_outputs() {
        // Chunk overlap across stages must not change a single token.
        let prompts: Vec<Vec<u32>> = (0..4)
            .map(|i| (0..30 + i * 5).map(|j| ((j * 13 + i * 7) % 256) as u32).collect())
            .collect();
        let reqs: Vec<GenRequest> =
            prompts.iter().enumerate().map(|(i, p)| req(i as u64, p.clone(), 6)).collect();
        // Small chunks force multi-chunk prefills.
        let policy = || Arc::new(SarathiServe::new(Tokens(16)));
        let classic = start(RuntimeConfig::tiny(3), policy());
        let out_classic = classic.generate_all(reqs.clone()).expect("runtime stalled");
        classic.shutdown();
        let cpp_cfg = RuntimeConfig { cpp: true, ..RuntimeConfig::tiny(3) };
        let with_cpp = start(cpp_cfg, policy());
        let out_cpp = with_cpp.generate_all(reqs).expect("runtime stalled");
        with_cpp.shutdown();
        assert_eq!(out_classic, out_cpp, "CPP changed generated tokens");
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out_cpp[&(i as u64)], reference_generation(p, 6), "request {i}");
        }
    }

    #[test]
    fn oversized_request_is_rejected() {
        let server = start(RuntimeConfig::tiny(1), Arc::new(TokenThrottle::default()));
        // Capacity is 256 blocks × 4 = 1024 tokens.
        let out = server.generate_all(vec![req(1, vec![1; 2000], 10), req(2, vec![1, 2, 3], 3)]).expect("runtime stalled");
        server.shutdown();
        assert!(out[&1].is_empty(), "oversized request must be rejected");
        assert_eq!(out[&2].len(), 3);
    }

    #[test]
    fn kv_pressure_preempts_and_recomputes_without_changing_outputs() {
        // Tiny cache: 16 blocks × 4 = 64 tokens for 4 requests needing
        // 4 × (10 + 8) = 72 tokens at peak.
        let cfg = RuntimeConfig {
            kv_blocks: 16,
            ..RuntimeConfig::tiny(2)
        };
        let prompts: Vec<Vec<u32>> =
            (0..4).map(|i| (0..10).map(|j| ((i * 31 + j * 7) % 256) as u32).collect()).collect();
        let server = start(cfg, Arc::new(SarathiServe::default()));
        let out = server
            .generate_all(
                prompts.iter().enumerate().map(|(i, p)| req(i as u64, p.clone(), 8)).collect(),
            )
            .expect("runtime stalled");
        let rec = server.shutdown();
        assert_eq!(rec.finished_count(), 4);
        for (i, p) in prompts.iter().enumerate() {
            assert_eq!(out[&(i as u64)], reference_generation(p, 8), "request {i}");
        }
    }

    #[test]
    fn runtime_audit_report_is_clean_after_mixed_load() {
        // Clean-drain leak check on the threaded plane: preemption-heavy
        // load, then shutdown_full must surface a drained, violation-free
        // audit with batches actually checked.
        let cfg = RuntimeConfig { kv_blocks: 16, ..RuntimeConfig::tiny(2) };
        let server = start(cfg, Arc::new(TokenThrottle::default()));
        let reqs: Vec<GenRequest> =
            (0..6).map(|i| req(i, vec![(i % 200) as u32 + 1; 6 + i as usize], 5)).collect();
        server.generate_all(reqs).expect("runtime stalled");
        let out = server.shutdown_full();
        let audit = out.audit.expect("audit defaults on");
        audit.assert_clean("runtime");
        assert!(audit.batches_checked > 0);
        assert_eq!(audit.final_snapshot.in_flight, 0, "pipeline drained");
        assert_eq!(audit.final_snapshot.live_kv_seqs, 0, "KV drained");
        assert_eq!(audit.final_snapshot.faults_injected, 0, "no fault plan armed");
        assert_eq!(audit.final_snapshot.recoveries, 0);
        assert_eq!(audit.final_snapshot.requests_failed, 0);
    }

    /// A policy that never schedules anything: the pipeline wedges with
    /// work pending, which `generate_all` must report rather than hang.
    struct NeverSchedule;

    impl gllm_core::SchedulePolicy for NeverSchedule {
        fn plan(&self, _view: &gllm_core::ScheduleView) -> gllm_core::BatchPlan {
            gllm_core::BatchPlan::default()
        }

        fn name(&self) -> &'static str {
            "never"
        }
    }

    #[test]
    fn stalled_runtime_returns_an_error_with_audit_context() {
        let cfg = RuntimeConfig {
            stall_timeout: Duration::from_millis(200),
            ..RuntimeConfig::tiny(1)
        };
        let server = start(cfg, Arc::new(NeverSchedule));
        let err = server
            .generate_all(vec![req(1, vec![1, 2, 3], 4)])
            .expect_err("a never-scheduling policy must stall");
        assert_eq!(err.pending, 1);
        assert_eq!(err.waited, Duration::from_millis(200));
        let msg = err.to_string();
        assert!(msg.contains("runtime stalled"), "got: {msg}");
        // No batch was ever scheduled, so the auditor never snapshotted.
        assert!(err.snapshot.is_none());
        // Shutdown still works: nothing in flight, audit clean (the
        // undrained pool skips the leak check).
        server.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_gracefully() {
        // Regression: a detached Submitter outliving the server must get a
        // SubmitError, not panic on a closed channel.
        let server = start(RuntimeConfig::tiny(2), Arc::new(TokenThrottle::default()));
        let submitter = server.submitter();
        assert!(submitter.submit(req(1, vec![1, 2, 3], 2)).is_ok(), "live driver accepts");
        let mut open = 1;
        while open > 0 {
            match server.next_event(Duration::from_secs(30)).expect("runtime live") {
                StreamEvent::Token { finished: true, .. } | StreamEvent::Rejected { .. } => {
                    open -= 1
                }
                _ => {}
            }
        }
        server.shutdown();
        let err = submitter.submit(req(2, vec![1], 1)).expect_err("driver is gone");
        assert_eq!(err, SubmitError);
        assert!(err.to_string().contains("not submitted"));
    }

    #[test]
    fn generate_all_reports_disconnect_instead_of_hanging() {
        // Regression: if the driver dies while the frontend handle is still
        // alive, generate_all must return a disconnected StallError.
        let mut server = start(RuntimeConfig::tiny(1), Arc::new(TokenThrottle::default()));
        server.req_tx.send(DriverMsg::Shutdown).expect("driver alive");
        if let Some(h) = server.driver.take() {
            let _ = h.join();
        }
        let err = server.generate_all(vec![req(9, vec![1, 2], 2)]).expect_err("driver is gone");
        assert!(err.disconnected, "got: {err}");
        assert_eq!(err.pending, 1);
        assert!(err.to_string().contains("disconnected"), "got: {err}");
    }

    #[test]
    fn runtime_records_a_pipeline_trace_when_asked() {
        let cfg = RuntimeConfig { record_trace: true, ..RuntimeConfig::tiny(2) };
        let server = start(cfg, Arc::new(TokenThrottle::default()));
        server
            .generate_all(vec![req(1, vec![5, 9, 33], 6)])
            .expect("runtime stalled");
        let out = server.shutdown_full();
        assert!(out.trace.is_enabled());
        assert!(
            out.trace.stage_busy_total() > 0.0,
            "stage-0 compute spans must be recorded"
        );
        let doc = out.trace.to_chrome_trace_string();
        assert!(doc.contains("\"traceEvents\""));
    }
}
