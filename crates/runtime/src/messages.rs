//! Channel message types: the runtime's wire protocol.

use gllm_kvcache::PageTable;
use gllm_transformer::model::BatchChunk;
use gllm_transformer::sampler::SamplingParams;

/// A generation request submitted by the frontend.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Unique request id (doubles as the sequence id).
    pub id: u64,
    /// Prompt token ids (non-empty).
    pub prompt: Vec<u32>,
    /// Output tokens to generate.
    pub max_new: usize,
    /// Sampling configuration.
    pub params: SamplingParams,
}

/// Events streamed back to the frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEvent {
    /// One output token for `seq`.
    Token {
        /// Sequence id.
        seq: u64,
        /// The sampled token.
        token: u32,
        /// Whether this token completed the request.
        finished: bool,
    },
    /// The request can never be served (context exceeds KV capacity).
    Rejected {
        /// Sequence id.
        seq: u64,
    },
    /// The request was admitted but later terminated by the failure path:
    /// its KV reservations kept failing past the retry budget, the driver
    /// hit an internal bookkeeping inconsistency, or recovery gave up
    /// after too many pipeline respawns. Tokens already streamed for the
    /// request must be discarded.
    Failed {
        /// Sequence id.
        seq: u64,
    },
}

/// Metadata the driver broadcasts to every worker before a micro-batch
/// executes — the paper's "preemptive metadata scheduling": workers receive
/// this ahead of the activations and can prepare inputs early.
#[derive(Debug, Clone)]
pub struct BatchMeta {
    /// Monotone batch id.
    pub batch: u64,
    /// Chunk composition (token ids, positions, sampling flags).
    pub chunks: Vec<BatchChunk>,
    /// Page table snapshot per chunk (unified tables, driver-owned).
    pub tables: Vec<PageTable>,
    /// For each chunk with `sample == true`: the sampling parameters and
    /// the step index used to derive per-token randomness.
    pub samples: Vec<Option<(SamplingParams, usize)>>,
}

/// Driver → worker control messages.
#[derive(Debug, Clone)]
pub enum WorkerMsg {
    /// Execute this micro-batch (activations arrive separately).
    Batch(BatchMeta),
    /// Drain and exit.
    Shutdown,
}

/// Activations handed between consecutive stages (the NCCL stream).
#[derive(Debug, Clone)]
pub struct Activations {
    /// Batch id (must match the head of the metadata queue).
    pub batch: u64,
    /// One `tokens × hidden` row buffer per chunk.
    pub hidden: Vec<Vec<f32>>,
}

/// Sampled tokens returned by the last stage to the driver.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Batch id.
    pub batch: u64,
    /// `(seq, token)` for every sampled chunk, in chunk order.
    pub tokens: Vec<(u64, u32)>,
}

/// Frontend → driver control messages.
#[derive(Debug, Clone)]
pub enum DriverMsg {
    /// Serve this request.
    Submit(GenRequest),
    /// Finish in-flight batches, stop workers, exit.
    Shutdown,
}
