//! Token Throttling — the paper's §3 contribution.
//!
//! Token Throttling regulates prefill and decode token counts *separately*
//! (decoupled scheduling, §2.5) using global system state:
//!
//! * **WT** (§3.1.1, Eq. 1) throttles by the tokens awaiting prefill:
//!   `#P = min(max(#WP / #T, #MinP), #MaxP)` — new prompts are spread over
//!   `#T` iterations instead of being prefilled eagerly.
//! * **UT** (§3.1.2, Eq. 2) throttles by KV pressure:
//!   `#P = max(#MaxP × KV_free, #MinP)` — prefill slows as the cache fills.
//! * **Threshold** (§3.1.3): when `KV_free < KV_thresh`, prefill is
//!   suspended entirely to protect running decodes from preemption.
//! * **Combined** (Eq. 3, when `KV_free ≥ KV_thresh`):
//!   `#P = max(min(#WP / #T, #MaxP × (KV_free − KV_thresh) / (1 − KV_thresh)), #MinP)`.
//! * **Decode** (§3.2, Eq. 4): `#D = #RD / #PP_depth` — the running decode
//!   population is spread evenly over the micro-batches that can coexist in
//!   the pipeline, instead of Sarathi's "grab every decode now".
//!
//! The `enable_wt` / `enable_ut` switches produce the paper's ablation
//! variants `gLLM w/o WT` and `gLLM w/o UT` (Fig. 15).

use gllm_units::Tokens;
use serde::{Deserialize, Serialize};

use crate::plan::BatchPlan;
use crate::policy::{
    carve_prefill_chunks_block_aware, prefill_kv_after_decode, take_decodes, SchedulePolicy,
    ScheduleView,
};

/// Hyper-parameters of Token Throttling (paper defaults: `#T = 8`,
/// `#MaxP = 2048`, `#MinP = 32`, `KV_thresh = 0.05`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleConfig {
    /// `#T`: iterations over which pending prefill tokens are spread.
    pub iter_t: usize,
    /// `#MaxP`: maximum batched prefill tokens per iteration.
    pub max_p: Tokens,
    /// `#MinP`: minimum batched prefill tokens per iteration.
    pub min_p: Tokens,
    /// `KV_thresh`: KV idle-rate floor below which prefill is suspended.
    pub kv_thresh: f64,
    /// Enable WT (throttling by tokens awaiting prefill, Eq. 1).
    pub enable_wt: bool,
    /// Enable UT (throttling by KV utilisation, Eq. 2).
    pub enable_ut: bool,
    /// Context-length-aware cost estimation (the paper's §6 future work):
    /// when `Some(quad_ref)`, the prefill budget is spent in *estimated
    /// cost* units where a token at context `c` costs `1 + c/quad_ref`,
    /// so long-context chunks shrink to keep batch execution times even.
    /// `quad_ref` is the context length at which attention cost equals the
    /// dense projection cost (hardware-dependent; ≈8–16 K tokens for the
    /// paper's models).
    pub context_aware: Option<f64>,
}

impl Default for ThrottleConfig {
    fn default() -> Self {
        Self {
            iter_t: 8,
            max_p: Tokens(2048),
            min_p: Tokens(32),
            kv_thresh: 0.05,
            enable_wt: true,
            enable_ut: true,
            context_aware: None,
        }
    }
}

impl ThrottleConfig {
    /// The paper's `gLLM w/o WT` ablation.
    pub fn without_wt(mut self) -> Self {
        self.enable_wt = false;
        self
    }

    /// The paper's `gLLM w/o UT` ablation.
    pub fn without_ut(mut self) -> Self {
        self.enable_ut = false;
        self
    }

    /// Enable context-length-aware cost estimation (§6 future work) with
    /// the given quadratic reference context.
    pub fn with_context_aware(mut self, quad_ref: f64) -> Self {
        assert!(quad_ref > 0.0);
        self.context_aware = Some(quad_ref);
        self
    }
}

/// The gLLM scheduling policy.
#[derive(Debug, Clone, Default)]
pub struct TokenThrottle {
    /// Hyper-parameters.
    pub config: ThrottleConfig,
}

impl TokenThrottle {
    /// A policy with the paper's default hyper-parameters.
    pub fn new(config: ThrottleConfig) -> Self {
        Self { config }
    }

    /// The prefill token budget `#P` for the next micro-batch (Eqs. 1–3).
    pub fn prefill_budget(&self, view: &ScheduleView) -> Tokens {
        let cfg = &self.config;
        let wp = view.waiting_tokens();
        if wp.is_zero() {
            return Tokens::ZERO;
        }
        // Threshold safeguard (§3.1.3): suspend prefill near capacity.
        if view.kv_free_rate < cfg.kv_thresh {
            return Tokens::ZERO;
        }
        let wt_term = if cfg.enable_wt {
            Tokens(wp.get().div_ceil(cfg.iter_t))
        } else {
            Tokens(usize::MAX)
        };
        let ut_term = if cfg.enable_ut {
            let scale = (view.kv_free_rate - cfg.kv_thresh) / (1.0 - cfg.kv_thresh);
            Tokens((cfg.max_p.get() as f64 * scale).floor() as usize)
        } else {
            Tokens(usize::MAX)
        };
        wt_term
            .min(ut_term)
            .max(cfg.min_p)
            .min(cfg.max_p)
            .min(wp)
    }

    /// The decode token budget `#D` for the next micro-batch (Eq. 4):
    /// spread all running decodes evenly over the pipeline depth.
    // lint:allow(unit-confusion): #D counts decode sequences (one token each), not Tokens
    pub fn decode_budget(&self, view: &ScheduleView) -> usize {
        if view.total_decode_seqs == 0 {
            return 0;
        }
        view.total_decode_seqs.div_ceil(view.pipeline_depth.max(1))
    }
}

impl SchedulePolicy for TokenThrottle {
    fn plan(&self, view: &ScheduleView) -> BatchPlan {
        let decode_budget = self.decode_budget(view).min(view.max_seqs_per_batch);
        let decode = take_decodes(&view.decodable, decode_budget);

        // A decode step at a block-aligned context claims a whole fresh KV
        // block; reserve those blocks before prefill carves into the
        // remaining free space. (Reserving one *token* per decode here was
        // the overcommit bug the invariant auditor exists to catch.)
        let kv_left = prefill_kv_after_decode(view.kv_free_tokens, &decode, view.block_size);
        let seq_budget = view.max_seqs_per_batch.saturating_sub(decode.len());
        let budget = self.prefill_budget(view);
        let prefill = match self.config.context_aware {
            Some(quad_ref) => crate::policy::carve_prefill_chunks_weighted(
                &view.waiting,
                budget.get() as f64,
                seq_budget,
                kv_left,
                view.block_size,
                quad_ref,
            ),
            None => carve_prefill_chunks_block_aware(
                &view.waiting,
                budget,
                seq_budget,
                kv_left,
                view.block_size,
            ),
        };

        BatchPlan { prefill, decode }
    }

    fn budget_caps(&self, view: &ScheduleView) -> Option<(Tokens, usize)> {
        Some((
            self.prefill_budget(view),
            self.decode_budget(view).min(view.max_seqs_per_batch),
        ))
    }

    fn name(&self) -> &'static str {
        match (self.config.enable_wt, self.config.enable_ut, self.config.context_aware) {
            (true, true, None) => "gLLM",
            (false, true, None) => "gLLM w/o WT",
            (true, false, None) => "gLLM w/o UT",
            (false, false, None) => "gLLM w/o WT+UT",
            (_, _, Some(_)) => "gLLM+ctx",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DecodableSeq, WaitingSeq};
    use proptest::prelude::*;

    fn view(wp: usize, decodable: usize, total_decode: usize, kv_free: f64) -> ScheduleView {
        ScheduleView {
            waiting: if wp > 0 {
                vec![WaitingSeq {
                    seq: 1,
                    remaining_prefill: Tokens(wp),
                    context_before: Tokens(0),
                }]
            } else {
                vec![]
            },
            decodable: (0..decodable)
                .map(|i| DecodableSeq { seq: 100 + i as u64, context_before: Tokens(64) })
                .collect(),
            total_decode_seqs: total_decode,
            kv_free_rate: kv_free,
            kv_free_tokens: Tokens(1_000_000),
            block_size: Tokens(1),
            in_flight_seqs: 0,
            pipeline_depth: 4,
            max_seqs_per_batch: 1024,
        }
    }

    #[test]
    fn eq1_wt_spreads_pending_tokens_over_t_iterations() {
        // #WP = 8000, #T = 8 → 1000, inside [MinP, MaxP].
        let p = TokenThrottle::default();
        assert_eq!(p.prefill_budget(&view(8000, 0, 0, 1.0)), Tokens(1000));
    }

    #[test]
    fn eq1_clamps_to_min_and_max() {
        let p = TokenThrottle::default();
        // 40/8 = 5 < MinP=32 → raised to MinP (still ≤ #WP = 40).
        assert_eq!(p.prefill_budget(&view(40, 0, 0, 1.0)), Tokens(32));
        // When fewer than MinP tokens wait, schedule all of them.
        assert_eq!(p.prefill_budget(&view(20, 0, 0, 1.0)), Tokens(20));
        // 100/8 = 13 < MinP → MinP, and 100 > MinP so not WP-capped.
        assert_eq!(p.prefill_budget(&view(100, 0, 0, 1.0)), Tokens(32));
        // Huge backlog → MaxP.
        assert_eq!(p.prefill_budget(&view(1_000_000, 0, 0, 1.0)), Tokens(2048));
    }

    #[test]
    fn eq2_ut_scales_with_kv_free_rate() {
        let p = TokenThrottle::new(ThrottleConfig::default().without_wt());
        // KV_free = 0.525, thresh = 0.05 → scale = 0.5 → 1024.
        assert_eq!(p.prefill_budget(&view(1_000_000, 0, 0, 0.525)), Tokens(1024));
        // Full cache free → MaxP.
        assert_eq!(p.prefill_budget(&view(1_000_000, 0, 0, 1.0)), Tokens(2048));
    }

    #[test]
    fn threshold_suspends_prefill_near_capacity() {
        let p = TokenThrottle::default();
        assert_eq!(p.prefill_budget(&view(1_000_000, 0, 0, 0.049)), Tokens(0));
        assert!(p.prefill_budget(&view(1_000_000, 0, 0, 0.051)) > Tokens(0));
    }

    #[test]
    fn eq3_takes_min_of_wt_and_ut_then_floors_at_minp() {
        let p = TokenThrottle::default();
        // WT: 8000/8 = 1000; UT at KV_free 0.1: 2048×(0.05/0.95) ≈ 107.
        assert_eq!(p.prefill_budget(&view(8000, 0, 0, 0.1)), Tokens(107));
        // Near the threshold UT → ~0, MinP floor applies.
        assert_eq!(p.prefill_budget(&view(8000, 0, 0, 0.051)), Tokens(32));
    }

    #[test]
    fn eq4_decode_spread_over_pipeline_depth() {
        let p = TokenThrottle::default();
        // 64 running decodes over depth 4 → 16 per batch.
        assert_eq!(p.decode_budget(&view(0, 64, 64, 1.0)), 16);
        // Fewer decodes than depth → ceil avoids starving (≥1).
        assert_eq!(p.decode_budget(&view(0, 2, 2, 1.0)), 1);
        assert_eq!(p.decode_budget(&view(0, 0, 0, 1.0)), 0);
    }

    #[test]
    fn eq4_counts_in_flight_decodes_in_rd() {
        let p = TokenThrottle::default();
        // 40 total decodes, only 10 available (30 in flight): budget is
        // 40/4 = 10, so this batch takes the 10 available.
        let plan = p.plan(&view(0, 10, 40, 1.0));
        assert_eq!(plan.decode.len(), 10);
    }

    #[test]
    fn plan_reserves_kv_slots_for_decodes_before_prefill() {
        let mut v = view(500, 8, 8, 1.0);
        v.kv_free_tokens = Tokens(10); // 8 decode slots leave 2 for prefill
        let p = TokenThrottle::default();
        let plan = p.plan(&v);
        assert_eq!(plan.decode.len(), 2); // ceil(8/4)
        assert!(plan.prefill_tokens() <= Tokens(8));
    }

    /// Regression test for the block-granularity bug: with 16-token blocks
    /// and 5 free blocks (80 tokens), 4 decodes at block-aligned context 64
    /// consume 4 whole blocks, so prefill must fit in the single remaining
    /// block. The pre-fix code reserved 4 *tokens* and carved a 63-token
    /// prefill — a 3-block overcommit that admission silently absorbed.
    #[test]
    fn plan_reserves_whole_blocks_for_decodes_before_prefill() {
        let mut v = view(500, 16, 16, 1.0);
        v.block_size = Tokens(16);
        v.kv_free_tokens = Tokens(80); // 5 free blocks of 16
        let p = TokenThrottle::default();
        let plan = p.plan(&v);
        assert_eq!(plan.decode.len(), 4); // ceil(16/4), each at context 64
        assert!(
            plan.prefill_tokens() <= Tokens(16),
            "prefill must fit the one block left after decode reservation, got {}",
            plan.prefill_tokens()
        );
        // The plan as a whole fits the 5 free blocks.
        let blocks: gllm_units::Blocks = plan
            .decode
            .iter()
            .map(|d| crate::policy::blocks_to_append(d.context_before, Tokens(1), Tokens(16)))
            .chain(plan.prefill.iter().map(|c| {
                crate::policy::blocks_to_append(c.context_before, c.tokens, Tokens(16))
            }))
            .sum();
        assert!(
            blocks <= gllm_units::Blocks(5),
            "plan claims {blocks} blocks with only 5 free"
        );
    }

    #[test]
    fn budget_caps_match_the_published_budgets() {
        let p = TokenThrottle::default();
        let v = view(8000, 64, 64, 1.0);
        let (prefill, decode) = p.budget_caps(&v).expect("throttle declares caps");
        assert_eq!(prefill, p.prefill_budget(&v));
        assert_eq!(decode, 16);
        let plan = p.plan(&v);
        assert!(plan.prefill_tokens() <= prefill);
        assert!(plan.decode.len() <= decode);
    }

    #[test]
    fn ablation_names() {
        assert_eq!(TokenThrottle::default().name(), "gLLM");
        assert_eq!(
            TokenThrottle::new(ThrottleConfig::default().without_wt()).name(),
            "gLLM w/o WT"
        );
        assert_eq!(
            TokenThrottle::new(ThrottleConfig::default().without_ut()).name(),
            "gLLM w/o UT"
        );
    }

    proptest! {
        /// Eq. 3 invariants: the budget never exceeds MaxP or #WP, is 0
        /// when nothing waits or below threshold, and otherwise ≥
        /// min(MinP, WP).
        #[test]
        fn prefill_budget_bounds(
            wp in 0usize..100_000,
            kv_free in 0.0f64..=1.0,
        ) {
            let p = TokenThrottle::default();
            let b = p.prefill_budget(&view(wp, 0, 0, kv_free));
            prop_assert!(b <= p.config.max_p);
            prop_assert!(b <= Tokens(wp));
            if wp == 0 || kv_free < p.config.kv_thresh {
                prop_assert_eq!(b, Tokens(0));
            } else {
                prop_assert!(b >= p.config.min_p.min(Tokens(wp)));
            }
        }

        /// Eq. 4 invariants: even spread, never zero while decodes exist,
        /// and the per-batch share never exceeds what one batch would need
        /// to cover everything in `depth` batches.
        #[test]
        fn decode_budget_bounds(rd in 0usize..10_000, depth in 1usize..9) {
            let p = TokenThrottle::default();
            let mut v = view(0, rd, rd, 1.0);
            v.pipeline_depth = depth;
            let d = p.decode_budget(&v);
            if rd == 0 {
                prop_assert_eq!(d, 0);
            } else {
                prop_assert!(d >= 1);
                prop_assert!(d * depth >= rd, "depth batches must cover all decodes");
                prop_assert!((d - 1) * depth < rd, "budget is the minimal even share");
            }
        }
    }
}
