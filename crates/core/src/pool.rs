//! The global request pool shared by the scheduler and the execution engine.
//!
//! [`RequestPool`] owns every [`Sequence`] and enforces the invariants
//! pipeline-parallel serving depends on:
//!
//! * a sequence's decode step is inside **at most one** in-flight
//!   micro-batch (its KV state is strictly sequential); prefill chunks may
//!   overlap across micro-batches only when chunked pipeline parallelism
//!   is enabled (`with_cpp`), where FIFO stage order preserves chunk
//!   dependencies,
//! * plans are applied atomically: [`RequestPool::commit`] moves every
//!   planned sequence in-flight before the batch starts, and
//!   [`RequestPool::complete`] releases them and emits tokens when the
//!   batch leaves the last pipeline stage,
//! * preemption victims are chosen latest-arrival-first (vLLM's priority
//!   order), and preempted sequences re-enter the waiting queue for
//!   recomputation.
//!
//! The pool is deliberately independent of clocks and hardware: the
//! discrete-event simulator drives it with virtual time, the threaded
//! runtime with wall time.

use std::collections::BTreeMap;

use gllm_units::Tokens;

use crate::plan::BatchPlan;
use crate::policy::{DecodableSeq, ScheduleView, WaitingSeq};
use crate::sequence::{Phase, Sequence};

/// One output token produced by a completed micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmittedToken {
    /// Sequence that produced the token.
    pub seq: u64,
    /// Whether this token finished the request.
    pub finished: bool,
}

/// Everything a completed micro-batch did to the pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Output tokens emitted, in plan order (prefill completions first).
    pub emitted: Vec<EmittedToken>,
    /// Sequences that finished (their KV can be freed).
    pub finished: Vec<u64>,
}

/// The global sequence pool.
#[derive(Debug, Clone, Default)]
pub struct RequestPool {
    /// BTreeMap, not HashMap: iteration feeds the deterministic sim plane.
    seqs: BTreeMap<u64, Sequence>,
    /// Arrival order for FCFS scheduling (finished ids pruned lazily).
    order: Vec<u64>,
    max_seqs_per_batch: usize,
    /// Chunked pipeline parallelism: allow a sequence's next prefill chunk
    /// to be scheduled while earlier chunks are still in flight in later
    /// pipeline stages.
    cpp: bool,
    /// Use the optimized scheduler data paths ([`RequestPool::view`]'s
    /// direct map walk, the O(1) live count, single-probe KV admission).
    /// Bit-identical to the legacy paths; the switch exists so the perf
    /// harness can time the unoptimized baseline.
    fast: bool,
    /// Running count of unfinished sequences (maintained on every
    /// transition so `unfinished_count` is O(1) on the fast path).
    unfinished: usize,
    /// Whether `order` is ascending by id. True for the sim plane (trace
    /// ids arrive in order), which lets `view` walk `seqs` directly
    /// instead of doing one map lookup per id.
    order_sorted: bool,
}

impl RequestPool {
    /// A pool with the engine's per-batch sequence cap (vLLM default 1024).
    pub fn new(max_seqs_per_batch: usize) -> Self {
        Self {
            seqs: BTreeMap::new(),
            order: Vec::new(),
            max_seqs_per_batch,
            cpp: false,
            fast: true,
            unfinished: 0,
            order_sorted: true,
        }
    }

    /// Enable chunked pipeline parallelism (intra-request chunk overlap,
    /// the CPP optimisation the paper integrates in §3.4).
    pub fn with_cpp(mut self, cpp: bool) -> Self {
        self.cpp = cpp;
        self
    }

    /// Select between the optimized and the legacy scheduler data paths.
    /// Both produce bit-identical schedules; `false` replays the
    /// unoptimized baseline for the perf harness.
    pub fn with_fast_path(mut self, fast: bool) -> Self {
        self.fast = fast;
        self
    }

    /// Whether the optimized data paths are active (admission keys its
    /// single-probe KV append off this).
    pub fn fast_path(&self) -> bool {
        self.fast
    }

    /// Admit a new request.
    pub fn add(&mut self, id: u64, prompt_len: usize, max_output: usize) {
        let prev = self.seqs.insert(id, Sequence::new(id, prompt_len, max_output));
        assert!(prev.is_none(), "duplicate request id {id}");
        if self.order.last().is_some_and(|&last| id < last) {
            self.order_sorted = false;
        }
        self.order.push(id);
        self.unfinished += 1;
    }

    /// Admit a sequence that is already decoding: `context_len` KV tokens
    /// are resident (the caller allocated them) and `generated ≥ 1` output
    /// tokens exist. This is the decode-side admission path of a
    /// prefill/decode-disaggregated deployment, where the prefill cluster
    /// computed the context and shipped the KV across.
    pub fn add_decoding(
        &mut self,
        id: u64,
        context_len: usize,
        generated: usize,
        max_output: usize,
    ) {
        assert!(generated >= 1, "a decoding sequence has produced its first token");
        assert!(generated < max_output, "already finished");
        assert!(context_len >= generated, "context must cover the prompt");
        let mut s = Sequence::new(id, context_len, max_output);
        // The transferred context counts as prefilled; the original prompt
        // (for recomputation after preemption) excludes the generated
        // tokens whose KV rode along.
        s.base_prompt_len = context_len + 1 - generated;
        s.prefilled = context_len;
        s.generated = generated;
        s.phase = Phase::Decoding;
        let prev = self.seqs.insert(id, s);
        assert!(prev.is_none(), "duplicate request id {id}");
        if self.order.last().is_some_and(|&last| id < last) {
            self.order_sorted = false;
        }
        self.order.push(id);
        self.unfinished += 1;
    }

    /// Borrow a sequence.
    pub fn seq(&self, id: u64) -> Option<&Sequence> {
        self.seqs.get(&id)
    }

    /// Number of unfinished sequences. O(1) on the fast path (a running
    /// counter); a full scan on the legacy path.
    pub fn unfinished_count(&self) -> usize {
        if self.fast {
            debug_assert_eq!(
                self.unfinished,
                self.seqs.values().filter(|s| !s.is_finished()).count()
            );
            self.unfinished
        } else {
            self.seqs.values().filter(|s| !s.is_finished()).count()
        }
    }

    /// Whether any sequence still needs work (including in-flight ones).
    pub fn has_work(&self) -> bool {
        self.unfinished_count() > 0
    }

    /// Build the scheduling snapshot. `kv_free_rate` / `kv_free_tokens` /
    /// `block_size` come from the KV cache manager; `pipeline_depth` from
    /// the engine.
    pub fn view(
        &self,
        kv_free_rate: f64,
        kv_free_tokens: Tokens,
        block_size: Tokens,
        pipeline_depth: usize,
    ) -> ScheduleView {
        let mut waiting = Vec::new();
        let mut decodable = Vec::new();
        let mut total_decode = 0usize;
        let mut in_flight = 0usize;
        if self.fast && self.order_sorted {
            // Fast path: `order` is ascending by id, so walking the map
            // directly visits the same sequences in the same (FCFS) order
            // without one O(log n) lookup per id. Pre-sizing absorbs the
            // growth reallocations — the view is rebuilt on every schedule
            // attempt, which is the simulator's hottest loop.
            waiting.reserve(self.seqs.len());
            decodable.reserve(self.seqs.len());
            for s in self.seqs.values() {
                if s.is_finished() {
                    continue;
                }
                if s.is_in_flight() {
                    in_flight += 1;
                }
                match s.phase {
                    Phase::Waiting if s.prefill_schedulable(self.cpp) => {
                        waiting.push(WaitingSeq {
                            seq: s.id,
                            remaining_prefill: Tokens(s.remaining_prefill()),
                            context_before: Tokens(s.context_len()),
                        })
                    }
                    Phase::Decoding => {
                        total_decode += 1;
                        if s.decode_schedulable() {
                            decodable.push(DecodableSeq {
                                seq: s.id,
                                context_before: Tokens(s.context_len()),
                            });
                        }
                    }
                    _ => {}
                }
            }
            return ScheduleView {
                waiting,
                decodable,
                total_decode_seqs: total_decode,
                kv_free_rate,
                kv_free_tokens,
                block_size,
                in_flight_seqs: in_flight,
                pipeline_depth,
                max_seqs_per_batch: self.max_seqs_per_batch,
            };
        }
        for &id in &self.order {
            let Some(s) = self.seqs.get(&id) else { continue };
            if s.is_finished() {
                continue;
            }
            if s.is_in_flight() {
                in_flight += 1;
            }
            match s.phase {
                Phase::Waiting if s.prefill_schedulable(self.cpp) => waiting.push(WaitingSeq {
                    seq: id,
                    remaining_prefill: Tokens(s.remaining_prefill()),
                    context_before: Tokens(s.context_len()),
                }),
                Phase::Decoding => {
                    total_decode += 1;
                    if s.decode_schedulable() {
                        decodable.push(DecodableSeq {
                            seq: id,
                            context_before: Tokens(s.context_len()),
                        });
                    }
                }
                _ => {}
            }
        }
        ScheduleView {
            waiting,
            decodable,
            total_decode_seqs: total_decode,
            kv_free_rate,
            kv_free_tokens,
            block_size,
            in_flight_seqs: in_flight,
            pipeline_depth,
            max_seqs_per_batch: self.max_seqs_per_batch,
        }
    }

    /// Atomically move every sequence in `plan` in-flight. Panics if the
    /// plan is stale (sequence missing, already in flight, or the chunk
    /// does not match the sequence's committed context) — policies must
    /// plan from a fresh view.
    pub fn commit(&mut self, plan: &BatchPlan) {
        for c in &plan.prefill {
            // lint:allow(panic-freedom): documented contract — commit() panics on stale plans
            let s = self.seqs.get_mut(&c.seq).expect("unknown sequence in plan");
            assert_eq!(
                c.context_before.get(),
                s.context_len(),
                "stale prefill chunk for sequence {}",
                c.seq
            );
            assert!(
                c.completes_prompt == (c.tokens.get() == s.remaining_prefill()),
                "completion flag mismatch for sequence {}",
                c.seq
            );
            s.commit_prefill(c.tokens.get());
        }
        for d in &plan.decode {
            // lint:allow(panic-freedom): documented contract — commit() panics on stale plans
            let s = self.seqs.get_mut(&d.seq).expect("unknown sequence in plan");
            assert_eq!(
                d.context_before.get(),
                s.context_len(),
                "stale decode slot for sequence {}",
                d.seq
            );
            s.commit_decode();
        }
    }

    /// Apply the completion of a committed batch, emitting tokens and
    /// collecting finished sequences.
    pub fn complete(&mut self, plan: &BatchPlan) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        let mut apply = |id: u64, emitted: bool, seqs: &BTreeMap<u64, Sequence>| {
            if emitted {
                let finished = seqs[&id].is_finished();
                outcome.emitted.push(EmittedToken { seq: id, finished });
                if finished {
                    outcome.finished.push(id);
                }
            }
        };
        for c in &plan.prefill {
            // lint:allow(panic-freedom): complete() shares commit()'s stale-plan contract
            let s = self.seqs.get_mut(&c.seq).expect("unknown sequence in plan");
            let emitted = s.complete_prefill(c.completes_prompt);
            apply(c.seq, emitted, &self.seqs);
        }
        for d in &plan.decode {
            // lint:allow(panic-freedom): complete() shares commit()'s stale-plan contract
            let s = self.seqs.get_mut(&d.seq).expect("unknown sequence in plan");
            let emitted = s.complete_decode();
            apply(d.seq, emitted, &self.seqs);
        }
        self.unfinished -= outcome.finished.len();
        self.prune_finished();
        outcome
    }

    /// Roll back a committed plan whose micro-batch will never complete
    /// (the pipeline stage executing it died). Every sequence the plan
    /// moved in-flight returns to its pre-commit state: prefill chunks
    /// give back their KV token accounting, decode slots their appended
    /// slot. Sequences the pool no longer knows are skipped — a recovery
    /// sweep must not panic on a request that was aborted in between.
    pub fn uncommit(&mut self, plan: &BatchPlan) {
        for c in &plan.prefill {
            if let Some(s) = self.seqs.get_mut(&c.seq) {
                s.uncommit_prefill(c.tokens.get());
            }
        }
        for d in &plan.decode {
            if let Some(s) = self.seqs.get_mut(&d.seq) {
                s.uncommit_decode();
            }
        }
    }

    /// Reset every live sequence that holds committed KV context for
    /// recomputation — the recovery path after a pipeline failure, where
    /// all resident KV dies with the stages that computed it. In-flight
    /// sequences are skipped (the caller must [`RequestPool::uncommit`]
    /// lost plans first). Returns the reset ids in ascending order.
    pub fn preempt_all_live(&mut self) -> Vec<u64> {
        let mut reset = Vec::new();
        for (&id, s) in self.seqs.iter_mut() {
            if !s.is_finished() && !s.is_in_flight() && s.context_len() > 0 {
                s.reset_for_recompute();
                reset.push(id);
            }
        }
        reset
    }

    /// Pick and reset a preemption victim: the **latest-arrival** sequence
    /// that is decoding and not in flight (vLLM preempts the lowest
    /// priority first). Returns its id and the KV tokens it held, or `None`
    /// if nothing is evictable.
    pub fn preempt_latest(&mut self) -> Option<(u64, Tokens)> {
        self.preempt_latest_excluding(&[])
    }

    /// Like [`RequestPool::preempt_latest`] but never evicts an id in
    /// `exclude` (the engine passes the sequences already placed in the
    /// micro-batch being formed).
    pub fn preempt_latest_excluding(&mut self, exclude: &[u64]) -> Option<(u64, Tokens)> {
        let victim = self
            .order
            .iter()
            .rev()
            .copied()
            .find(|id| {
                !exclude.contains(id)
                    && self
                        .seqs
                        .get(id)
                        .is_some_and(|s| s.phase == Phase::Decoding && !s.is_in_flight())
            })?;
        // lint:allow(panic-freedom): victim id was found in self.order just above
        let s = self.seqs.get_mut(&victim).expect("victim exists");
        let held = Tokens(s.context_len());
        s.reset_for_recompute();
        Some((victim, held))
    }

    /// Stall breaker: when nothing is in flight and no plan can be formed
    /// (e.g. partially-prefilled sequences hold the whole KV cache), evict
    /// the **latest-arrival** waiting sequence that already committed some
    /// context, forcing it to recompute later. Returns its id and the KV
    /// tokens it held.
    pub fn preempt_stalled_waiting(&mut self) -> Option<(u64, Tokens)> {
        let victim = self.order.iter().rev().copied().find(|id| {
            self.seqs.get(id).is_some_and(|s| {
                s.phase == Phase::Waiting && !s.is_in_flight() && s.context_len() > 0
            })
        })?;
        // lint:allow(panic-freedom): victim id was found in self.order just above
        let s = self.seqs.get_mut(&victim).expect("victim exists");
        let held = Tokens(s.context_len());
        s.reset_for_recompute();
        Some((victim, held))
    }

    /// Abort a request that can never be served (e.g. its prompt exceeds
    /// the cluster's entire KV capacity). The sequence is dropped without
    /// emitting tokens; it must not be in flight.
    pub fn abort(&mut self, id: u64) {
        // lint:allow(panic-freedom): documented contract — abort() is only called with live ids
        let s = self.seqs.get(&id).expect("aborting unknown sequence");
        assert!(!s.is_in_flight(), "cannot abort an in-flight sequence");
        if !s.is_finished() {
            self.unfinished -= 1;
        }
        self.seqs.remove(&id);
        self.order.retain(|&x| x != id);
    }

    /// Total preemptions across all live sequences.
    pub fn preemption_total(&self) -> u64 {
        self.seqs.values().map(|s| s.preemptions as u64).sum()
    }

    fn prune_finished(&mut self) {
        if self.order.len() > 64 && self.order.len() > 2 * self.unfinished_count() {
            let seqs = &self.seqs;
            self.order.retain(|id| seqs.get(id).is_some_and(|s| !s.is_finished()));
            self.seqs.retain(|_, s| !s.is_finished());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{DecodeSlot, PrefillChunk};
    use crate::policy::SchedulePolicy;
    use crate::sarathi::SarathiServe;
    use crate::throttle::TokenThrottle;

    fn chunk(seq: u64, tokens: usize, before: usize, done: bool) -> PrefillChunk {
        PrefillChunk {
            seq,
            tokens: Tokens(tokens),
            context_before: Tokens(before),
            completes_prompt: done,
        }
    }

    fn slot(seq: u64, before: usize) -> DecodeSlot {
        DecodeSlot { seq, context_before: Tokens(before) }
    }

    fn view(pool: &RequestPool, kv_free_tokens: usize) -> ScheduleView {
        pool.view(1.0, Tokens(kv_free_tokens), Tokens(1), 4)
    }

    #[test]
    fn view_partitions_sequences_by_phase() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 100, 5);
        pool.add(2, 50, 5);
        // Prefill seq 2 completely; it becomes Decoding.
        let plan = BatchPlan { prefill: vec![chunk(2, 50, 0, true)], decode: vec![] };
        pool.commit(&plan);
        pool.complete(&plan);
        let v = view(&pool, 1000);
        assert_eq!(v.waiting.len(), 1);
        assert_eq!(v.waiting[0].seq, 1);
        assert_eq!(v.decodable.len(), 1);
        assert_eq!(v.decodable[0].seq, 2);
        assert_eq!(v.decodable[0].context_before, Tokens(50));
        assert_eq!(v.total_decode_seqs, 1);
    }

    #[test]
    fn in_flight_sequences_vanish_from_view_but_count_in_rd() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 10, 5);
        let p1 = BatchPlan { prefill: vec![chunk(1, 10, 0, true)], decode: vec![] };
        pool.commit(&p1);
        pool.complete(&p1);
        // Now decoding; put its decode step in flight.
        let p2 = BatchPlan { prefill: vec![], decode: vec![slot(1, 10)] };
        pool.commit(&p2);
        let v = view(&pool, 1000);
        assert!(v.decodable.is_empty(), "in-flight seq is not schedulable");
        assert_eq!(v.total_decode_seqs, 1, "but it counts in #RD");
        assert_eq!(v.in_flight_seqs, 1);
        pool.complete(&p2);
        assert_eq!(view(&pool, 1000).decodable.len(), 1);
    }

    #[test]
    fn complete_emits_tokens_and_finishes() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 10, 2);
        let p1 = BatchPlan { prefill: vec![chunk(1, 10, 0, true)], decode: vec![] };
        pool.commit(&p1);
        let o1 = pool.complete(&p1);
        assert_eq!(o1.emitted, vec![EmittedToken { seq: 1, finished: false }]);
        let p2 = BatchPlan { prefill: vec![], decode: vec![slot(1, 10)] };
        pool.commit(&p2);
        let o2 = pool.complete(&p2);
        assert_eq!(o2.emitted, vec![EmittedToken { seq: 1, finished: true }]);
        assert_eq!(o2.finished, vec![1]);
        assert!(!pool.has_work());
    }

    #[test]
    fn partial_chunk_emits_nothing() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 100, 2);
        let p = BatchPlan { prefill: vec![chunk(1, 40, 0, false)], decode: vec![] };
        pool.commit(&p);
        let o = pool.complete(&p);
        assert!(o.emitted.is_empty());
        let v = view(&pool, 1000);
        assert_eq!(v.waiting[0].remaining_prefill, Tokens(60));
        assert_eq!(v.waiting[0].context_before, Tokens(40));
    }

    #[test]
    #[should_panic(expected = "stale prefill chunk")]
    fn stale_plan_rejected() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 100, 2);
        let p = BatchPlan { prefill: vec![chunk(1, 40, 10, false)], decode: vec![] };
        pool.commit(&p);
    }

    #[test]
    fn preempt_latest_picks_newest_decoder() {
        let mut pool = RequestPool::new(1024);
        for id in [1, 2] {
            pool.add(id, 10, 5);
            let p = BatchPlan { prefill: vec![chunk(id, 10, 0, true)], decode: vec![] };
            pool.commit(&p);
            pool.complete(&p);
        }
        let (victim, held) = pool.preempt_latest().unwrap();
        assert_eq!(victim, 2);
        assert_eq!(held, Tokens(10));
        let v = view(&pool, 1000);
        assert_eq!(v.decodable.len(), 1);
        assert_eq!(v.waiting.len(), 1);
        assert_eq!(v.waiting[0].seq, 2);
        // Recompute includes the generated token.
        assert_eq!(v.waiting[0].remaining_prefill, Tokens(11));
        assert_eq!(pool.preemption_total(), 1);
    }

    #[test]
    fn cpp_pool_overlaps_prefill_chunks_and_emits_once() {
        let mut pool = RequestPool::new(1024).with_cpp(true);
        pool.add(1, 100, 3);
        let p1 = BatchPlan { prefill: vec![chunk(1, 60, 0, false)], decode: vec![] };
        pool.commit(&p1);
        // With CPP the remainder is schedulable while chunk 1 is in flight.
        let v = view(&pool, 1000);
        assert_eq!(v.waiting.len(), 1);
        assert_eq!(v.waiting[0].remaining_prefill, Tokens(40));
        assert_eq!(v.waiting[0].context_before, Tokens(60));
        let p2 = BatchPlan { prefill: vec![chunk(1, 40, 60, true)], decode: vec![] };
        pool.commit(&p2);
        assert!(view(&pool, 1000).waiting.is_empty());
        // Chunks complete in pipeline order; only the final one emits.
        let o1 = pool.complete(&p1);
        assert!(o1.emitted.is_empty());
        let o2 = pool.complete(&p2);
        assert_eq!(o2.emitted, vec![EmittedToken { seq: 1, finished: false }]);
        assert_eq!(pool.seq(1).unwrap().generated, 1);
    }

    #[test]
    fn non_cpp_pool_hides_in_flight_waiting_sequences() {
        let mut pool = RequestPool::new(1024); // cpp off
        pool.add(1, 100, 3);
        let p1 = BatchPlan { prefill: vec![chunk(1, 60, 0, false)], decode: vec![] };
        pool.commit(&p1);
        assert!(view(&pool, 1000).waiting.is_empty());
    }

    #[test]
    fn uncommit_restores_the_pre_commit_state() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 100, 5);
        pool.add(2, 10, 5);
        // Seq 2 reaches decode; seq 1 is mid-prefill.
        let warm = BatchPlan { prefill: vec![chunk(2, 10, 0, true)], decode: vec![] };
        pool.commit(&warm);
        pool.complete(&warm);
        let lost = BatchPlan {
            prefill: vec![chunk(1, 40, 0, false)],
            decode: vec![slot(2, 10)],
        };
        pool.commit(&lost);
        assert!(pool.seq(1).unwrap().is_in_flight());
        assert!(pool.seq(2).unwrap().is_in_flight());
        pool.uncommit(&lost);
        let s1 = pool.seq(1).unwrap();
        assert!(!s1.is_in_flight());
        assert_eq!(s1.prefilled, 0);
        assert_eq!(s1.remaining_prefill(), 100);
        let s2 = pool.seq(2).unwrap();
        assert!(!s2.is_in_flight());
        assert_eq!(s2.context_len(), 10, "decode KV rolled back");
        assert_eq!(s2.generated, 1, "emitted tokens are untouched");
        // The identical plan recommits cleanly (not stale).
        pool.commit(&lost);
        pool.complete(&lost);
    }

    #[test]
    fn uncommit_skips_unknown_sequences() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 10, 5);
        let plan = BatchPlan { prefill: vec![chunk(1, 10, 0, true), chunk(9, 4, 0, true)], decode: vec![] };
        // Only seq 1 exists; the rollback must not panic on seq 9.
        pool.uncommit(&BatchPlan { prefill: vec![chunk(9, 4, 0, true)], decode: vec![] });
        drop(plan);
        assert_eq!(pool.seq(1).unwrap().prefilled, 0);
    }

    #[test]
    fn preempt_all_live_resets_everything_with_context() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 10, 5); // will be decoding with 10 KV
        pool.add(2, 80, 5); // will be mid-prefill with 30 KV
        pool.add(3, 20, 5); // never scheduled: no context, left alone
        let p1 = BatchPlan { prefill: vec![chunk(1, 10, 0, true)], decode: vec![] };
        pool.commit(&p1);
        pool.complete(&p1);
        let p2 = BatchPlan { prefill: vec![chunk(2, 30, 0, false)], decode: vec![] };
        pool.commit(&p2);
        pool.complete(&p2);
        let reset = pool.preempt_all_live();
        assert_eq!(reset, vec![1, 2]);
        for id in [1, 2] {
            let s = pool.seq(id).unwrap();
            assert_eq!(s.phase, Phase::Waiting, "seq {id}");
            assert_eq!(s.context_len(), 0, "seq {id}");
            assert_eq!(s.preemptions, 1, "seq {id}");
        }
        // Seq 1 recomputes its generated token as prompt.
        assert_eq!(pool.seq(1).unwrap().remaining_prefill(), 11);
        let s3 = pool.seq(3).unwrap();
        assert_eq!(s3.preemptions, 0, "contextless sequence untouched");
        assert_eq!(s3.remaining_prefill(), 20);
    }

    #[test]
    fn preempt_skips_in_flight_sequences() {
        let mut pool = RequestPool::new(1024);
        pool.add(1, 10, 5);
        let p = BatchPlan { prefill: vec![chunk(1, 10, 0, true)], decode: vec![] };
        pool.commit(&p);
        pool.complete(&p);
        let d = BatchPlan { prefill: vec![], decode: vec![slot(1, 10)] };
        pool.commit(&d);
        assert!(pool.preempt_latest().is_none());
    }

    /// Drive a full workload through a policy end-to-end on the pool alone:
    /// every request must finish with exactly `max_output` tokens, under
    /// both Sarathi and Token Throttling.
    fn drive_to_completion(policy: &dyn SchedulePolicy) -> (usize, usize) {
        let mut pool = RequestPool::new(1024);
        for id in 0..20 {
            pool.add(id, 64 + (id as usize * 13) % 200, 1 + (id as usize * 7) % 30);
        }
        let mut iterations = 0;
        let mut tokens = 0;
        while pool.has_work() {
            iterations += 1;
            assert!(iterations < 10_000, "policy failed to drain the pool");
            let view = pool.view(1.0, Tokens(usize::MAX), Tokens(1), 4);
            let plan = policy.plan(&view);
            if plan.is_empty() {
                // Nothing schedulable (everything in flight) cannot happen
                // in this single-batch loop.
                panic!("empty plan with work remaining");
            }
            pool.commit(&plan);
            tokens += pool.complete(&plan).emitted.len();
        }
        (iterations, tokens)
    }

    #[test]
    fn fast_view_matches_legacy_for_sorted_and_unsorted_arrivals() {
        // Sorted ids hit the direct map walk; out-of-order ids (5 before 3)
        // must fall back to the order-vector walk so FCFS is preserved.
        // Either way the view must equal the legacy pool's bit for bit.
        for ids in [vec![1u64, 2, 3, 4], vec![5u64, 3, 9, 1]] {
            let build = |fast: bool| {
                let mut pool = RequestPool::new(1024).with_fast_path(fast);
                for &id in &ids {
                    pool.add(id, 20 + id as usize, 4);
                }
                // Move the first arrival into decode so the view has both
                // waiting and decodable entries.
                let first = ids[0];
                let plan = BatchPlan {
                    prefill: vec![chunk(first, 20 + first as usize, 0, true)],
                    decode: vec![],
                };
                pool.commit(&plan);
                pool.complete(&plan);
                pool
            };
            let fast = build(true);
            let legacy = build(false);
            let (vf, vl) = (view(&fast, 1000), view(&legacy, 1000));
            assert_eq!(vf.waiting, vl.waiting, "ids {ids:?}");
            assert_eq!(vf.decodable, vl.decodable, "ids {ids:?}");
            assert_eq!(vf.total_decode_seqs, vl.total_decode_seqs);
            assert_eq!(vf.in_flight_seqs, vl.in_flight_seqs);
            // FCFS: waiting is in arrival order, not id order.
            let expect: Vec<u64> = ids[1..].to_vec();
            let got: Vec<u64> = vf.waiting.iter().map(|w| w.seq).collect();
            assert_eq!(got, expect, "arrival order lost");
        }
    }

    #[test]
    fn unfinished_counter_tracks_the_full_scan() {
        let mut pool = RequestPool::new(1024);
        for id in 0..5u64 {
            pool.add(id, 8, 1);
        }
        assert_eq!(pool.unfinished_count(), 5);
        // Finishing a request (prefill emits its only token) decrements.
        let plan = BatchPlan { prefill: vec![chunk(0, 8, 0, true)], decode: vec![] };
        pool.commit(&plan);
        let out = pool.complete(&plan);
        assert_eq!(out.finished, vec![0]);
        assert_eq!(pool.unfinished_count(), 4);
        pool.abort(4);
        assert_eq!(pool.unfinished_count(), 3);
        // The counter agrees with the legacy scan.
        let legacy = pool.clone().with_fast_path(false);
        assert_eq!(legacy.unfinished_count(), 3);
    }

    #[test]
    fn policies_drain_the_pool_and_emit_every_token() {
        let expected: usize = (0..20u64).map(|id| 1 + (id as usize * 7) % 30).sum();
        let (_, tokens) = drive_to_completion(&SarathiServe::default());
        assert_eq!(tokens, expected);
        let (_, tokens) = drive_to_completion(&TokenThrottle::default());
        assert_eq!(tokens, expected);
    }
}
