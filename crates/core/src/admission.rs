//! KV admission: materialise a proposed plan against the cache.
//!
//! Policies propose token counts; the engine must make them physically
//! admissible (§3.1's constraints): every decode step needs one KV slot
//! (preempting the latest-arrival sequence when the cache is full, vLLM's
//! recompute-preemption), and prefill chunks are trimmed to the free space.
//! Both execution planes (the discrete-event simulator and the threaded
//! runtime) call this same function, so admission behaviour is identical.

use gllm_kvcache::KvCacheManager;
use gllm_units::Tokens;

use crate::plan::{BatchPlan, PrefillChunk};
use crate::pool::RequestPool;

/// Result of admitting a plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Admission {
    /// The physically admissible plan (KV already allocated for it).
    pub plan: BatchPlan,
    /// Sequences evicted to make room (recorded for metrics; their pool
    /// state is already reset to Waiting).
    pub preempted: Vec<u64>,
}

/// Allocate KV for `proposed`, preempting and trimming as needed.
///
/// On return, every chunk/slot in `Admission::plan` has its KV slots
/// reserved, and the plan is ready for [`RequestPool::commit`].
pub fn admit(proposed: BatchPlan, pool: &mut RequestPool, kv: &mut KvCacheManager) -> Admission {
    let mut preempted = Vec::new();
    let mut decode = Vec::with_capacity(proposed.decode.len());
    // Sequences whose KV is already reserved in this admission must not be
    // evicted (their slots are committed); merely *proposed* sequences are
    // fair game — vLLM likewise sacrifices the lowest-priority running
    // sequence so higher-priority ones can proceed.
    let mut protected: Vec<u64> = Vec::with_capacity(proposed.decode.len() + 1);
    let mut pending: std::collections::VecDeque<_> = proposed.decode.into();
    let fast = pool.fast_path();
    while let Some(slot) = pending.pop_front() {
        loop {
            // Fast path: append directly and treat the (rare) out-of-blocks
            // error as the preemption trigger — one map probe per slot
            // instead of the legacy check-then-append pair. `append` is
            // atomic, so a failure allocates nothing; both paths admit the
            // identical plan.
            let admitted = if fast {
                kv.append(slot.seq, Tokens(1)).is_ok()
            } else if kv.can_append(slot.seq, Tokens(1)) {
                kv.append(slot.seq, Tokens(1)).expect("checked"); // lint:allow(panic-freedom): can_append checked on the previous line
                true
            } else {
                false
            };
            if admitted {
                protected.push(slot.seq);
                decode.push(slot);
                break;
            }
            protected.push(slot.seq); // never self-evict for one's own slot
            let victim = pool.preempt_latest_excluding(&protected);
            protected.pop();
            match victim {
                Some((victim, _)) => {
                    // lint:allow(panic-freedom): preempt_latest_excluding only returns decoding victims that hold KV
                    kv.evict(victim).expect("victim held KV");
                    preempted.push(victim);
                    // The victim is Waiting now; any of its still-pending
                    // slots would be stale.
                    pending.retain(|s| s.seq != victim);
                }
                None => break, // drop the slot; the sequence waits
            }
        }
    }

    let mut prefill = Vec::with_capacity(proposed.prefill.len());
    for chunk in proposed.prefill {
        let take = chunk.tokens.min(kv.max_appendable(chunk.seq));
        if take.is_zero() {
            continue;
        }
        kv.append(chunk.seq, take).expect("sized to fit"); // lint:allow(panic-freedom): take is clamped to max_appendable above
        prefill.push(PrefillChunk {
            seq: chunk.seq,
            tokens: take,
            context_before: chunk.context_before,
            completes_prompt: chunk.completes_prompt && take == chunk.tokens,
        });
    }

    Admission { plan: BatchPlan { prefill, decode }, preempted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::DecodeSlot;

    fn decoding_pool(ids: &[u64], prompt: usize, kv: &mut KvCacheManager) -> RequestPool {
        let mut pool = RequestPool::new(1024);
        for &id in ids {
            pool.add(id, prompt, 50);
            let plan = BatchPlan {
                prefill: vec![PrefillChunk {
                    seq: id,
                    tokens: Tokens(prompt),
                    context_before: Tokens(0),
                    completes_prompt: true,
                }],
                decode: vec![],
            };
            let adm = admit(plan, &mut pool, kv);
            pool.commit(&adm.plan);
            pool.complete(&adm.plan);
        }
        pool
    }

    #[test]
    fn admits_what_fits_without_preemption() {
        let mut kv = KvCacheManager::new(gllm_kvcache::Blocks(64), Tokens(16));
        let mut pool = decoding_pool(&[1, 2], 16, &mut kv);
        let plan = BatchPlan {
            prefill: vec![],
            decode: vec![
                DecodeSlot { seq: 1, context_before: Tokens(16) },
                DecodeSlot { seq: 2, context_before: Tokens(16) },
            ],
        };
        let adm = admit(plan, &mut pool, &mut kv);
        assert_eq!(adm.plan.decode.len(), 2);
        assert!(adm.preempted.is_empty());
    }

    #[test]
    fn full_cache_preempts_latest_nonplanned_sequence() {
        // 3 sequences of 16 tokens fill 3 blocks; only seq 1's decode is
        // planned, so seq 3 (latest) should be evicted to make room.
        let mut kv = KvCacheManager::new(gllm_kvcache::Blocks(3), Tokens(16));
        let mut pool = decoding_pool(&[1, 2, 3], 16, &mut kv);
        let plan = BatchPlan {
            prefill: vec![],
            decode: vec![DecodeSlot { seq: 1, context_before: Tokens(16) }],
        };
        let adm = admit(plan, &mut pool, &mut kv);
        assert_eq!(adm.plan.decode.len(), 1);
        assert_eq!(adm.preempted, vec![3]);
        assert!(!kv.contains(3));
    }

    #[test]
    fn proposed_but_unplaced_sequences_may_be_sacrificed() {
        // Cache completely full with the two planned sequences themselves:
        // the earlier (higher-priority) one proceeds by evicting the later
        // one, exactly vLLM's recompute-preemption — no deadlock.
        let mut kv = KvCacheManager::new(gllm_kvcache::Blocks(2), Tokens(16));
        let mut pool = decoding_pool(&[1, 2], 16, &mut kv);
        let plan = BatchPlan {
            prefill: vec![],
            decode: vec![
                DecodeSlot { seq: 1, context_before: Tokens(16) },
                DecodeSlot { seq: 2, context_before: Tokens(16) },
            ],
        };
        let adm = admit(plan, &mut pool, &mut kv);
        assert_eq!(adm.preempted, vec![2]);
        assert_eq!(adm.plan.decode.len(), 1);
        assert_eq!(adm.plan.decode[0].seq, 1);
        assert!(!kv.contains(2), "victim's KV was released");
    }

    #[test]
    fn placed_sequences_are_never_evicted_and_self_eviction_is_impossible() {
        // Three sequences fill the cache; planning all three lets seq 1
        // evict seq 3, seq 2 then finds no victim (1 placed, itself
        // excluded) and its slot drops — but nothing already placed is
        // ever clawed back.
        let mut kv = KvCacheManager::new(gllm_kvcache::Blocks(3), Tokens(16));
        let mut pool = decoding_pool(&[1, 2, 3], 16, &mut kv);
        let plan = BatchPlan {
            prefill: vec![],
            decode: vec![
                DecodeSlot { seq: 1, context_before: Tokens(16) },
                DecodeSlot { seq: 2, context_before: Tokens(16) },
                DecodeSlot { seq: 3, context_before: Tokens(16) },
            ],
        };
        let adm = admit(plan, &mut pool, &mut kv);
        assert_eq!(adm.preempted, vec![3]);
        assert_eq!(adm.plan.decode.len(), 1);
        assert_eq!(adm.plan.decode[0].seq, 1);
        assert!(kv.contains(1) && kv.contains(2));
    }

    #[test]
    fn prefill_chunks_trim_to_free_space() {
        let mut kv = KvCacheManager::new(gllm_kvcache::Blocks(4), Tokens(16));
        let mut pool = RequestPool::new(1024);
        pool.add(1, 100, 5);
        let plan = BatchPlan {
            prefill: vec![PrefillChunk {
                seq: 1,
                tokens: Tokens(100),
                context_before: Tokens(0),
                completes_prompt: true,
            }],
            decode: vec![],
        };
        let adm = admit(plan, &mut pool, &mut kv);
        assert_eq!(adm.plan.prefill.len(), 1);
        assert_eq!(adm.plan.prefill[0].tokens, Tokens(64));
        assert!(!adm.plan.prefill[0].completes_prompt, "trim must clear the flag");
    }

    #[test]
    fn zero_space_drops_prefill_entirely() {
        let mut kv = KvCacheManager::new(gllm_kvcache::Blocks(1), Tokens(16));
        let mut pool = RequestPool::new(1024);
        pool.add(1, 16, 5);
        pool.add(2, 16, 5);
        let p1 = BatchPlan {
            prefill: vec![PrefillChunk { seq: 1, tokens: Tokens(16), context_before: Tokens(0), completes_prompt: true }],
            decode: vec![],
        };
        let adm1 = admit(p1, &mut pool, &mut kv);
        pool.commit(&adm1.plan);
        let p2 = BatchPlan {
            prefill: vec![PrefillChunk { seq: 2, tokens: Tokens(16), context_before: Tokens(0), completes_prompt: true }],
            decode: vec![],
        };
        let adm2 = admit(p2, &mut pool, &mut kv);
        assert!(adm2.plan.is_empty());
    }
}
