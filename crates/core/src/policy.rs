//! The scheduling-policy abstraction and its input snapshot.
//!
//! A policy sees a [`ScheduleView`] — the global information the paper's
//! driver worker collects before each schedule (§3.1: "gLLM collects the
//! number of tokens across all awaiting prefill requests" and "the KV cache
//! free rate") — and returns a [`BatchPlan`]. Policies are pure and
//! deterministic; all mutation happens in [`crate::pool::RequestPool`].
//!
//! Token and block quantities at this interface carry the `gllm-units`
//! newtypes; the *only* sanctioned token↔block conversions are
//! `Tokens::to_blocks` / `Tokens::full_blocks` / `Blocks::to_tokens`.

use gllm_units::{Blocks, Tokens};

use crate::plan::{BatchPlan, DecodeSlot, PrefillChunk};

/// A waiting (prefill-schedulable) sequence, FCFS order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingSeq {
    /// Sequence id.
    pub seq: u64,
    /// Prompt tokens still to prefill.
    pub remaining_prefill: Tokens,
    /// KV context already committed (previous chunks).
    pub context_before: Tokens,
}

/// A decodable (running, not in-flight) sequence, FCFS order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodableSeq {
    /// Sequence id.
    pub seq: u64,
    /// KV context committed before the next step.
    pub context_before: Tokens,
}

/// Immutable snapshot handed to a policy before each micro-batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleView {
    /// Prefill-schedulable sequences in arrival order.
    pub waiting: Vec<WaitingSeq>,
    /// Decode-schedulable sequences in arrival order.
    pub decodable: Vec<DecodableSeq>,
    /// Total sequences in the decode phase, including those inside
    /// in-flight micro-batches — the paper's `#RD` (Eq. 4 counts *all*
    /// running decode tokens, distributed over `#PP_depth` batches).
    pub total_decode_seqs: usize,
    /// The paper's `KV_free ∈ [0, 1]`.
    pub kv_free_rate: f64,
    /// Free KV slots (tokens) available for new allocations right now.
    /// Always a whole number of free blocks (`free_blocks × block_size`).
    pub kv_free_tokens: Tokens,
    /// KV block size in tokens — allocation is block-granular, so a chunk
    /// or decode step may consume a whole block for its first token.
    pub block_size: Tokens,
    /// Sequences currently inside in-flight micro-batches (any phase).
    pub in_flight_seqs: usize,
    /// Pipeline depth (`#PP_depth`), 1 for tensor parallelism.
    pub pipeline_depth: usize,
    /// Engine cap on sequences per batch (vLLM's `--max-num-seqs`).
    pub max_seqs_per_batch: usize,
}

impl ScheduleView {
    /// The paper's `#WP`: total tokens awaiting prefill.
    pub fn waiting_tokens(&self) -> Tokens {
        self.waiting.iter().map(|w| w.remaining_prefill).sum()
    }
}

/// A scheduling policy: pure function from view to plan.
pub trait SchedulePolicy: Send + Sync {
    /// Compose the next micro-batch.
    fn plan(&self, view: &ScheduleView) -> BatchPlan;

    /// Short name for reports and bench rows.
    fn name(&self) -> &'static str;

    /// Budget caps this policy guarantees its plans respect, as
    /// `(prefill_tokens, decode_seqs)`. `None` when the policy has no
    /// closed-form budget; the invariant auditor then only checks that
    /// admission never grows the plan.
    fn budget_caps(&self, _view: &ScheduleView) -> Option<(Tokens, usize)> {
        None
    }
}

/// Blocks a sequence at `context` tokens must newly acquire to append
/// `tokens` more, given block-granular allocation (the sequence already
/// holds `ceil(context / block_size)` blocks).
pub fn blocks_to_append(context: Tokens, tokens: Tokens, block_size: Tokens) -> Blocks {
    (context + tokens).to_blocks(block_size) - context.to_blocks(block_size)
}

/// KV tokens (whole free blocks) left for prefill after conservatively
/// reserving the blocks this iteration's decode steps may claim: a decode
/// step allocates a fresh block exactly when its context is block-aligned.
/// Returns 0 when decode growth alone can exhaust free KV — the policy
/// must then propose no prefill and let preemption resolve the pressure.
pub fn prefill_kv_after_decode(
    kv_free_tokens: Tokens,
    decode: &[DecodeSlot],
    block_size: Tokens,
) -> Tokens {
    let mut blocks_left = kv_free_tokens.full_blocks(block_size);
    for d in decode {
        let need = blocks_to_append(d.context_before, Tokens(1), block_size);
        if need > blocks_left {
            return Tokens::ZERO;
        }
        blocks_left -= need;
    }
    blocks_left.to_tokens(block_size)
}

/// Shared helper: greedily carve prefill chunks FCFS from `waiting` until
/// `token_budget` tokens, `seq_budget` sequences or `kv_free_tokens` slots
/// are exhausted, marking the chunk that completes each prompt.
///
/// Every policy in the paper (Sarathi, vLLM, SGLang, gLLM) admits prefill
/// FCFS with chunking; they differ only in how `token_budget` is chosen.
// lint:allow(unit-confusion): seq_budget counts admitted sequences, not tokens
pub fn carve_prefill_chunks(
    waiting: &[WaitingSeq],
    token_budget: Tokens,
    seq_budget: usize,
    kv_free_tokens: Tokens,
) -> Vec<PrefillChunk> {
    carve_prefill_chunks_block_aware(waiting, token_budget, seq_budget, kv_free_tokens, Tokens(1))
}

/// Like [`carve_prefill_chunks`], but block-granular: `kv_free_tokens`
/// counts whole free blocks worth of tokens, and each chunk is charged the
/// blocks it newly acquires. A partially-filled last block gives its owner
/// `slack` tokens that cost nothing, so a sequence mid-prefill may still
/// take a small chunk even when no whole block is free.
// lint:allow(unit-confusion): seq_budget counts admitted sequences, not tokens
pub fn carve_prefill_chunks_block_aware(
    waiting: &[WaitingSeq],
    token_budget: Tokens,
    seq_budget: usize,
    kv_free_tokens: Tokens,
    block_size: Tokens,
) -> Vec<PrefillChunk> {
    let mut chunks = Vec::new();
    let mut budget = token_budget;
    let mut blocks_left = kv_free_tokens.full_blocks(block_size);
    for w in waiting.iter().take(seq_budget) {
        if budget.is_zero() {
            break;
        }
        let slack = w.context_before.to_blocks(block_size).to_tokens(block_size)
            - w.context_before;
        let appendable = slack + blocks_left.to_tokens(block_size);
        let take = w.remaining_prefill.min(budget).min(appendable);
        if take.is_zero() {
            // This sequence cannot grow, but a later one with slack in its
            // partial block still might.
            continue;
        }
        chunks.push(PrefillChunk {
            seq: w.seq,
            tokens: take,
            context_before: w.context_before,
            completes_prompt: take == w.remaining_prefill,
        });
        budget -= take;
        blocks_left -= blocks_to_append(w.context_before, take, block_size);
    }
    chunks
}

/// Like [`carve_prefill_chunks`], but budgets *estimated cost* rather than
/// raw token count: each token of a chunk at context `c` is weighted
/// `1 + c / quad_ref`, where `quad_ref` is the context length at which the
/// quadratic attention cost equals the linear projection cost.
///
/// This implements the paper's §6 future-work item ("incorporate the
/// context length of each sequence to enable more accurate estimation of
/// forward pass time"): with plain token budgeting, a 512-token chunk at
/// context 8 K costs far more wall-clock than a 512-token chunk at context
/// 0, re-introducing inter-batch imbalance on long-context workloads.
// lint:allow(unit-confusion): seq_budget counts admitted sequences, not tokens
pub fn carve_prefill_chunks_weighted(
    waiting: &[WaitingSeq],
    cost_budget: f64,
    seq_budget: usize,
    kv_free_tokens: Tokens,
    block_size: Tokens,
    quad_ref: f64,
) -> Vec<PrefillChunk> {
    assert!(quad_ref > 0.0);
    let mut chunks = Vec::new();
    let mut budget = cost_budget;
    let mut blocks_left = kv_free_tokens.full_blocks(block_size);
    for w in waiting.iter().take(seq_budget) {
        if budget <= 0.0 {
            break;
        }
        // Cost of n tokens starting at context c:
        //   n + (c·n + n²/2) / quad_ref
        // Solve for the largest n within budget (quadratic formula), then
        // clamp by the remaining prompt and the block-granular KV space.
        let c = w.context_before.get() as f64;
        let a = 0.5 / quad_ref;
        let b = 1.0 + c / quad_ref;
        let n_max = ((-b + (b * b + 4.0 * a * budget).sqrt()) / (2.0 * a)).floor();
        let slack = w.context_before.to_blocks(block_size).to_tokens(block_size)
            - w.context_before;
        let take = Tokens(n_max.max(0.0) as usize)
            .min(w.remaining_prefill)
            .min(slack + blocks_left.to_tokens(block_size));
        if take.is_zero() {
            continue;
        }
        let n = take.get() as f64;
        let cost = n + (c * n + n * n / 2.0) / quad_ref;
        chunks.push(PrefillChunk {
            seq: w.seq,
            tokens: take,
            context_before: w.context_before,
            completes_prompt: take == w.remaining_prefill,
        });
        budget -= cost;
        blocks_left -= blocks_to_append(w.context_before, take, block_size);
    }
    chunks
}

/// Shared helper: schedule the first `n` decodable sequences.
pub fn take_decodes(decodable: &[DecodableSeq], n: usize) -> Vec<DecodeSlot> {
    decodable
        .iter()
        .take(n)
        .map(|d| DecodeSlot { seq: d.seq, context_before: d.context_before })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_KV_LIMIT: Tokens = Tokens(usize::MAX);

    fn waiting(specs: &[(u64, usize)]) -> Vec<WaitingSeq> {
        specs
            .iter()
            .map(|&(seq, rem)| WaitingSeq {
                seq,
                remaining_prefill: Tokens(rem),
                context_before: Tokens(0),
            })
            .collect()
    }

    #[test]
    fn carving_respects_token_budget_and_marks_completion() {
        let w = waiting(&[(1, 300), (2, 500)]);
        let chunks = carve_prefill_chunks(&w, Tokens(400), 10, NO_KV_LIMIT);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].tokens, Tokens(300));
        assert!(chunks[0].completes_prompt);
        assert_eq!(chunks[1].tokens, Tokens(100));
        assert!(!chunks[1].completes_prompt);
    }

    #[test]
    fn carving_respects_kv_limit() {
        let w = waiting(&[(1, 300)]);
        let chunks = carve_prefill_chunks(&w, Tokens(1000), 10, Tokens(120));
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].tokens, Tokens(120));
        assert!(!chunks[0].completes_prompt);
    }

    #[test]
    fn carving_respects_seq_budget() {
        let w = waiting(&[(1, 10), (2, 10), (3, 10)]);
        let chunks = carve_prefill_chunks(&w, Tokens(1000), 2, NO_KV_LIMIT);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn zero_budget_yields_no_chunks() {
        let w = waiting(&[(1, 10)]);
        assert!(carve_prefill_chunks(&w, Tokens(0), 10, NO_KV_LIMIT).is_empty());
        assert!(carve_prefill_chunks(&w, Tokens(10), 10, Tokens(0)).is_empty());
    }

    #[test]
    fn weighted_carving_matches_plain_at_zero_context() {
        // With context 0 and a huge quad_ref, weighting is ≈1 per token.
        let w = waiting(&[(1, 300), (2, 500)]);
        let plain = carve_prefill_chunks(&w, Tokens(400), 10, NO_KV_LIMIT);
        let weighted =
            carve_prefill_chunks_weighted(&w, 400.0, 10, NO_KV_LIMIT, Tokens(1), 1e12);
        assert_eq!(plain, weighted);
    }

    #[test]
    fn weighted_carving_shrinks_long_context_chunks() {
        let near = vec![WaitingSeq {
            seq: 1,
            remaining_prefill: Tokens(4096),
            context_before: Tokens(0),
        }];
        let far = vec![WaitingSeq {
            seq: 2,
            remaining_prefill: Tokens(4096),
            context_before: Tokens(16_384),
        }];
        let a = carve_prefill_chunks_weighted(&near, 1024.0, 10, NO_KV_LIMIT, Tokens(1), 8192.0);
        let b = carve_prefill_chunks_weighted(&far, 1024.0, 10, NO_KV_LIMIT, Tokens(1), 8192.0);
        assert!(
            b[0].tokens.get() < a[0].tokens.get() / 2,
            "context 16K chunk ({}) should be much smaller than context-0 ({})",
            b[0].tokens,
            a[0].tokens
        );
    }

    #[test]
    fn weighted_carving_cost_accounting_is_consistent() {
        // The carved chunks' summed cost never exceeds the budget.
        let w = vec![
            WaitingSeq {
                seq: 1,
                remaining_prefill: Tokens(700),
                context_before: Tokens(2000),
            },
            WaitingSeq {
                seq: 2,
                remaining_prefill: Tokens(900),
                context_before: Tokens(0),
            },
        ];
        let quad_ref = 4096.0;
        let budget = 800.0;
        let chunks =
            carve_prefill_chunks_weighted(&w, budget, 10, NO_KV_LIMIT, Tokens(1), quad_ref);
        let cost: f64 = chunks
            .iter()
            .map(|c| {
                let n = c.tokens.get() as f64;
                n + (c.context_before.get() as f64 * n + n * n / 2.0) / quad_ref
            })
            .sum();
        assert!(cost <= budget * 1.01, "cost {cost} exceeds budget {budget}");
        assert!(!chunks.is_empty());
    }

    #[test]
    fn blocks_to_append_counts_block_boundaries() {
        let bs = Tokens(16);
        assert_eq!(blocks_to_append(Tokens(0), Tokens(16), bs), Blocks(1));
        assert_eq!(blocks_to_append(Tokens(15), Tokens(1), bs), Blocks(0));
        assert_eq!(blocks_to_append(Tokens(16), Tokens(1), bs), Blocks(1));
        assert_eq!(blocks_to_append(Tokens(20), Tokens(12), bs), Blocks(0));
        assert_eq!(blocks_to_append(Tokens(20), Tokens(13), bs), Blocks(1));
    }

    #[test]
    fn block_aware_carving_charges_whole_blocks() {
        // One free block of 16; a fresh sequence can take at most 16
        // tokens even with a huge token budget.
        let w = waiting(&[(1, 300)]);
        let chunks =
            carve_prefill_chunks_block_aware(&w, Tokens(1000), 10, Tokens(16), Tokens(16));
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].tokens, Tokens(16));
    }

    #[test]
    fn block_aware_carving_uses_partial_block_slack() {
        // Context 20 owns 2 blocks of 16 with 12 tokens of slack; with no
        // free blocks it may still grow by exactly that slack.
        let w = vec![WaitingSeq {
            seq: 1,
            remaining_prefill: Tokens(300),
            context_before: Tokens(20),
        }];
        let chunks = carve_prefill_chunks_block_aware(&w, Tokens(1000), 10, Tokens(0), Tokens(16));
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].tokens, Tokens(12));
    }

    #[test]
    fn block_aware_carving_skips_stuck_head_for_slack_holder() {
        // A fresh head can't allocate (no free blocks), but a later
        // sequence with slack in its partial block still proceeds.
        let w = vec![
            WaitingSeq {
                seq: 1,
                remaining_prefill: Tokens(100),
                context_before: Tokens(0),
            },
            WaitingSeq {
                seq: 2,
                remaining_prefill: Tokens(100),
                context_before: Tokens(24),
            },
        ];
        let chunks = carve_prefill_chunks_block_aware(&w, Tokens(1000), 10, Tokens(0), Tokens(16));
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].seq, 2);
        assert_eq!(chunks[0].tokens, Tokens(8));
    }

    #[test]
    fn block_aware_with_unit_blocks_matches_plain() {
        let w = waiting(&[(1, 300), (2, 500)]);
        assert_eq!(
            carve_prefill_chunks(&w, Tokens(400), 10, Tokens(120)),
            carve_prefill_chunks_block_aware(&w, Tokens(400), 10, Tokens(120), Tokens(1))
        );
    }

    #[test]
    fn prefill_kv_after_decode_reserves_whole_blocks() {
        // 3 free blocks of 16; two decodes at block-aligned contexts each
        // need a fresh block, one mid-block decode needs none.
        let decode = vec![
            DecodeSlot { seq: 1, context_before: Tokens(32) },
            DecodeSlot { seq: 2, context_before: Tokens(48) },
            DecodeSlot { seq: 3, context_before: Tokens(33) },
        ];
        assert_eq!(prefill_kv_after_decode(Tokens(48), &decode, Tokens(16)), Tokens(16));
        // Decode growth alone exhausts KV → nothing left for prefill.
        assert_eq!(prefill_kv_after_decode(Tokens(16), &decode, Tokens(16)), Tokens(0));
        // Token-granular systems degenerate to the old arithmetic.
        assert_eq!(prefill_kv_after_decode(Tokens(10), &decode, Tokens(1)), Tokens(7));
    }

    #[test]
    fn take_decodes_is_fcfs_prefix() {
        let d = vec![
            DecodableSeq { seq: 5, context_before: Tokens(10) },
            DecodableSeq { seq: 6, context_before: Tokens(20) },
        ];
        let slots = take_decodes(&d, 1);
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].seq, 5);
        assert_eq!(take_decodes(&d, 99).len(), 2);
    }

    #[test]
    fn waiting_tokens_sums_remaining() {
        let v = ScheduleView {
            waiting: waiting(&[(1, 10), (2, 30)]),
            decodable: vec![],
            total_decode_seqs: 0,
            kv_free_rate: 1.0,
            kv_free_tokens: Tokens(100),
            block_size: Tokens(1),
            in_flight_seqs: 0,
            pipeline_depth: 4,
            max_seqs_per_batch: 1024,
        };
        assert_eq!(v.waiting_tokens(), Tokens(40));
    }
}
