//! The scheduling-policy abstraction and its input snapshot.
//!
//! A policy sees a [`ScheduleView`] — the global information the paper's
//! driver worker collects before each schedule (§3.1: "gLLM collects the
//! number of tokens across all awaiting prefill requests" and "the KV cache
//! free rate") — and returns a [`BatchPlan`]. Policies are pure and
//! deterministic; all mutation happens in [`crate::pool::RequestPool`].

use crate::plan::{BatchPlan, DecodeSlot, PrefillChunk};

/// A waiting (prefill-schedulable) sequence, FCFS order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitingSeq {
    /// Sequence id.
    pub seq: u64,
    /// Prompt tokens still to prefill.
    pub remaining_prefill: usize,
    /// KV context already committed (previous chunks).
    pub context_before: usize,
}

/// A decodable (running, not in-flight) sequence, FCFS order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodableSeq {
    /// Sequence id.
    pub seq: u64,
    /// KV context committed before the next step.
    pub context_before: usize,
}

/// Immutable snapshot handed to a policy before each micro-batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleView {
    /// Prefill-schedulable sequences in arrival order.
    pub waiting: Vec<WaitingSeq>,
    /// Decode-schedulable sequences in arrival order.
    pub decodable: Vec<DecodableSeq>,
    /// Total sequences in the decode phase, including those inside
    /// in-flight micro-batches — the paper's `#RD` (Eq. 4 counts *all*
    /// running decode tokens, distributed over `#PP_depth` batches).
    pub total_decode_seqs: usize,
    /// The paper's `KV_free ∈ [0, 1]`.
    pub kv_free_rate: f64,
    /// Free KV slots (tokens) available for new allocations right now.
    pub kv_free_tokens: usize,
    /// Sequences currently inside in-flight micro-batches (any phase).
    pub in_flight_seqs: usize,
    /// Pipeline depth (`#PP_depth`), 1 for tensor parallelism.
    pub pipeline_depth: usize,
    /// Engine cap on sequences per batch (vLLM's `--max-num-seqs`).
    pub max_seqs_per_batch: usize,
}

impl ScheduleView {
    /// The paper's `#WP`: total tokens awaiting prefill.
    pub fn waiting_tokens(&self) -> usize {
        self.waiting.iter().map(|w| w.remaining_prefill).sum()
    }
}

/// A scheduling policy: pure function from view to plan.
pub trait SchedulePolicy: Send + Sync {
    /// Compose the next micro-batch.
    fn plan(&self, view: &ScheduleView) -> BatchPlan;

    /// Short name for reports and bench rows.
    fn name(&self) -> &'static str;
}

/// Shared helper: greedily carve prefill chunks FCFS from `waiting` until
/// `token_budget` tokens, `seq_budget` sequences or `kv_free_tokens` slots
/// are exhausted, marking the chunk that completes each prompt.
///
/// Every policy in the paper (Sarathi, vLLM, SGLang, gLLM) admits prefill
/// FCFS with chunking; they differ only in how `token_budget` is chosen.
pub fn carve_prefill_chunks(
    waiting: &[WaitingSeq],
    token_budget: usize,
    seq_budget: usize,
    kv_free_tokens: usize,
) -> Vec<PrefillChunk> {
    let mut chunks = Vec::new();
    let mut budget = token_budget.min(kv_free_tokens);
    for w in waiting.iter().take(seq_budget) {
        if budget == 0 {
            break;
        }
        let take = w.remaining_prefill.min(budget);
        chunks.push(PrefillChunk {
            seq: w.seq,
            tokens: take,
            context_before: w.context_before,
            completes_prompt: take == w.remaining_prefill,
        });
        budget -= take;
    }
    chunks
}

/// Like [`carve_prefill_chunks`], but budgets *estimated cost* rather than
/// raw token count: each token of a chunk at context `c` is weighted
/// `1 + c / quad_ref`, where `quad_ref` is the context length at which the
/// quadratic attention cost equals the linear projection cost.
///
/// This implements the paper's §6 future-work item ("incorporate the
/// context length of each sequence to enable more accurate estimation of
/// forward pass time"): with plain token budgeting, a 512-token chunk at
/// context 8 K costs far more wall-clock than a 512-token chunk at context
/// 0, re-introducing inter-batch imbalance on long-context workloads.
pub fn carve_prefill_chunks_weighted(
    waiting: &[WaitingSeq],
    cost_budget: f64,
    seq_budget: usize,
    kv_free_tokens: usize,
    quad_ref: f64,
) -> Vec<PrefillChunk> {
    assert!(quad_ref > 0.0);
    let mut chunks = Vec::new();
    let mut budget = cost_budget;
    let mut kv_left = kv_free_tokens;
    for w in waiting.iter().take(seq_budget) {
        if budget <= 0.0 || kv_left == 0 {
            break;
        }
        // Cost of n tokens starting at context c:
        //   n + (c·n + n²/2) / quad_ref
        // Solve for the largest n within budget (quadratic formula), then
        // clamp by the remaining prompt and KV space.
        let c = w.context_before as f64;
        let a = 0.5 / quad_ref;
        let b = 1.0 + c / quad_ref;
        let n_max = ((-b + (b * b + 4.0 * a * budget).sqrt()) / (2.0 * a)).floor();
        let take = (n_max.max(0.0) as usize)
            .min(w.remaining_prefill)
            .min(kv_left);
        if take == 0 {
            break;
        }
        let cost = take as f64 + (c * take as f64 + (take * take) as f64 / 2.0) / quad_ref;
        chunks.push(PrefillChunk {
            seq: w.seq,
            tokens: take,
            context_before: w.context_before,
            completes_prompt: take == w.remaining_prefill,
        });
        budget -= cost;
        kv_left -= take;
    }
    chunks
}

/// Shared helper: schedule the first `n` decodable sequences.
pub fn take_decodes(decodable: &[DecodableSeq], n: usize) -> Vec<DecodeSlot> {
    decodable
        .iter()
        .take(n)
        .map(|d| DecodeSlot { seq: d.seq, context_before: d.context_before })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waiting(specs: &[(u64, usize)]) -> Vec<WaitingSeq> {
        specs
            .iter()
            .map(|&(seq, rem)| WaitingSeq { seq, remaining_prefill: rem, context_before: 0 })
            .collect()
    }

    #[test]
    fn carving_respects_token_budget_and_marks_completion() {
        let w = waiting(&[(1, 300), (2, 500)]);
        let chunks = carve_prefill_chunks(&w, 400, 10, usize::MAX);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].tokens, 300);
        assert!(chunks[0].completes_prompt);
        assert_eq!(chunks[1].tokens, 100);
        assert!(!chunks[1].completes_prompt);
    }

    #[test]
    fn carving_respects_kv_limit() {
        let w = waiting(&[(1, 300)]);
        let chunks = carve_prefill_chunks(&w, 1000, 10, 120);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].tokens, 120);
        assert!(!chunks[0].completes_prompt);
    }

    #[test]
    fn carving_respects_seq_budget() {
        let w = waiting(&[(1, 10), (2, 10), (3, 10)]);
        let chunks = carve_prefill_chunks(&w, 1000, 2, usize::MAX);
        assert_eq!(chunks.len(), 2);
    }

    #[test]
    fn zero_budget_yields_no_chunks() {
        let w = waiting(&[(1, 10)]);
        assert!(carve_prefill_chunks(&w, 0, 10, usize::MAX).is_empty());
        assert!(carve_prefill_chunks(&w, 10, 10, 0).is_empty());
    }

    #[test]
    fn weighted_carving_matches_plain_at_zero_context() {
        // With context 0 and a huge quad_ref, weighting is ≈1 per token.
        let w = waiting(&[(1, 300), (2, 500)]);
        let plain = carve_prefill_chunks(&w, 400, 10, usize::MAX);
        let weighted = carve_prefill_chunks_weighted(&w, 400.0, 10, usize::MAX, 1e12);
        assert_eq!(plain, weighted);
    }

    #[test]
    fn weighted_carving_shrinks_long_context_chunks() {
        let near = vec![WaitingSeq { seq: 1, remaining_prefill: 4096, context_before: 0 }];
        let far = vec![WaitingSeq { seq: 2, remaining_prefill: 4096, context_before: 16_384 }];
        let a = carve_prefill_chunks_weighted(&near, 1024.0, 10, usize::MAX, 8192.0);
        let b = carve_prefill_chunks_weighted(&far, 1024.0, 10, usize::MAX, 8192.0);
        assert!(
            b[0].tokens < a[0].tokens / 2,
            "context 16K chunk ({}) should be much smaller than context-0 ({})",
            b[0].tokens,
            a[0].tokens
        );
    }

    #[test]
    fn weighted_carving_cost_accounting_is_consistent() {
        // The carved chunks' summed cost never exceeds the budget.
        let w = vec![
            WaitingSeq { seq: 1, remaining_prefill: 700, context_before: 2000 },
            WaitingSeq { seq: 2, remaining_prefill: 900, context_before: 0 },
        ];
        let quad_ref = 4096.0;
        let budget = 800.0;
        let chunks = carve_prefill_chunks_weighted(&w, budget, 10, usize::MAX, quad_ref);
        let cost: f64 = chunks
            .iter()
            .map(|c| {
                let n = c.tokens as f64;
                n + (c.context_before as f64 * n + n * n / 2.0) / quad_ref
            })
            .sum();
        assert!(cost <= budget * 1.01, "cost {cost} exceeds budget {budget}");
        assert!(!chunks.is_empty());
    }

    #[test]
    fn take_decodes_is_fcfs_prefix() {
        let d = vec![
            DecodableSeq { seq: 5, context_before: 10 },
            DecodableSeq { seq: 6, context_before: 20 },
        ];
        let slots = take_decodes(&d, 1);
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].seq, 5);
        assert_eq!(take_decodes(&d, 99).len(), 2);
    }

    #[test]
    fn waiting_tokens_sums_remaining() {
        let v = ScheduleView {
            waiting: waiting(&[(1, 10), (2, 30)]),
            decodable: vec![],
            total_decode_seqs: 0,
            kv_free_rate: 1.0,
            kv_free_tokens: 100,
            in_flight_seqs: 0,
            pipeline_depth: 4,
            max_seqs_per_batch: 1024,
        };
        assert_eq!(v.waiting_tokens(), 40);
    }
}
