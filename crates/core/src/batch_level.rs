//! The FasterTransformer baseline: batch-level (run-to-completion)
//! scheduling.
//!
//! Pre-Orca engines select a group of requests and run it until *every*
//! sequence finishes (§2.2): early-finished sequences idle in the batch and
//! late-joining requests wait outside it. Included as the historical
//! strawman; its head-of-line blocking makes every other policy look good,
//! which is exactly its role in the literature.

use crate::plan::{BatchPlan, PrefillChunk};
use crate::policy::{blocks_to_append, take_decodes, SchedulePolicy, ScheduleView};

/// Batch-level scheduling: admit a batch, run it to completion.
#[derive(Debug, Clone)]
pub struct BatchLevelPolicy {
    /// Sequences admitted per batch.
    pub batch_size: usize,
}

impl Default for BatchLevelPolicy {
    fn default() -> Self {
        Self { batch_size: 32 }
    }
}

impl SchedulePolicy for BatchLevelPolicy {
    fn plan(&self, view: &ScheduleView) -> BatchPlan {
        // A batch is draining while any sequence decodes or is in flight:
        // no admission until the whole batch completes.
        let draining = view.total_decode_seqs > 0 || view.in_flight_seqs > 0;
        if draining {
            let decode = take_decodes(&view.decodable, view.decodable.len());
            return BatchPlan { prefill: Vec::new(), decode };
        }
        // Admit a fresh batch of whole prompts, charging whole KV blocks.
        let bs = view.block_size;
        let mut blocks_left = view.kv_free_tokens.full_blocks(bs);
        let mut prefill = Vec::new();
        for w in view.waiting.iter().take(self.batch_size) {
            let slack = w.context_before.to_blocks(bs).to_tokens(bs) - w.context_before;
            if w.remaining_prefill > slack + blocks_left.to_tokens(bs) {
                break;
            }
            prefill.push(PrefillChunk {
                seq: w.seq,
                tokens: w.remaining_prefill,
                context_before: w.context_before,
                completes_prompt: true,
            });
            blocks_left -= blocks_to_append(w.context_before, w.remaining_prefill, bs);
        }
        BatchPlan { prefill, decode: Vec::new() }
    }

    fn name(&self) -> &'static str {
        "FasterTransformer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DecodableSeq, WaitingSeq};
    use gllm_units::Tokens;

    fn view(
        waiting: &[(u64, usize)],
        decodable: usize,
        total_decode: usize,
        in_flight: usize,
    ) -> ScheduleView {
        ScheduleView {
            waiting: waiting
                .iter()
                .map(|&(seq, rem)| WaitingSeq {
                    seq,
                    remaining_prefill: Tokens(rem),
                    context_before: Tokens(0),
                })
                .collect(),
            decodable: (0..decodable)
                .map(|i| DecodableSeq { seq: 100 + i as u64, context_before: Tokens(64) })
                .collect(),
            total_decode_seqs: total_decode,
            kv_free_rate: 1.0,
            kv_free_tokens: Tokens(1_000_000),
            block_size: Tokens(1),
            in_flight_seqs: in_flight,
            pipeline_depth: 1,
            max_seqs_per_batch: 1024,
        }
    }

    #[test]
    fn admits_fresh_batch_when_idle() {
        let p = BatchLevelPolicy { batch_size: 2 };
        let plan = p.plan(&view(&[(1, 10), (2, 20), (3, 30)], 0, 0, 0));
        assert_eq!(plan.prefill.len(), 2, "batch size caps admission");
        assert!(plan.decode.is_empty());
    }

    #[test]
    fn refuses_admission_while_draining() {
        let p = BatchLevelPolicy::default();
        let plan = p.plan(&view(&[(9, 10)], 3, 3, 0));
        assert!(plan.prefill.is_empty(), "late joiners wait for the batch");
        assert_eq!(plan.decode.len(), 3);
    }

    #[test]
    fn in_flight_prefill_also_blocks_admission() {
        let p = BatchLevelPolicy::default();
        let plan = p.plan(&view(&[(9, 10)], 0, 0, 2));
        assert!(plan.is_empty());
    }
}
