//! Per-request sequence state machine.

use serde::{Deserialize, Serialize};

/// Lifecycle phase of a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Prompt (or recomputed context) not fully prefilled yet.
    Waiting,
    /// Context resident; producing output tokens one decode step at a time.
    Decoding,
    /// All output tokens produced.
    Finished,
}

/// One request's scheduling state.
///
/// Token accounting follows the engines the paper builds on:
///
/// * a prefill over `n` tokens writes `n` KV entries and, when it covers the
///   end of the prompt, emits the **first output token**;
/// * each decode step appends one KV entry (for the token being fed) and
///   emits one output token;
/// * a preemption drops all KV; the sequence re-prefills its original
///   prompt *plus every token generated so far* (their text is known, so
///   they are recomputed as prompt — the "costly recomputation" of §3.1.3),
///   after which the next genuinely new token is emitted.
///
/// `prefilled`/`decode_kv` count tokens *committed* to micro-batches (KV
/// slots reserved), which may still be in flight; `generated` counts output
/// tokens whose micro-batch has completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sequence {
    /// Request id (doubles as the KV sequence id).
    pub id: u64,
    /// Original prompt length in tokens.
    pub base_prompt_len: usize,
    /// Current prefill target: original prompt plus any generated tokens
    /// folded back in by a preemption.
    pub prompt_len: usize,
    /// Output tokens to produce before finishing.
    pub max_output: usize,
    /// Prefill tokens committed to batches since the last (re)start.
    pub prefilled: usize,
    /// KV slots appended by committed decode steps since the last prefill.
    pub decode_kv: usize,
    /// Output tokens produced so far (monotone across preemptions).
    pub generated: usize,
    /// Number of in-flight micro-batches containing this sequence (at
    /// most 1 normally; >1 only for prefill chunks under chunked pipeline
    /// parallelism).
    pub in_flight: u16,
    /// Current phase.
    pub phase: Phase,
    /// Times this sequence was preempted.
    pub preemptions: u32,
}

impl Sequence {
    /// A fresh waiting sequence.
    pub fn new(id: u64, prompt_len: usize, max_output: usize) -> Self {
        assert!(prompt_len >= 1, "empty prompt");
        assert!(max_output >= 1, "must produce at least one token");
        Self {
            id,
            base_prompt_len: prompt_len,
            prompt_len,
            max_output,
            prefilled: 0,
            decode_kv: 0,
            generated: 0,
            in_flight: 0,
            phase: Phase::Waiting,
            preemptions: 0,
        }
    }

    /// Prompt tokens not yet committed to any batch.
    pub fn remaining_prefill(&self) -> usize {
        self.prompt_len - self.prefilled
    }

    /// KV slots committed for this sequence (what the cache holds or will
    /// hold once in-flight batches land).
    pub fn context_len(&self) -> usize {
        self.prefilled + self.decode_kv
    }

    /// Whether the sequence is inside at least one in-flight micro-batch.
    pub fn is_in_flight(&self) -> bool {
        self.in_flight > 0
    }

    /// Whether the sequence can be handed more prefill work right now.
    /// With `cpp` (chunked pipeline parallelism, Mooncake-style), the next
    /// chunk may be scheduled while earlier chunks are still in flight in
    /// later pipeline stages — chunk order through the FIFO stages
    /// guarantees chunk *i*'s KV is written at each stage before chunk
    /// *i+1* arrives there.
    pub fn prefill_schedulable(&self, cpp: bool) -> bool {
        self.phase == Phase::Waiting
            && self.remaining_prefill() > 0
            && (cpp || !self.is_in_flight())
    }

    /// Whether the sequence can be handed a decode step right now (decode
    /// steps never overlap: each reads the previous one's KV).
    pub fn decode_schedulable(&self) -> bool {
        self.phase == Phase::Decoding && !self.is_in_flight()
    }

    /// Whether the request has produced every output token.
    pub fn is_finished(&self) -> bool {
        self.phase == Phase::Finished
    }

    /// Commit a prefill chunk of `tokens` to an in-flight batch.
    pub(crate) fn commit_prefill(&mut self, tokens: usize) {
        debug_assert!(self.prefill_schedulable(true));
        debug_assert!(tokens >= 1 && tokens <= self.remaining_prefill());
        self.prefilled += tokens;
        self.in_flight += 1;
    }

    /// Commit a decode step to an in-flight batch.
    pub(crate) fn commit_decode(&mut self) {
        debug_assert!(self.decode_schedulable());
        self.decode_kv += 1;
        self.in_flight += 1;
    }

    /// The batch containing a prefill chunk of this sequence completed.
    /// `final_chunk` is the committed chunk's `completes_prompt` flag (the
    /// sequence cannot tell on its own under CPP, where a later chunk may
    /// already be committed when an earlier one lands). Returns `true` if
    /// the first output token was emitted.
    pub(crate) fn complete_prefill(&mut self, final_chunk: bool) -> bool {
        debug_assert!(self.is_in_flight(), "completion of a non-in-flight sequence");
        debug_assert_eq!(self.phase, Phase::Waiting);
        self.in_flight -= 1;
        if final_chunk {
            debug_assert_eq!(self.remaining_prefill(), 0);
            debug_assert_eq!(self.in_flight, 0, "final chunk completes last");
            self.generated += 1;
            self.phase = if self.generated >= self.max_output {
                Phase::Finished
            } else {
                Phase::Decoding
            };
            true
        } else {
            false
        }
    }

    /// The batch containing this sequence's decode step completed. Returns
    /// `true` (a token is always emitted).
    pub(crate) fn complete_decode(&mut self) -> bool {
        debug_assert!(self.is_in_flight(), "completion of a non-in-flight sequence");
        debug_assert_eq!(self.phase, Phase::Decoding);
        self.in_flight -= 1;
        self.generated += 1;
        if self.generated >= self.max_output {
            self.phase = Phase::Finished;
        }
        true
    }

    /// Roll back a committed-but-never-completed prefill chunk (the
    /// micro-batch carrying it died with a pipeline stage). The KV slots
    /// it reserved are un-counted and the chunk leaves the in-flight set,
    /// as if it had never been scheduled.
    pub(crate) fn uncommit_prefill(&mut self, tokens: usize) {
        debug_assert!(self.is_in_flight(), "uncommit of a non-in-flight sequence");
        debug_assert!(tokens <= self.prefilled, "uncommit exceeds committed prefill");
        self.prefilled = self.prefilled.saturating_sub(tokens);
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Roll back a committed-but-never-completed decode step (see
    /// [`Sequence::uncommit_prefill`]).
    pub(crate) fn uncommit_decode(&mut self) {
        debug_assert!(self.is_in_flight(), "uncommit of a non-in-flight sequence");
        debug_assert!(self.decode_kv >= 1, "uncommit with no committed decode KV");
        self.decode_kv = self.decode_kv.saturating_sub(1);
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Preempt: all KV is lost; fold generated text into the prompt so the
    /// context is recomputed by prefill, after which decoding resumes.
    pub(crate) fn reset_for_recompute(&mut self) {
        assert!(self.phase != Phase::Finished, "preempting a finished sequence");
        assert!(!self.is_in_flight(), "preempting an in-flight sequence");
        self.prompt_len = self.base_prompt_len + self.generated;
        self.prefilled = 0;
        self.decode_kv = 0;
        self.phase = Phase::Waiting;
        self.preemptions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sequence_is_waiting_and_schedulable() {
        let s = Sequence::new(1, 100, 10);
        assert_eq!(s.phase, Phase::Waiting);
        assert!(s.prefill_schedulable(false));
        assert!(!s.decode_schedulable());
        assert_eq!(s.remaining_prefill(), 100);
        assert_eq!(s.context_len(), 0);
    }

    #[test]
    fn chunked_prefill_lifecycle_emits_first_token_on_final_chunk() {
        let mut s = Sequence::new(1, 100, 3);
        s.commit_prefill(60);
        assert!(s.is_in_flight() && !s.prefill_schedulable(false));
        assert!(!s.complete_prefill(false), "non-final chunk emits nothing");
        assert!(s.prefill_schedulable(false));
        s.commit_prefill(40);
        assert!(s.complete_prefill(true), "final chunk emits the first token");
        assert_eq!(s.phase, Phase::Decoding);
        assert_eq!(s.generated, 1);
        assert_eq!(s.context_len(), 100);
    }

    #[test]
    fn cpp_allows_overlapping_prefill_chunks() {
        let mut s = Sequence::new(1, 100, 3);
        s.commit_prefill(60);
        assert!(!s.prefill_schedulable(false), "classic chunking waits");
        assert!(s.prefill_schedulable(true), "CPP overlaps chunks");
        s.commit_prefill(40);
        assert_eq!(s.in_flight, 2);
        // Chunks complete in pipeline order: first the non-final...
        assert!(!s.complete_prefill(false));
        assert_eq!(s.in_flight, 1);
        // ...then the final one emits the first token.
        assert!(s.complete_prefill(true));
        assert_eq!(s.phase, Phase::Decoding);
        assert_eq!(s.generated, 1);
    }

    #[test]
    fn decode_steps_append_kv_and_finish_at_max_output() {
        let mut s = Sequence::new(1, 10, 3);
        s.commit_prefill(10);
        s.complete_prefill(true);
        s.commit_decode();
        assert_eq!(s.context_len(), 11);
        assert!(s.complete_decode());
        assert_eq!(s.generated, 2);
        s.commit_decode();
        assert!(s.complete_decode());
        assert_eq!(s.phase, Phase::Finished);
        assert!(s.is_finished());
        assert!(!s.decode_schedulable());
    }

    #[test]
    fn single_output_request_finishes_at_prefill() {
        let mut s = Sequence::new(1, 5, 1);
        s.commit_prefill(5);
        assert!(s.complete_prefill(true));
        assert_eq!(s.phase, Phase::Finished);
    }

    #[test]
    fn recompute_folds_generated_tokens_into_prompt() {
        let mut s = Sequence::new(1, 100, 10);
        s.commit_prefill(100);
        s.complete_prefill(true); // token 1
        s.commit_decode();
        s.complete_decode(); // token 2
        s.reset_for_recompute();
        assert_eq!(s.phase, Phase::Waiting);
        assert_eq!(s.prompt_len, 102);
        assert_eq!(s.prefilled, 0);
        assert_eq!(s.context_len(), 0);
        assert_eq!(s.generated, 2, "client-visible tokens survive preemption");
        assert_eq!(s.preemptions, 1);
        // Re-prefill then continue: the final chunk emits token 3.
        s.commit_prefill(102);
        assert!(s.complete_prefill(true));
        assert_eq!(s.generated, 3);
        assert_eq!(s.phase, Phase::Decoding);
    }

    #[test]
    fn double_preemption_does_not_double_fold() {
        let mut s = Sequence::new(1, 50, 10);
        s.commit_prefill(50);
        s.complete_prefill(true); // token 1
        s.reset_for_recompute();
        assert_eq!(s.prompt_len, 51);
        s.reset_for_recompute();
        assert_eq!(s.prompt_len, 51, "prompt derives from base, not cumulative");
        assert_eq!(s.preemptions, 2);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn zero_prompt_rejected() {
        Sequence::new(1, 0, 1);
    }
}
