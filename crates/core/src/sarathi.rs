//! The Sarathi-Serve baseline policy.
//!
//! Sarathi-Serve (OSDI '24) performs stall-free hybrid batching under a
//! *fixed token budget*: it first admits **all** available decode steps,
//! then fills the remaining budget with chunked prefill (§2.2). This is the
//! scheduling policy of vLLM and SGLang in the paper's evaluation (budget
//! 2048), and — run on top of the gLLM runtime — the paper's `gLLM w/ CK`
//! ablation variant.
//!
//! Its two failure modes are exactly what Fig. 1 shows: (1) when no prompts
//! are waiting, batches shrink to the decode population (insufficient
//! prefill tokens); (2) it grabs every decode at once, so in a pipeline the
//! other micro-batches starve (uneven decode distribution). gLLM's Token
//! Throttling addresses both.

use gllm_units::Tokens;

use crate::plan::BatchPlan;
use crate::policy::{
    carve_prefill_chunks_block_aware, prefill_kv_after_decode, take_decodes, SchedulePolicy,
    ScheduleView,
};

/// Sarathi-Serve: decode-first hybrid batching under a fixed token budget.
#[derive(Debug, Clone)]
pub struct SarathiServe {
    /// Fixed total token budget per micro-batch (paper: 2048).
    pub token_budget: Tokens,
}

impl Default for SarathiServe {
    fn default() -> Self {
        Self { token_budget: Tokens(2048) }
    }
}

impl SarathiServe {
    /// A policy with the given fixed token budget.
    pub fn new(token_budget: Tokens) -> Self {
        assert!(token_budget >= Tokens(1));
        Self { token_budget }
    }
}

impl SchedulePolicy for SarathiServe {
    fn plan(&self, view: &ScheduleView) -> BatchPlan {
        // Step 1 (paper Fig. 5 ❶): schedule ALL decode tokens. Decode KV
        // slots mostly land in block slack; genuine exhaustion is handled
        // by admission (preemption), not by the policy.
        let decode_budget = view
            .decodable
            .len()
            .min(self.token_budget.get())
            .min(view.max_seqs_per_batch);
        let decode = take_decodes(&view.decodable, decode_budget);

        // Step 2 (paper Fig. 5 ❷): maximise chunked prefill within the
        // remaining fixed budget, against the KV blocks left once decode
        // steps have claimed theirs.
        let remaining = self.token_budget - Tokens(decode.len());
        let kv_left = prefill_kv_after_decode(view.kv_free_tokens, &decode, view.block_size);
        let seq_budget = view.max_seqs_per_batch.saturating_sub(decode.len());
        let prefill = carve_prefill_chunks_block_aware(
            &view.waiting,
            remaining,
            seq_budget,
            kv_left,
            view.block_size,
        );

        BatchPlan { prefill, decode }
    }

    fn budget_caps(&self, view: &ScheduleView) -> Option<(Tokens, usize)> {
        let decode = view
            .decodable
            .len()
            .min(self.token_budget.get())
            .min(view.max_seqs_per_batch);
        Some((self.token_budget - Tokens(decode), decode))
    }

    fn name(&self) -> &'static str {
        "Sarathi-Serve"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DecodableSeq, WaitingSeq};

    fn view(waiting: &[(u64, usize)], decodable: usize, kv_free_tokens: usize) -> ScheduleView {
        ScheduleView {
            waiting: waiting
                .iter()
                .map(|&(seq, rem)| WaitingSeq {
                    seq,
                    remaining_prefill: Tokens(rem),
                    context_before: Tokens(0),
                })
                .collect(),
            decodable: (0..decodable)
                .map(|i| DecodableSeq { seq: 100 + i as u64, context_before: Tokens(64) })
                .collect(),
            total_decode_seqs: decodable,
            kv_free_rate: 1.0,
            kv_free_tokens: Tokens(kv_free_tokens),
            block_size: Tokens(1),
            in_flight_seqs: 0,
            pipeline_depth: 4,
            max_seqs_per_batch: 1024,
        }
    }

    #[test]
    fn schedules_all_decodes_then_fills_budget_with_prefill() {
        let p = SarathiServe::default();
        let plan = p.plan(&view(&[(1, 5000)], 48, 1_000_000));
        assert_eq!(plan.decode.len(), 48, "all decodes grabbed eagerly");
        assert_eq!(plan.prefill_tokens(), Tokens(2000), "prefill fills 2048 − 48");
        assert_eq!(plan.total_tokens(), Tokens(2048));
    }

    #[test]
    fn no_waiting_prompts_leaves_budget_unused() {
        // The paper's first fluctuation cause: decode-only batches.
        let p = SarathiServe::default();
        let plan = p.plan(&view(&[], 16, 1_000_000));
        assert_eq!(plan.total_tokens(), Tokens(16));
    }

    #[test]
    fn kv_exhaustion_halts_prefill() {
        // The paper's second fluctuation cause: KV-bound batches.
        let p = SarathiServe::default();
        let plan = p.plan(&view(&[(1, 5000)], 10, 10));
        assert_eq!(plan.decode.len(), 10);
        assert_eq!(plan.prefill_tokens(), Tokens(0));
    }

    #[test]
    fn prefill_chunks_span_multiple_requests() {
        let p = SarathiServe::new(Tokens(1024));
        let plan = p.plan(&view(&[(1, 300), (2, 300), (3, 5000)], 0, 1_000_000));
        assert_eq!(plan.prefill.len(), 3);
        assert_eq!(plan.prefill_tokens(), Tokens(1024));
        assert!(plan.prefill[0].completes_prompt);
        assert!(plan.prefill[1].completes_prompt);
        assert!(!plan.prefill[2].completes_prompt);
        assert_eq!(plan.prefill[2].tokens, Tokens(424));
    }

    #[test]
    fn decode_population_can_consume_entire_budget() {
        let p = SarathiServe::new(Tokens(64));
        let plan = p.plan(&view(&[(1, 100)], 64, 1_000_000));
        assert_eq!(plan.decode.len(), 64);
        assert_eq!(plan.prefill_tokens(), Tokens(0));
    }
}
