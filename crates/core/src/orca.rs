//! The Orca baseline: iteration-level scheduling *without* chunking.
//!
//! Orca (OSDI '22) introduced iteration-level scheduling — requests join and
//! leave the batch between forward passes — but prefills whole prompts in a
//! single pass. Long prompts therefore stall ongoing decodes (§2.2), which
//! is what Sarathi-Serve's chunking later fixed. Included as the historical
//! baseline the paper's background builds on.

use crate::plan::{BatchPlan, PrefillChunk};
use crate::policy::{
    blocks_to_append, prefill_kv_after_decode, take_decodes, SchedulePolicy, ScheduleView,
};

/// Orca-style iteration-level scheduling with whole-prompt prefill.
#[derive(Debug, Clone)]
pub struct OrcaPolicy {
    /// Cap on *new* prompts admitted per iteration (Orca admits a few at a
    /// time to bound the stall).
    pub max_new_prompts: usize,
}

impl Default for OrcaPolicy {
    fn default() -> Self {
        Self { max_new_prompts: 4 }
    }
}

impl SchedulePolicy for OrcaPolicy {
    fn plan(&self, view: &ScheduleView) -> BatchPlan {
        let decode = take_decodes(
            &view.decodable,
            view.decodable.len().min(view.max_seqs_per_batch),
        );
        let bs = view.block_size;
        let mut blocks_left =
            prefill_kv_after_decode(view.kv_free_tokens, &decode, bs).full_blocks(bs);
        let mut seq_budget = view
            .max_seqs_per_batch
            .saturating_sub(decode.len())
            .min(self.max_new_prompts);
        let mut prefill = Vec::new();
        for w in &view.waiting {
            if seq_budget == 0 {
                break;
            }
            // Whole prompts only: skip prompts whose blocks do not fit in
            // free KV (after partial-block slack).
            let slack = w.context_before.to_blocks(bs).to_tokens(bs) - w.context_before;
            if w.remaining_prefill > slack + blocks_left.to_tokens(bs) {
                continue;
            }
            prefill.push(PrefillChunk {
                seq: w.seq,
                tokens: w.remaining_prefill,
                context_before: w.context_before,
                completes_prompt: true,
            });
            blocks_left -= blocks_to_append(w.context_before, w.remaining_prefill, bs);
            seq_budget -= 1;
        }
        BatchPlan { prefill, decode }
    }

    fn name(&self) -> &'static str {
        "Orca"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DecodableSeq, WaitingSeq};
    use gllm_units::Tokens;

    fn view(waiting: &[(u64, usize)], decodable: usize, kv_free_tokens: usize) -> ScheduleView {
        ScheduleView {
            waiting: waiting
                .iter()
                .map(|&(seq, rem)| WaitingSeq {
                    seq,
                    remaining_prefill: Tokens(rem),
                    context_before: Tokens(0),
                })
                .collect(),
            decodable: (0..decodable)
                .map(|i| DecodableSeq { seq: 100 + i as u64, context_before: Tokens(64) })
                .collect(),
            total_decode_seqs: decodable,
            kv_free_rate: 1.0,
            kv_free_tokens: Tokens(kv_free_tokens),
            block_size: Tokens(1),
            in_flight_seqs: 0,
            pipeline_depth: 4,
            max_seqs_per_batch: 1024,
        }
    }

    #[test]
    fn prefills_whole_prompts_never_chunks() {
        let p = OrcaPolicy::default();
        let plan = p.plan(&view(&[(1, 7000), (2, 100)], 0, 1_000_000));
        assert_eq!(plan.prefill.len(), 2);
        assert!(plan.prefill.iter().all(|c| c.completes_prompt));
        assert_eq!(plan.prefill_tokens(), Tokens(7100));
    }

    #[test]
    fn admission_cap_limits_new_prompts() {
        let p = OrcaPolicy { max_new_prompts: 2 };
        let plan = p.plan(&view(&[(1, 10), (2, 10), (3, 10)], 0, 1_000_000));
        assert_eq!(plan.prefill.len(), 2);
    }

    #[test]
    fn oversized_prompt_is_skipped_not_truncated() {
        let p = OrcaPolicy::default();
        let plan = p.plan(&view(&[(1, 500), (2, 50)], 0, 100));
        assert_eq!(plan.prefill.len(), 1);
        assert_eq!(plan.prefill[0].seq, 2);
    }

    #[test]
    fn decodes_always_ride_along() {
        let p = OrcaPolicy::default();
        let plan = p.plan(&view(&[(1, 100)], 12, 1_000_000));
        assert_eq!(plan.decode.len(), 12);
        assert_eq!(plan.prefill_tokens(), Tokens(100));
    }
}
