//! The TD-Pipe baseline: temporally-disaggregated pipeline parallelism.
//!
//! TD-Pipe (Zhang et al., 2025 — the paper's §2.4 and related work)
//! attacks the prefill/decode *compute-time* imbalance by separating the
//! two phases **in time**: the pipeline runs pure-prefill batches until
//! enough decode work has accumulated, then switches to pure-decode
//! batches until the decode population drains, and so on. This maximises
//! batch homogeneity (great for offline throughput) at the cost of
//! generation stalls during prefill phases (bad for online TPOT) — which
//! is exactly why the paper positions gLLM for online serving and TD-Pipe
//! for the offline scenario.
//!
//! The phase register is interior-mutable: `SchedulePolicy::plan` is
//! `&self`, and phase hysteresis is genuine state. A `Mutex` keeps the
//! policy `Send + Sync`; contention is nil (one scheduler thread).

use std::sync::Mutex;

use gllm_units::Tokens;

use crate::plan::BatchPlan;
use crate::policy::{carve_prefill_chunks_block_aware, take_decodes, SchedulePolicy, ScheduleView};

/// Which phase the pipeline is temporally dedicated to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TdPhase {
    /// Pure chunked-prefill batches.
    Prefill,
    /// Pure decode batches.
    Decode,
}

/// Temporally-disaggregated scheduling.
#[derive(Debug)]
pub struct TdPipe {
    /// Prefill-phase token budget per micro-batch.
    pub prefill_batch_tokens: Tokens,
    /// Switch to the decode phase once this many sequences are decoding
    /// (batch them while they are plentiful).
    pub decode_high_watermark: usize,
    /// Switch back to prefill once the decodable population falls to this
    /// level (and prompts are waiting).
    pub decode_low_watermark: usize,
    phase: Mutex<TdPhase>,
}

impl Default for TdPipe {
    fn default() -> Self {
        Self {
            prefill_batch_tokens: Tokens(2048),
            decode_high_watermark: 256,
            decode_low_watermark: 64,
            phase: Mutex::new(TdPhase::Prefill),
        }
    }
}

impl TdPipe {
    /// A policy with explicit watermarks.
    pub fn new(prefill_batch_tokens: Tokens, high: usize, low: usize) -> Self {
        assert!(low < high);
        Self {
            prefill_batch_tokens,
            decode_high_watermark: high,
            decode_low_watermark: low,
            phase: Mutex::new(TdPhase::Prefill),
        }
    }
}

impl SchedulePolicy for TdPipe {
    fn plan(&self, view: &ScheduleView) -> BatchPlan {
        let mut phase = self.phase.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Hysteresis between the two dedicated phases.
        *phase = match *phase {
            TdPhase::Prefill
                if view.waiting.is_empty()
                    || view.total_decode_seqs >= self.decode_high_watermark =>
            {
                TdPhase::Decode
            }
            TdPhase::Decode
                if view.total_decode_seqs <= self.decode_low_watermark
                    && !view.waiting.is_empty() =>
            {
                TdPhase::Prefill
            }
            p => p,
        };

        match *phase {
            TdPhase::Prefill => {
                let prefill = carve_prefill_chunks_block_aware(
                    &view.waiting,
                    self.prefill_batch_tokens,
                    view.max_seqs_per_batch,
                    view.kv_free_tokens,
                    view.block_size,
                );
                if prefill.is_empty() {
                    // Nothing to prefill after all: serve decodes rather
                    // than idle (mirrors TD-Pipe's drain behaviour).
                    return BatchPlan {
                        prefill: Vec::new(),
                        decode: take_decodes(&view.decodable, view.max_seqs_per_batch),
                    };
                }
                BatchPlan { prefill, decode: Vec::new() }
            }
            TdPhase::Decode => {
                // Pipeline-aware decode: spread the population over the
                // depth so every stage stays busy during the decode phase
                // (TD-Pipe interleaves in-flight decode batches).
                let budget = view
                    .total_decode_seqs
                    .div_ceil(view.pipeline_depth.max(1))
                    .min(view.max_seqs_per_batch);
                let decode = take_decodes(&view.decodable, budget);
                if decode.is_empty() && !view.waiting.is_empty() && view.in_flight_seqs == 0 {
                    // Decode drained entirely while we held the phase:
                    // fall through to prefill immediately.
                    *phase = TdPhase::Prefill;
                    let prefill = carve_prefill_chunks_block_aware(
                        &view.waiting,
                        self.prefill_batch_tokens,
                        view.max_seqs_per_batch,
                        view.kv_free_tokens,
                        view.block_size,
                    );
                    return BatchPlan { prefill, decode: Vec::new() };
                }
                BatchPlan { prefill: Vec::new(), decode }
            }
        }
    }

    fn name(&self) -> &'static str {
        "TD-Pipe"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DecodableSeq, WaitingSeq};

    fn view(waiting: usize, decodable: usize, total_decode: usize) -> ScheduleView {
        ScheduleView {
            waiting: (0..waiting)
                .map(|i| WaitingSeq {
                    seq: i as u64,
                    remaining_prefill: Tokens(500),
                    context_before: Tokens(0),
                })
                .collect(),
            decodable: (0..decodable)
                .map(|i| DecodableSeq { seq: 1000 + i as u64, context_before: Tokens(128) })
                .collect(),
            total_decode_seqs: total_decode,
            kv_free_rate: 1.0,
            kv_free_tokens: Tokens(usize::MAX >> 1),
            block_size: Tokens(1),
            in_flight_seqs: 0,
            pipeline_depth: 4,
            max_seqs_per_batch: 1024,
        }
    }

    #[test]
    fn prefill_phase_produces_pure_prefill_batches() {
        let p = TdPipe::default();
        let plan = p.plan(&view(8, 10, 10));
        assert!(plan.decode.is_empty(), "prefill phase admits no decodes");
        assert_eq!(plan.prefill_tokens(), Tokens(2048));
    }

    #[test]
    fn high_watermark_switches_to_pure_decode() {
        let p = TdPipe::new(Tokens(2048), 16, 2);
        // Decode population reaches the high watermark → decode phase,
        // spread over the pipeline depth (20 / depth 4 = 5).
        let plan = p.plan(&view(8, 20, 20));
        assert!(plan.prefill.is_empty(), "decode phase admits no prefill");
        assert_eq!(plan.decode.len(), 5);
        // Stays in decode above the low watermark.
        let plan = p.plan(&view(8, 10, 10));
        assert!(plan.prefill.is_empty());
    }

    #[test]
    fn low_watermark_switches_back_to_prefill() {
        let p = TdPipe::new(Tokens(2048), 16, 2);
        p.plan(&view(8, 20, 20)); // → decode
        let plan = p.plan(&view(8, 2, 2)); // ≤ low, prompts waiting → prefill
        assert!(plan.decode.is_empty());
        assert!(plan.prefill_tokens() > Tokens(0));
    }

    #[test]
    fn empty_waiting_queue_forces_decode_phase() {
        let p = TdPipe::default();
        let plan = p.plan(&view(0, 6, 6));
        // Depth-4 spread of 6 decodes → ceil(6/4) = 2 per batch.
        assert_eq!(plan.decode.len(), 2);
    }

    #[test]
    fn decode_phase_with_nothing_decodable_falls_through_to_prefill() {
        let p = TdPipe::new(Tokens(2048), 4, 1);
        p.plan(&view(8, 6, 6)); // → decode
        let plan = p.plan(&view(8, 0, 0));
        assert!(plan.prefill_tokens() > Tokens(0), "must not deadlock idle");
    }
}
