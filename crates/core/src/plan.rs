//! The output of a scheduling decision: one micro-batch's composition.

use gllm_units::Tokens;
use serde::{Deserialize, Serialize};

/// A chunk of one sequence's prefill assigned to a micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefillChunk {
    /// Sequence receiving the chunk.
    pub seq: u64,
    /// Prompt tokens in this chunk (≥ 1).
    pub tokens: Tokens,
    /// KV context already committed before this chunk.
    pub context_before: Tokens,
    /// Whether this chunk reaches the end of the prompt (and will therefore
    /// emit the first output token when its batch completes).
    pub completes_prompt: bool,
}

/// One sequence's decode step assigned to a micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeSlot {
    /// Sequence taking the step.
    pub seq: u64,
    /// KV context committed before this step.
    pub context_before: Tokens,
}

/// The micro-batch a policy proposes for the next forward pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// Prefill chunks, in schedule order.
    pub prefill: Vec<PrefillChunk>,
    /// Decode steps, in schedule order.
    pub decode: Vec<DecodeSlot>,
}

impl BatchPlan {
    /// A plan with no work.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.prefill.is_empty() && self.decode.is_empty()
    }

    /// Prefill tokens scheduled.
    pub fn prefill_tokens(&self) -> Tokens {
        self.prefill.iter().map(|c| c.tokens).sum()
    }

    /// Decode tokens scheduled (= decode sequences).
    pub fn decode_tokens(&self) -> Tokens {
        Tokens(self.decode.len())
    }

    /// Total new tokens in the batch.
    pub fn total_tokens(&self) -> Tokens {
        self.prefill_tokens() + self.decode_tokens()
    }

    /// New KV slots this plan will occupy when committed (every new token
    /// writes one KV entry).
    pub fn kv_slots_needed(&self) -> Tokens {
        self.total_tokens()
    }

    /// Number of distinct sequences in the batch.
    pub fn num_seqs(&self) -> usize {
        self.prefill.len() + self.decode.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_add_up() {
        let plan = BatchPlan {
            prefill: vec![
                PrefillChunk {
                    seq: 1,
                    tokens: Tokens(512),
                    context_before: Tokens(0),
                    completes_prompt: false,
                },
                PrefillChunk {
                    seq: 2,
                    tokens: Tokens(100),
                    context_before: Tokens(50),
                    completes_prompt: true,
                },
            ],
            decode: vec![
                DecodeSlot { seq: 3, context_before: Tokens(200) },
                DecodeSlot { seq: 4, context_before: Tokens(30) },
            ],
        };
        assert_eq!(plan.prefill_tokens(), Tokens(612));
        assert_eq!(plan.decode_tokens(), Tokens(2));
        assert_eq!(plan.total_tokens(), Tokens(614));
        assert_eq!(plan.kv_slots_needed(), Tokens(614));
        assert_eq!(plan.num_seqs(), 4);
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_plan() {
        let p = BatchPlan::empty();
        assert!(p.is_empty());
        assert_eq!(p.total_tokens(), Tokens(0));
    }
}
