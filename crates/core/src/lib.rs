//! The gLLM scheduler — the paper's primary contribution — and every
//! baseline scheduling policy it is evaluated against.
//!
//! Scheduling in gLLM is *iteration-level* (Orca-style): before every model
//! forward pass the scheduler composes a fresh micro-batch from the global
//! request pool. This crate keeps policies **pure**: a policy is a function
//! from an immutable [`policy::ScheduleView`] snapshot (waiting queue,
//! decodable sequences, KV free rate, pipeline depth) to a
//! [`plan::BatchPlan`] (which prefill chunks and decode steps to fuse into
//! the next micro-batch). The discrete-event simulator and the threaded
//! runtime both drive the *same* policy objects, so the scheduler being
//! benchmarked is the scheduler being functionally verified.
//!
//! Policies provided:
//!
//! * [`throttle::TokenThrottle`] — gLLM's Token Throttling (§3.1–§3.2):
//!   decoupled prefill/decode regulation via WT (Eq. 1), UT (Eq. 2), the
//!   KV idle threshold and the combined rule (Eq. 3), plus even decode
//!   distribution across micro-batches (Eq. 4). Ablation switches produce
//!   the paper's `w/o WT` and `w/o UT` variants.
//! * [`sarathi::SarathiServe`] — the Sarathi-Serve baseline: all decodes
//!   first, then chunked prefill up to a fixed token budget (vLLM's and
//!   SGLang's scheduling policy, and gLLM's `w/ CK` variant).
//! * [`orca::OrcaPolicy`] — iteration-level scheduling without chunking
//!   (whole prompts), showing the generation stalls chunking removes.
//! * [`batch_level::BatchLevelPolicy`] — FasterTransformer-style run-to-
//!   completion batching, the pre-Orca strawman.
//! * [`td_pipe::TdPipe`] — TD-Pipe's temporal prefill/decode
//!   disaggregation (§2.4), the offline-throughput-oriented alternative.
//!
//! [`pool::RequestPool`] is the shared sequence state machine: it tracks
//! every request from `Waiting` through chunked prefill and decode to
//! `Finished`, enforces the "a sequence is in at most one in-flight
//! micro-batch" invariant that pipeline parallelism requires, and applies
//! committed plans and their completions.

pub mod admission;
pub mod batch_level;
pub mod orca;
pub mod plan;
pub mod policy;
pub mod pool;
pub mod sarathi;
pub mod sequence;
pub mod td_pipe;
pub mod throttle;

pub use admission::{admit, Admission};
pub use plan::{BatchPlan, DecodeSlot, PrefillChunk};
pub use policy::{
    blocks_to_append, carve_prefill_chunks_block_aware, prefill_kv_after_decode, DecodableSeq,
    SchedulePolicy, ScheduleView, WaitingSeq,
};
pub use pool::{BatchOutcome, EmittedToken, RequestPool};
pub use sequence::{Phase, Sequence};
pub use throttle::{ThrottleConfig, TokenThrottle};

// Re-exported so policy implementors and engines can name the unit
// newtypes without a separate `gllm-units` dependency edge.
pub use gllm_units::{Blocks, Bytes, Tokens};
