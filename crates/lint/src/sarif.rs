//! SARIF 2.1.0 output, hand-rolled (zero dependencies).
//!
//! The emitted log has one run with the `gllm-lint` tool driver, one
//! reporting descriptor per check family, and one result per violation.
//! Output is deterministic: violations are emitted in the order given
//! (already sorted by path/line/check upstream) and rules in
//! [`Check::ALL`] order, so regenerated files are byte-identical for the
//! same findings.

use crate::{Check, Violation};

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render violations as a SARIF 2.1.0 log.
pub fn to_sarif(violations: &[Violation]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"gllm-lint\",\n");
    s.push_str("          \"informationUri\": \"https://github.com/gllm/gllm\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, c) in Check::ALL.iter().enumerate() {
        s.push_str("            {\n");
        s.push_str(&format!("              \"id\": \"{}\",\n", esc(c.name())));
        s.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": \"{}\" }}\n",
            esc(c.describe())
        ));
        s.push_str("            }");
        if i + 1 < Check::ALL.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, v) in violations.iter().enumerate() {
        let uri = v.path.to_string_lossy().replace('\\', "/");
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(v.check.name())));
        s.push_str("          \"level\": \"error\",\n");
        s.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            esc(&v.message)
        ));
        s.push_str("          \"locations\": [\n            {\n");
        s.push_str("              \"physicalLocation\": {\n");
        s.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
            esc(&uri)
        ));
        // SARIF requires startLine >= 1; whole-file findings use line 1.
        s.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            v.line.max(1)
        ));
        s.push_str("              }\n            }\n          ]\n        }");
        if i + 1 < violations.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn sarif_contains_schema_rules_and_results() {
        let v = vec![Violation {
            check: Check::LockOrder,
            path: PathBuf::from("crates/runtime/src/driver.rs"),
            line: 42,
            message: "cycle between {a, b} with \"quotes\"".to_string(),
        }];
        let s = to_sarif(&v);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"gllm-lint\""));
        assert!(s.contains("\"ruleId\": \"lock-order\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\\\"quotes\\\""), "strings must be JSON-escaped: {s}");
        // One rule descriptor per family.
        for c in Check::ALL {
            assert!(s.contains(&format!("\"id\": \"{}\"", c.name())));
        }
    }

    #[test]
    fn empty_run_is_valid_and_whole_file_findings_clamp_to_line_1() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
        let v = vec![Violation {
            check: Check::VendorHygiene,
            path: PathBuf::from("Cargo.toml"),
            line: 0,
            message: "whole-file".to_string(),
        }];
        assert!(to_sarif(&v).contains("\"startLine\": 1"));
    }
}
