//! A zero-dependency Rust token-stream lexer.
//!
//! This replaces PR 2's per-line string-blanking heuristic with a real
//! single-pass lexer that understands the lexical grammar the checks care
//! about: nested block comments, escaped and raw strings (any hash depth),
//! byte/C strings, char literals vs. lifetimes, tuple-index `x.0` vs. float
//! `1.0`, and raw identifiers. It produces three synchronized views of a
//! source file:
//!
//! * a flat token stream ([`Tok`]) with per-token line numbers — the input
//!   to the dataflow analyses in [`crate::dataflow`];
//! * the comment stream ([`Comment`]) — the input to `lint:allow(...)`
//!   collection (doc comments are tagged so allow examples in docs are
//!   never treated as live suppressions);
//! * per-line stripped code ([`LineStrip`]) — literal contents blanked,
//!   comments removed — which the line-oriented check families consume.

/// Token kinds the checks distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident,
    /// A lifetime such as `'a` (text keeps the leading quote).
    Lifetime,
    /// Integer literal (including tuple-field indices after `.`).
    Int,
    /// Float literal.
    Float,
    /// String / raw string / byte string / C string literal (text is `""`).
    Str,
    /// Char or byte-char literal (text is `' '`).
    Char,
    /// Single punctuation character.
    Punct,
    /// Opening delimiter: `(`, `[` or `{`.
    Open,
    /// Closing delimiter: `)`, `]` or `}`.
    Close,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (literals are blanked to `""` / `' '`).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// `true` when this is an identifier with exactly `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` when this is punctuation `c` (including delimiters).
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.kind, TokKind::Punct | TokKind::Open | TokKind::Close)
            && self.text.len() == 1
            && self.text.starts_with(c)
    }
}

/// One comment (line or block). Block comments spanning lines produce one
/// entry per line so `lint:allow` targeting stays line-accurate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text for this line (delimiters included for `//` comments).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// `true` for doc comments (`///`, `//!`, `/**`, `/*!`): allow
    /// annotations inside them are documentation, not suppressions.
    pub doc: bool,
}

/// One physical source line after stripping: literal contents blanked,
/// comments removed. The line-oriented checks run on `code`; `comment`
/// concatenates every comment chunk on the line.
#[derive(Debug, Clone, Default)]
pub struct LineStrip {
    /// The stripped code text.
    pub code: String,
    /// Concatenated comment text on this line.
    pub comment: String,
}

/// The full lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The flat token stream.
    pub toks: Vec<Tok>,
    /// Every comment, in order.
    pub comments: Vec<Comment>,
    /// Per-line stripped code (index 0 = line 1).
    pub lines: Vec<LineStrip>,
}

impl Lexed {
    /// Concatenated comment text for a 1-based line (empty when none).
    pub fn comment_on(&self, line: usize) -> String {
        self.lines.get(line.wrapping_sub(1)).map(|l| l.comment.clone()).unwrap_or_default()
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: usize,
    out: Lexed,
}

/// Lex one Rust source file. Never fails: unterminated literals simply run
/// to end of input (the checks stay conservative on malformed code).
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer { src: src.as_bytes(), i: 0, line: 1, out: Lexed::default() };
    lx.out.lines.push(LineStrip::default());
    lx.run();
    lx.out
}

impl Lexer<'_> {
    fn peek(&self, off: usize) -> u8 {
        self.src.get(self.i + off).copied().unwrap_or(0)
    }

    fn cur_line(&mut self) -> &mut LineStrip {
        let idx = self.line - 1;
        while self.out.lines.len() <= idx {
            self.out.lines.push(LineStrip::default());
        }
        &mut self.out.lines[idx]
    }

    /// Consume one byte, maintaining the line counter. Does not echo.
    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.cur_line();
        }
        b
    }

    /// Consume one byte and echo it into the stripped line.
    fn bump_echo(&mut self) {
        let b = self.bump();
        if b != b'\n' {
            self.cur_line().code.push(b as char);
        }
    }

    fn push_tok(&mut self, kind: TokKind, text: &str, line: usize) {
        self.out.toks.push(Tok { kind, text: text.to_string(), line });
    }

    fn run(&mut self) {
        while self.i < self.src.len() {
            let b = self.peek(0);
            let b1 = self.peek(1);
            match b {
                b'/' if b1 == b'/' => self.line_comment(),
                b'/' if b1 == b'*' => self.block_comment(),
                b'"' => self.string(TokKind::Str),
                b'b' | b'c' if b1 == b'"' => {
                    self.bump_echo();
                    self.string(TokKind::Str);
                }
                b'b' if b1 == b'\'' => {
                    self.bump_echo();
                    self.char_or_lifetime(true);
                }
                b'b' | b'c' if b1 == b'r' && matches!(self.peek(2), b'"' | b'#') => {
                    self.bump_echo();
                    self.maybe_raw_string();
                }
                b'r' if matches!(b1, b'"' | b'#') => self.maybe_raw_string(),
                b'\'' => self.char_or_lifetime(false),
                _ if b.is_ascii_digit() => self.number(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ if b.is_ascii_whitespace() => {
                    let keep = b != b'\n';
                    self.bump();
                    if keep {
                        self.cur_line().code.push(b as char);
                    }
                }
                _ => {
                    let line = self.line;
                    self.bump_echo();
                    let kind = match b {
                        b'(' | b'[' | b'{' => TokKind::Open,
                        b')' | b']' | b'}' => TokKind::Close,
                        _ => TokKind::Punct,
                    };
                    let mut s = String::new();
                    s.push(b as char);
                    self.push_tok(kind, &s, line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.i < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.out.comments.push(Comment { text: text.clone(), line, doc });
        let idx = line - 1;
        self.cur_line();
        self.out.lines[idx].comment.push_str(&text);
    }

    fn block_comment(&mut self) {
        let open_line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), b'*' | b'!') && self.peek(1) != b'*';
        let mut depth = 1usize;
        let mut chunk = String::new();
        let mut chunk_line = self.line;
        while self.i < self.src.len() && depth > 0 {
            let b = self.peek(0);
            let b1 = self.peek(1);
            if b == b'*' && b1 == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else if b == b'/' && b1 == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'\n' {
                self.flush_comment_chunk(&mut chunk, chunk_line, doc);
                self.bump();
                chunk_line = self.line;
            } else {
                chunk.push(b as char);
                self.bump();
            }
        }
        self.flush_comment_chunk(&mut chunk, chunk_line, doc);
        let _ = open_line;
    }

    fn flush_comment_chunk(&mut self, chunk: &mut String, line: usize, doc: bool) {
        if chunk.is_empty() {
            return;
        }
        let text = std::mem::take(chunk);
        self.out.comments.push(Comment { text: text.clone(), line, doc });
        let idx = line - 1;
        self.cur_line();
        if let Some(l) = self.out.lines.get_mut(idx) {
            l.comment.push_str(&text);
        }
    }

    /// A `"..."` string (escapes honoured). Emits `""` into the stripped
    /// line and one `Str` token.
    fn string(&mut self, kind: TokKind) {
        let line = self.line;
        self.cur_line().code.push('"');
        self.bump(); // opening quote, not echoed raw
        while self.i < self.src.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.cur_line().code.push('"');
        self.push_tok(kind, "\"\"", line);
    }

    /// `r"..."`, `r#"..."#`, … — or just an identifier starting with `r`
    /// (e.g. `r#ident`). Call with `self.i` at the `r`.
    fn maybe_raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        let mut j = self.i + 1;
        while self.src.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.src.get(j) != Some(&b'"') {
            // `r#ident` (raw identifier) or a plain ident starting with r.
            self.ident();
            return;
        }
        self.cur_line().code.push('"');
        self.i = j + 1; // past opening quote
        while self.i < self.src.len() {
            if self.peek(0) == b'"' {
                let mut all = true;
                for k in 0..hashes {
                    if self.src.get(self.i + 1 + k) != Some(&b'#') {
                        all = false;
                        break;
                    }
                }
                if all {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        self.cur_line().code.push('"');
        self.push_tok(TokKind::Str, "\"\"", line);
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A literal closes
    /// with a quote; a lifetime is `'` + identifier with no closing quote.
    fn char_or_lifetime(&mut self, byte_prefix: bool) {
        let line = self.line;
        let b1 = self.peek(1);
        let is_char = if b1 == b'\\' {
            true
        } else if b1 == b'_' || b1.is_ascii_alphanumeric() {
            // `'a'` is a char, `'a` / `'static` are lifetimes.
            let mut j = self.i + 2;
            while matches!(self.src.get(j), Some(&c) if c == b'_' || c.is_ascii_alphanumeric()) {
                j += 1;
            }
            self.src.get(j) == Some(&b'\'') && j == self.i + 2
        } else {
            // Non-identifier content (`'+'`, `' '`) must be a char literal.
            true
        };
        if is_char || byte_prefix {
            self.bump(); // opening quote
            if self.peek(0) == b'\\' {
                self.bump();
                self.bump();
            } else if self.peek(0) != b'\'' {
                self.bump();
            }
            while self.i < self.src.len() && self.peek(0) != b'\'' && self.peek(0) != b'\n' {
                self.bump();
            }
            self.bump(); // closing quote
            self.cur_line().code.push_str("' '");
            self.push_tok(TokKind::Char, "' '", line);
        } else {
            // Lifetime: echo the quote and the identifier.
            let start = self.i;
            self.bump_echo();
            while matches!(self.peek(0), c if c == b'_' || c.is_ascii_alphanumeric()) {
                self.bump_echo();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
            self.push_tok(TokKind::Lifetime, &text, line);
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let after_dot =
            matches!(self.out.toks.last(), Some(t) if t.kind == TokKind::Punct && t.text == ".");
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump_echo();
        }
        let mut float = false;
        // `1.0` is a float; `x.0` keeps `0` as a tuple index; `0..n` is a
        // range, not a float.
        if !after_dot && self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            float = true;
            self.bump_echo(); // the dot
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump_echo();
            }
        } else if !after_dot && self.peek(0) == b'.' && !self.peek(1).is_ascii_digit() && self.peek(1) != b'.'
            && !self.peek(1).is_ascii_alphabetic() && self.peek(1) != b'_'
        {
            // Trailing-dot float like `1.`
            float = true;
            self.bump_echo();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push_tok(kind, &text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut start = self.i;
        // Raw identifier `r#name`: skip the prefix in the token text.
        if self.peek(0) == b'r' && self.peek(1) == b'#' {
            self.bump_echo();
            self.bump_echo();
            start = self.i;
        }
        while matches!(self.peek(0), c if c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump_echo();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.push_tok(TokKind::Ident, &text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_at_any_hash_depth_are_blanked() {
        let lx = lex(r##"let s = r#"contains .unwrap() and "quotes""#; done();"##);
        assert!(lx.lines[0].code.contains("let s = \"\"; done();"), "{:?}", lx.lines[0].code);
        assert!(lx.toks.iter().any(|t| t.kind == TokKind::Str));
        assert!(!lx.lines[0].code.contains("unwrap"));
        // Hashless raw string too.
        let lx = lex("let s = r\"no .expect( here\";");
        assert!(!lx.lines[0].code.contains("expect"));
        // Byte string.
        let lx = lex("let s = b\"HashMap\";");
        assert!(!lx.lines[0].code.contains("HashMap"));
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "type".to_string())), "{toks:?}");
    }

    #[test]
    fn nested_block_comments_fully_strip() {
        let src = "a(); /* outer /* inner .unwrap() */ still comment */ b();";
        let lx = lex(src);
        assert_eq!(lx.lines[0].code.trim_end(), "a();  b();");
        assert!(lx.lines[0].comment.contains("inner"));
        // Multi-line nesting keeps line numbers straight.
        let lx = lex("x();\n/* one\n /* two */\n three */\ny();");
        assert_eq!(lx.lines[4].code, "y();");
        let y = lx.toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 5);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let w = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).cloned().collect();
        assert_eq!(
            lifetimes,
            vec![(TokKind::Lifetime, "'a".to_string()), (TokKind::Lifetime, "'a".to_string())]
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
        // `'static` is a lifetime even though it is long.
        let toks = kinds("fn f(x: &'static str) {}");
        assert!(toks.contains(&(TokKind::Lifetime, "'static".to_string())));
    }

    #[test]
    fn tuple_index_is_int_but_float_is_float() {
        let toks = kinds("let a = x.0; let b = 1.0; let c = 0..10; let d = t.0.1;");
        // x.0 → Punct('.') Int("0")
        assert!(toks.contains(&(TokKind::Int, "0".to_string())));
        assert!(toks.contains(&(TokKind::Float, "1.0".to_string())));
        // Ranges stay two ints.
        assert!(toks.contains(&(TokKind::Int, "10".to_string())));
        // Nested tuple index: both indices are ints.
        assert!(toks.iter().filter(|(k, t)| *k == TokKind::Int && (t == "0" || t == "1")).count() >= 3);
    }

    #[test]
    fn multiline_strings_blank_every_line() {
        let lx = lex("let s = \"line one .unwrap()\nline two HashMap\";\nf();");
        assert!(!lx.lines[0].code.contains("unwrap"));
        assert!(!lx.lines[1].code.contains("HashMap"));
        assert_eq!(lx.lines[2].code, "f();");
    }

    #[test]
    fn doc_comments_are_tagged() {
        let lx = lex("/// doc lint:allow(x): y\n//! inner doc\n// normal\nfn f() {}\n");
        assert!(lx.comments[0].doc);
        assert!(lx.comments[1].doc);
        assert!(!lx.comments[2].doc);
    }

    #[test]
    fn line_numbers_track_tokens() {
        let lx = lex("a\n\nb // c\nd\n");
        let find = |n: &str| lx.toks.iter().find(|t| t.is_ident(n)).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(3));
        assert_eq!(find("d"), Some(4));
    }

    #[test]
    fn char_literal_of_punctuation_is_blanked() {
        let lx = lex("let c = '{'; let d = '}';");
        // Blanked chars must not unbalance brace tracking.
        assert!(!lx.lines[0].code.contains('{'));
        assert!(!lx.lines[0].code.contains('}'));
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }
}
