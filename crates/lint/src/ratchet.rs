//! The CI ratchet: per-family violation counts may only go *down*.
//!
//! `ci/lint-baseline.json` records the accepted count for every check
//! family. The lint stage fails when any family's current count exceeds
//! its baseline, and prints a reminder to tighten the baseline when a
//! family has dropped (so the floor keeps ratcheting toward zero). The
//! JSON is written and parsed by hand — same zero-dependency rule as the
//! rest of the crate.

use std::collections::BTreeMap;

use crate::{Check, Violation};

/// Count violations per family. Every family appears (zero included) so
/// the baseline file is self-documenting and diffs cleanly.
pub fn family_counts(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for c in Check::ALL {
        counts.insert(c.name(), 0);
    }
    for v in violations {
        if let Some(slot) = counts.get_mut(v.check.name()) {
            *slot += 1;
        }
    }
    counts
}

/// Render counts as the baseline JSON document (keys in [`Check::ALL`]
/// order, one per line — deterministic byte-for-byte).
pub fn baseline_json(counts: &BTreeMap<&'static str, usize>) -> String {
    let mut s = String::from("{\n");
    let total = Check::ALL.len();
    for (i, c) in Check::ALL.iter().enumerate() {
        let n = counts.get(c.name()).copied().unwrap_or(0);
        s.push_str(&format!("  \"{}\": {}", c.name(), n));
        if i + 1 < total {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("}\n");
    s
}

/// Parse a baseline document. Tolerant scanner: extracts every
/// `"name": <integer>` pair; returns `None` when nothing parses (corrupt
/// file) so callers can fail loudly rather than treat it as all-zero.
pub fn parse_baseline(text: &str) -> Option<BTreeMap<String, usize>> {
    let mut out = BTreeMap::new();
    let mut rest = text;
    while let Some(q0) = rest.find('"') {
        let after_key = &rest[q0 + 1..];
        let Some(q1) = after_key.find('"') else { break };
        let key = &after_key[..q1];
        let tail = &after_key[q1 + 1..];
        let tail = tail.trim_start();
        if let Some(num_part) = tail.strip_prefix(':') {
            let num_part = num_part.trim_start();
            let digits: String = num_part.chars().take_while(|c| c.is_ascii_digit()).collect();
            if !digits.is_empty() {
                if let Ok(n) = digits.parse::<usize>() {
                    out.insert(key.to_string(), n);
                }
            }
        }
        rest = tail;
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Ratchet verdict for one family.
#[derive(Debug, PartialEq, Eq)]
pub enum Drift {
    /// Count exceeds the baseline: the gate must fail.
    Regressed { family: &'static str, current: usize, baseline: usize },
    /// Count fell below the baseline: the baseline should be re-written.
    Improvable { family: &'static str, current: usize, baseline: usize },
}

/// Compare current counts against the baseline. Families missing from the
/// baseline are treated as baseline 0 (new families start fully enforced).
pub fn drift(
    current: &BTreeMap<&'static str, usize>,
    baseline: &BTreeMap<String, usize>,
) -> Vec<Drift> {
    let mut out = Vec::new();
    for c in Check::ALL {
        let cur = current.get(c.name()).copied().unwrap_or(0);
        let base = baseline.get(c.name()).copied().unwrap_or(0);
        if cur > base {
            out.push(Drift::Regressed { family: c.name(), current: cur, baseline: base });
        } else if cur < base {
            out.push(Drift::Improvable { family: c.name(), current: cur, baseline: base });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn v(check: Check) -> Violation {
        Violation { check, path: PathBuf::from("x.rs"), line: 1, message: "m".to_string() }
    }

    #[test]
    fn counts_roundtrip_through_json() {
        let vs = vec![v(Check::PanicFreedom), v(Check::PanicFreedom), v(Check::LockOrder)];
        let counts = family_counts(&vs);
        let json = baseline_json(&counts);
        let parsed = parse_baseline(&json).expect("parses");
        assert_eq!(parsed.get("panic-freedom"), Some(&2));
        assert_eq!(parsed.get("lock-order"), Some(&1));
        assert_eq!(parsed.get("unit-confusion"), Some(&0));
        assert_eq!(parsed.len(), Check::ALL.len());
    }

    #[test]
    fn ratchet_flags_increases_and_hints_decreases() {
        let current = family_counts(&[v(Check::LockOrder)]);
        let mut baseline = BTreeMap::new();
        baseline.insert("lock-order".to_string(), 0usize);
        baseline.insert("panic-freedom".to_string(), 3usize);
        let d = drift(&current, &baseline);
        assert!(d.contains(&Drift::Regressed { family: "lock-order", current: 1, baseline: 0 }));
        assert!(
            d.contains(&Drift::Improvable { family: "panic-freedom", current: 0, baseline: 3 })
        );
    }

    #[test]
    fn missing_families_default_to_zero_baseline() {
        let current = family_counts(&[v(Check::StaleSuppression)]);
        let baseline = BTreeMap::new();
        // An empty map would fail parse, but drift() itself treats missing
        // entries as 0 — new families are enforced from day one.
        let d = drift(&current, &baseline);
        assert_eq!(d.len(), 1);
        assert!(matches!(d.first(), Some(Drift::Regressed { family: "stale-suppression", .. })));
    }

    #[test]
    fn corrupt_baseline_is_rejected() {
        assert!(parse_baseline("not json at all").is_none());
        assert!(parse_baseline("").is_none());
    }
}
