//! `gllm-lint` CLI: run the workspace static-analysis pass.
//!
//! ```text
//! gllm-lint [--root PATH] [--deny [FAMILIES]] [--format text|sarif]
//!           [--output PATH] [--baseline PATH] [--write-baseline PATH]
//!           [--paths PREFIX]... [--list-checks]
//! ```
//!
//! * `--root PATH`           workspace root (default: current directory)
//! * `--deny [FAMILIES]`     exit nonzero on findings; FAMILIES is `all`
//!   (also the default when omitted) or a comma-separated check list
//! * `--format text|sarif`   report format (default text)
//! * `--output PATH`         write the report to PATH (stdout still gets
//!   the text summary)
//! * `--baseline PATH`       verify the ratchet: per-family counts must
//!   not exceed the baseline
//! * `--write-baseline PATH` write current per-family counts as the new
//!   baseline
//! * `--paths PREFIX`        only report findings under PREFIX (repeatable)
//! * `--list-checks`         print the check families and exit

use std::path::PathBuf;
use std::process::ExitCode;

use gllm_lint::ratchet::{self, Drift};
use gllm_lint::{lint_workspace, sarif, Check, Violation};

struct Args {
    root: PathBuf,
    deny: Option<Vec<Check>>,
    format: Format,
    output: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    paths: Vec<String>,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Format {
    Text,
    Sarif,
}

fn parse_deny_list(spec: &str) -> Result<Vec<Check>, String> {
    if spec == "all" {
        return Ok(Check::ALL.to_vec());
    }
    let mut out = Vec::new();
    for name in spec.split(',') {
        match Check::from_name(name.trim()) {
            Some(c) => out.push(c),
            None => return Err(format!("unknown check `{name}` in --deny list")),
        }
    }
    Ok(out)
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: None,
        format: Format::Text,
        output: None,
        baseline: None,
        write_baseline: None,
        paths: Vec::new(),
    };
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--list-checks" => {
                for c in Check::ALL {
                    println!("{:<18} {}", c.name(), c.describe());
                }
                return Ok(None);
            }
            "--deny" => {
                // Optional value: bare `--deny` means deny everything.
                let list = match argv.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let spec = argv.next().unwrap_or_default();
                        parse_deny_list(&spec)?
                    }
                    _ => Check::ALL.to_vec(),
                };
                args.deny = Some(list);
            }
            "--format" => match argv.next().as_deref() {
                Some("text") => args.format = Format::Text,
                Some("sarif") => args.format = Format::Sarif,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires text|sarif".to_string()),
            },
            "--root" => match argv.next() {
                Some(p) => args.root = PathBuf::from(p),
                None => return Err("--root requires a path".to_string()),
            },
            "--output" => match argv.next() {
                Some(p) => args.output = Some(PathBuf::from(p)),
                None => return Err("--output requires a path".to_string()),
            },
            "--baseline" => match argv.next() {
                Some(p) => args.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline requires a path".to_string()),
            },
            "--write-baseline" => match argv.next() {
                Some(p) => args.write_baseline = Some(PathBuf::from(p)),
                None => return Err("--write-baseline requires a path".to_string()),
            },
            "--paths" => match argv.next() {
                Some(p) => args.paths.push(p.replace('\\', "/")),
                None => return Err("--paths requires a path prefix".to_string()),
            },
            "--help" | "-h" => {
                println!(
                    "gllm-lint [--root PATH] [--deny [all|c1,c2]] [--format text|sarif] \
                     [--output PATH] [--baseline PATH] [--write-baseline PATH] \
                     [--paths PREFIX]... [--list-checks]"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Some(args))
}

fn render(format: Format, violations: &[Violation]) -> String {
    match format {
        Format::Sarif => sarif::to_sarif(violations),
        Format::Text => {
            let mut s = String::new();
            for v in violations {
                s.push_str(&format!("{v}\n"));
            }
            s
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gllm-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut violations = lint_workspace(&args.root);
    if !args.paths.is_empty() {
        violations.retain(|v| {
            let p = v.path.to_string_lossy().replace('\\', "/");
            args.paths.iter().any(|prefix| p.starts_with(prefix.as_str()))
        });
    }

    // Report: stdout always carries the text view; --output carries the
    // selected format (SARIF for CI artifact upload).
    for v in &violations {
        println!("{v}");
    }
    if let Some(out_path) = &args.output {
        let doc = render(args.format, &violations);
        if let Err(e) = std::fs::write(out_path, doc) {
            eprintln!("gllm-lint: cannot write {}: {e}", out_path.display());
            return ExitCode::FAILURE;
        }
        println!("gllm-lint: report written to {}", out_path.display());
    } else if args.format == Format::Sarif {
        print!("{}", render(Format::Sarif, &violations));
    }

    let counts = ratchet::family_counts(&violations);

    // Ratchet verification.
    let mut ratchet_failed = false;
    if let Some(baseline_path) = &args.baseline {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gllm-lint: cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline) = ratchet::parse_baseline(&text) else {
            eprintln!(
                "gllm-lint: baseline {} is corrupt (no counts parsed)",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        };
        for d in ratchet::drift(&counts, &baseline) {
            match d {
                Drift::Regressed { family, current, baseline } => {
                    eprintln!(
                        "gllm-lint: ratchet REGRESSION: {family} has {current} finding(s), \
                         baseline allows {baseline}"
                    );
                    ratchet_failed = true;
                }
                Drift::Improvable { family, current, baseline } => {
                    println!(
                        "gllm-lint: ratchet can tighten: {family} is down to {current} \
                         (baseline {baseline}); re-run with --write-baseline"
                    );
                }
            }
        }
        if !ratchet_failed {
            println!("gllm-lint: ratchet ok ({})", baseline_path.display());
        }
    }

    if let Some(path) = &args.write_baseline {
        let doc = ratchet::baseline_json(&counts);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("gllm-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("gllm-lint: baseline written to {}", path.display());
    }

    let denied = match &args.deny {
        Some(list) => violations.iter().filter(|v| list.contains(&v.check)).count(),
        None => 0,
    };
    if violations.is_empty() {
        println!("gllm-lint: clean ({} checks)", Check::ALL.len());
    } else {
        println!("gllm-lint: {} violation(s)", violations.len());
    }
    if ratchet_failed || denied > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
