//! `gllm-lint` CLI: run the workspace static-analysis pass.
//!
//! Usage: `cargo run -p gllm-lint -- [--root PATH] [--deny] [--list-checks]`
//!
//! * `--root PATH`    workspace root (default: current directory)
//! * `--deny`         exit nonzero when any violation is found (CI mode)
//! * `--list-checks`  print the check families and exit

use std::path::PathBuf;
use std::process::ExitCode;

use gllm_lint::{lint_workspace, Check};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-checks" => {
                for c in Check::ALL {
                    println!("{:<16} {}", c.name(), c.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("gllm-lint [--root PATH] [--deny] [--list-checks]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let violations = lint_workspace(&root);
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("gllm-lint: clean ({} checks)", Check::ALL.len());
        ExitCode::SUCCESS
    } else {
        println!("gllm-lint: {} violation(s)", violations.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
