//! In-tree static-analysis pass (`gllm-lint`) v2: a zero-dependency Rust
//! token-stream lexer plus an intraprocedural dataflow engine, so checks
//! see *token facts across statements* instead of single source lines. It
//! still runs fully offline as part of the tier-1 gate.
//!
//! Pipeline: [`lexer`] (tokens + comments, strings blanked) → [`syntax`]
//! (per-line stripped view, `lint:allow` collection, per-function token
//! slices) → [`dataflow`] (guard liveness, lock acquisition order, unit
//! taint) → check families → suppression → [`sarif`]/[`ratchet`] reporting.
//!
//! Nine check families (see `DESIGN.md` §7 and §9 for the rationale):
//!
//! * **unit-confusion** — the public interfaces of the scheduler/KV layers
//!   must pass quantities as the `Tokens`/`Blocks`/`Bytes` newtypes from
//!   `gllm-units`, not raw integers.
//! * **panic-freedom** — no `unwrap()`/`expect()`/`panic!`-family macros or
//!   literal-index slicing in non-test code on the `crates/runtime`,
//!   `crates/core` and `crates/lint` hot paths.
//! * **sim-determinism** — no wall clocks, OS entropy, or hash-ordered
//!   containers in `crates/sim`, `crates/core`, `crates/metrics`.
//! * **lock-discipline** — no `MutexGuard` live across channel `send(`/
//!   `recv(` or thread `join()` in `crates/runtime`. v2 tracks guards
//!   through multi-line bindings, `if let`/`match` scopes, moves and
//!   `drop()` — not just one physical line.
//! * **vendor-hygiene** — every `vendor/` path dependency in the root
//!   `Cargo.toml` must resolve to an actual shim crate and be documented.
//! * **lock-order** — the Mutex/RwLock acquisition graph (edges: lock B
//!   taken while lock A is held) must be acyclic, per file and globally
//!   across the runtime; a cycle or a re-lock of a held `std::sync::Mutex`
//!   is a potential deadlock.
//! * **newtype-escape** — taint analysis: `Tokens`/`Blocks`/`Bytes` values
//!   escaping to raw integers via `.get()`/`.0` must not mix units in
//!   arithmetic or cross `pub fn` boundaries as raw `usize`/`u64`.
//! * **float-determinism** — no `.partial_cmp(` comparisons or NaN literals
//!   in the sim/metrics/workload planes: replay must be bit-identical, so
//!   `f64` keys compare with `f64::total_cmp`.
//! * **stale-suppression** — a `lint:allow` that no longer suppresses any
//!   finding is itself a violation (suppressions must not outlive their
//!   reason).
//!
//! Any finding can be suppressed with an inline comment carrying a
//! mandatory reason:
//!
//! ```text
//! do_thing().expect("checked above"); // lint:allow(panic-freedom): checked on the previous line
//! // lint:allow(unit-confusion): the second cap counts sequences, not tokens
//! pub fn budget_caps(...) -> Option<(Tokens, usize)> { ... }
//! ```
//!
//! A trailing allow covers its own line; a standalone allow comment covers
//! the next code line. An allow without a reason, naming an unknown check,
//! or naming `stale-suppression` itself is reported as a violation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod dataflow;
pub mod lexer;
pub mod ratchet;
pub mod sarif;
pub mod syntax;

use syntax::SourceLine;

/// The check families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// Raw integers crossing unit-bearing public interfaces.
    UnitConfusion,
    /// Panicking constructs on runtime/core/lint hot paths.
    PanicFreedom,
    /// Nondeterminism sources in the simulation plane.
    SimDeterminism,
    /// Mutex guards held across blocking channel/thread operations.
    LockDiscipline,
    /// Vendored path dependencies without a shim or README entry.
    VendorHygiene,
    /// Cyclic (or reentrant) lock acquisition order in the runtime.
    LockOrder,
    /// Unit newtype raw escapes mixing units or crossing pub boundaries.
    NewtypeEscape,
    /// Partial f64 orders / NaN injection in deterministic planes.
    FloatDeterminism,
    /// `lint:allow` annotations that suppress nothing.
    StaleSuppression,
}

impl Check {
    /// Every check, in reporting order.
    pub const ALL: [Check; 9] = [
        Check::UnitConfusion,
        Check::PanicFreedom,
        Check::SimDeterminism,
        Check::LockDiscipline,
        Check::VendorHygiene,
        Check::LockOrder,
        Check::NewtypeEscape,
        Check::FloatDeterminism,
        Check::StaleSuppression,
    ];

    /// The kebab-case name used in reports and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Check::UnitConfusion => "unit-confusion",
            Check::PanicFreedom => "panic-freedom",
            Check::SimDeterminism => "sim-determinism",
            Check::LockDiscipline => "lock-discipline",
            Check::VendorHygiene => "vendor-hygiene",
            Check::LockOrder => "lock-order",
            Check::NewtypeEscape => "newtype-escape",
            Check::FloatDeterminism => "float-determinism",
            Check::StaleSuppression => "stale-suppression",
        }
    }

    /// Parse a check name as written inside `lint:allow(...)`.
    pub fn from_name(name: &str) -> Option<Check> {
        Check::ALL.into_iter().find(|c| c.name() == name)
    }

    /// One-line description for `--list-checks`.
    pub fn describe(self) -> &'static str {
        match self {
            Check::UnitConfusion => {
                "Tokens/Blocks/Bytes newtypes must cross scheduler/KV public interfaces, not raw ints"
            }
            Check::PanicFreedom => {
                "no unwrap()/expect()/panic! family/literal-index slicing in runtime+core+kvcache+lint non-test code"
            }
            Check::SimDeterminism => {
                "no Instant::now/SystemTime/thread_rng/HashMap/HashSet/thread::spawn in sim, core and metrics (threads only via gllm_sim::sweep)"
            }
            Check::LockDiscipline => {
                "no MutexGuard live across channel send(/recv( or thread join() in the runtime (tracked through bindings and blocks)"
            }
            Check::VendorHygiene => {
                "every vendor/ path dep resolves to a shim crate with a vendor/README.md entry"
            }
            Check::LockOrder => {
                "the Mutex/RwLock acquisition graph must be acyclic (per file and globally); re-locking a held Mutex is a self-deadlock"
            }
            Check::NewtypeEscape => {
                "raw escapes of Tokens/Blocks/Bytes (.get()/.0) must not mix units in +/- or return from pub fns as raw usize/u64"
            }
            Check::FloatDeterminism => {
                "no .partial_cmp( or NaN literals in sim/metrics/workload planes; order f64 keys with f64::total_cmp"
            }
            Check::StaleSuppression => {
                "every lint:allow(...) must still suppress at least one live finding"
            }
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The check that fired.
    pub check: Check,
    /// File the finding is in (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub path: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.check,
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Line-oriented checks (ported from the v1 lexical pass; they now consume
// the lexer-derived per-line view instead of the ad-hoc string scanner).
// ---------------------------------------------------------------------------

/// Identifier fragments that signal a unit-bearing quantity.
const UNIT_HINTS: [&str; 6] = ["token", "block", "byte", "capacit", "budget", "slack"];

fn has_unit_hint(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    UNIT_HINTS.iter().any(|h| lower.contains(h))
}

/// Split out `name: type` parameter pairs from a flattened signature.
fn raw_int_params(sig: &str) -> Vec<String> {
    let mut found = Vec::new();
    let b = sig.as_bytes();
    let mut i = 0;
    while let Some(colon) = sig[i..].find(':').map(|p| p + i) {
        // Identifier before the colon.
        let mut s = colon;
        while s > 0 && (b[s - 1] as char).is_whitespace() {
            s -= 1;
        }
        let mut start = s;
        while start > 0 {
            let c = b[start - 1] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                start -= 1;
            } else {
                break;
            }
        }
        let name = &sig[start..s];
        // Type after the colon (skip `::` paths — only single colons are
        // parameter separators).
        let after = &sig[colon + 1..];
        if after.starts_with(':') || (s > 0 && b[s - 1] as char == ':') {
            i = colon + 1;
            continue;
        }
        let ty: String = after
            .trim_start()
            .chars()
            .take_while(|c| *c != ',' && *c != ')')
            .collect();
        let ty = ty.trim();
        let is_raw_int = ty == "usize"
            || ty == "u64"
            || ty == "&usize"
            || ty == "&u64"
            || ty.starts_with("usize ")
            || ty.starts_with("u64 ");
        if is_raw_int && !name.is_empty() && has_unit_hint(name) {
            found.push(name.to_string());
        }
        i = colon + 1;
    }
    found
}

/// unit-confusion: public `fn` signatures in unit-bearing files must not
/// pass hinted quantities as raw `usize`/`u64`.
fn check_unit_confusion(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        if line.in_test || !line.code.contains("pub fn ") {
            i += 1;
            continue;
        }
        let fn_line = i + 1;
        // Flatten the signature: accumulate until the body opens or the
        // declaration ends.
        let mut sig = String::new();
        let mut j = i;
        while j < lines.len() && j < i + 24 {
            let code = &lines[j].code;
            if let Some(brace) = code.find('{') {
                sig.push_str(&code[..brace]);
                break;
            }
            sig.push_str(code);
            sig.push(' ');
            if code.contains(';') {
                break;
            }
            j += 1;
        }
        let fn_name = sig
            .split("pub fn ")
            .nth(1)
            .map(|rest| {
                rest.chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect::<String>()
            })
            .unwrap_or_default();
        let (params, ret) = match sig.split_once("->") {
            Some((p, r)) => (p.to_string(), r.to_string()),
            None => (sig.clone(), String::new()),
        };
        for name in raw_int_params(&params) {
            out.push(Violation {
                check: Check::UnitConfusion,
                path: path.to_path_buf(),
                line: fn_line,
                message: format!(
                    "`pub fn {fn_name}` takes `{name}` as a raw integer; use the \
                     Tokens/Blocks/Bytes newtypes from gllm-units at public boundaries"
                ),
            });
        }
        if (ret.contains("usize") || ret.contains("u64")) && has_unit_hint(&fn_name) {
            out.push(Violation {
                check: Check::UnitConfusion,
                path: path.to_path_buf(),
                line: fn_line,
                message: format!(
                    "`pub fn {fn_name}` returns a raw integer; unit-named accessors must \
                     return Tokens/Blocks/Bytes"
                ),
            });
        }
        i = j.max(i) + 1;
    }
    out
}

/// panic-freedom: panicking constructs in non-test hot-path code.
fn check_panic_freedom(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    const PANICKY: [(&str, &str); 6] = [
        (".unwrap()", "unwrap()"),
        (".expect(", "expect()"),
        ("panic!(", "panic!"),
        ("unreachable!(", "unreachable!"),
        ("todo!(", "todo!"),
        ("unimplemented!(", "unimplemented!"),
    ];
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, label) in PANICKY {
            if line.code.contains(needle) {
                out.push(Violation {
                    check: Check::PanicFreedom,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "`{label}` on a hot path; return a Result (or justify with \
                         `// lint:allow(panic-freedom): <why the invariant holds>`)"
                    ),
                });
            }
        }
        // Literal-integer indexing (`xs[0]`): panics when the container is
        // shorter than assumed. Non-literal indices are out of scope for a
        // lexical pass.
        if let Some(v) = find_literal_index(&line.code) {
            out.push(Violation {
                check: Check::PanicFreedom,
                path: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "literal index `[{v}]` can panic; use .get({v}) / .first() or justify \
                     with a lint:allow"
                ),
            });
        }
    }
    out
}

/// Find `ident[<digits>]` indexing in stripped code (skips array type/len
/// syntax like `[0u8; 4]` which is not preceded by an identifier char).
fn find_literal_index(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(prev.is_ascii_alphanumeric() || prev == '_' || prev == ')') {
            continue;
        }
        let digits: String = code[i + 1..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if digits.is_empty() {
            continue;
        }
        if code[i + 1 + digits.len()..].starts_with(']') {
            return Some(digits);
        }
    }
    None
}

/// sim-determinism: wall clocks, OS entropy, hash-ordered containers,
/// unsanctioned threading.
fn check_sim_determinism(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    const BANNED: [(&str, &str); 7] = [
        ("Instant::now", "wall-clock time is nondeterministic; thread virtual time through"),
        ("SystemTime", "system time is nondeterministic; thread virtual time through"),
        ("thread_rng", "OS entropy breaks replay; use a seeded StdRng"),
        ("from_entropy", "OS entropy breaks replay; use seed_from_u64"),
        ("HashMap", "iteration order is nondeterministic; use BTreeMap"),
        ("HashSet", "iteration order is nondeterministic; use BTreeSet"),
        (
            "thread::spawn",
            "thread scheduling is nondeterministic; fan out via gllm_sim::sweep (the sanctioned index-merged pool)",
        ),
    ];
    // The sweep module is the one sanctioned home for threads in the
    // simulation plane: workers merge results by job index, so its output
    // is scheduling-independent by construction.
    let sanctioned_threads =
        path.to_string_lossy().replace('\\', "/").ends_with("crates/sim/src/sweep.rs");
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, why) in BANNED {
            if needle == "thread::spawn" && sanctioned_threads {
                continue;
            }
            if line.code.contains(needle) {
                out.push(Violation {
                    check: Check::SimDeterminism,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!("`{needle}`: {why}"),
                });
            }
        }
    }
    out
}

/// float-determinism: partial f64 orders and NaN injection in planes that
/// must replay bit-identically.
fn check_float_determinism(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if code.contains(".partial_cmp(") {
            out.push(Violation {
                check: Check::FloatDeterminism,
                path: path.to_path_buf(),
                line: idx + 1,
                message: "`.partial_cmp(` is not a total order (None on NaN) and makes sort \
                          results input-order-dependent; compare f64 keys with f64::total_cmp"
                    .to_string(),
            });
        }
        for needle in ["f64::NAN", "f32::NAN"] {
            if code.contains(needle) {
                out.push(Violation {
                    check: Check::FloatDeterminism,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "`{needle}` literal: NaN poisons every downstream comparison and \
                         breaks bit-reproducible replay; use an Option or a finite sentinel"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lock-order cycle detection over dataflow edges.
// ---------------------------------------------------------------------------

/// Tarjan SCC over the lock graph; components are returned sorted.
fn lock_sccs<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    struct T<'a> {
        index: BTreeMap<&'a str, usize>,
        low: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        out: Vec<Vec<&'a str>>,
    }
    fn strong<'a>(v: &'a str, adj: &BTreeMap<&'a str, BTreeSet<&'a str>>, t: &mut T<'a>) {
        t.index.insert(v, t.next);
        t.low.insert(v, t.next);
        t.next += 1;
        t.stack.push(v);
        t.on_stack.insert(v);
        if let Some(ns) = adj.get(v) {
            for &w in ns {
                if !t.index.contains_key(w) {
                    strong(w, adj, t);
                    let lw = t.low.get(w).copied().unwrap_or(0);
                    if lw < t.low.get(v).copied().unwrap_or(0) {
                        t.low.insert(v, lw);
                    }
                } else if t.on_stack.contains(w) {
                    let iw = t.index.get(w).copied().unwrap_or(0);
                    if iw < t.low.get(v).copied().unwrap_or(0) {
                        t.low.insert(v, iw);
                    }
                }
            }
        }
        if t.low.get(v) == t.index.get(v) {
            let mut comp = Vec::new();
            while let Some(w) = t.stack.pop() {
                t.on_stack.remove(w);
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            t.out.push(comp);
        }
    }
    let mut t = T {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for &v in adj.keys() {
        if !t.index.contains_key(v) {
            strong(v, adj, &mut t);
        }
    }
    t.out.sort();
    t.out
}

/// Report acquisition-order cycles. With `cross_file_only`, components
/// whose edges all come from one file are skipped (they were already
/// reported by the per-file pass).
fn lock_order_cycles(
    edges: &[(PathBuf, dataflow::LockEdge)],
    cross_file_only: bool,
) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (_, e) in edges {
        if e.held != e.acquired {
            adj.entry(&e.held).or_default().insert(&e.acquired);
            adj.entry(&e.acquired).or_default();
        }
    }
    let mut out = Vec::new();
    for comp in lock_sccs(&adj) {
        if comp.len() < 2 {
            continue;
        }
        let set: BTreeSet<&str> = comp.iter().copied().collect();
        let members: Vec<&(PathBuf, dataflow::LockEdge)> = edges
            .iter()
            .filter(|(_, e)| {
                e.held != e.acquired
                    && set.contains(e.held.as_str())
                    && set.contains(e.acquired.as_str())
            })
            .collect();
        let files: BTreeSet<&PathBuf> = members.iter().map(|(f, _)| f).collect();
        if cross_file_only && files.len() < 2 {
            continue;
        }
        let Some((afile, aedge)) = members
            .iter()
            .map(|(f, e)| (f, e))
            .min_by(|a, b| (a.0, a.1.line).cmp(&(b.0, b.1.line)))
        else {
            continue;
        };
        let detail: Vec<String> = members
            .iter()
            .map(|(f, e)| format!("{}→{} at {}:{}", e.held, e.acquired, f.display(), e.line))
            .collect();
        out.push(Violation {
            check: Check::LockOrder,
            path: afile.to_path_buf(),
            line: aedge.line,
            message: format!(
                "lock-order cycle between {{{}}}: inconsistent acquisition order can \
                 deadlock when the paths interleave ({})",
                comp.join(", "),
                detail.join("; ")
            ),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file driving.
// ---------------------------------------------------------------------------

/// Which checks apply to a workspace-relative `.rs` path.
fn checks_for(rel: &Path) -> Vec<Check> {
    let p = rel.to_string_lossy().replace('\\', "/");
    let mut checks = Vec::new();
    // Unit boundaries: the scheduler/KV files that carry quantities.
    const UNIT_FILES: [&str; 7] = [
        "crates/core/src/throttle.rs",
        "crates/core/src/plan.rs",
        "crates/core/src/policy.rs",
        "crates/core/src/pool.rs",
        "crates/kvcache/src/allocator.rs",
        "crates/kvcache/src/page_table.rs",
        "crates/kvcache/src/manager.rs",
    ];
    if UNIT_FILES.iter().any(|f| p.ends_with(f)) {
        checks.push(Check::UnitConfusion);
    }
    if p.contains("crates/runtime/src/")
        || p.contains("crates/core/src/")
        || p.contains("crates/kvcache/src/")
        || p.contains("crates/lint/src/")
    {
        checks.push(Check::PanicFreedom);
    }
    if p.contains("crates/sim/src/")
        || p.contains("crates/core/src/")
        || p.contains("crates/metrics/src/")
    {
        checks.push(Check::SimDeterminism);
    }
    if p.contains("crates/runtime/src/") {
        checks.push(Check::LockDiscipline);
        checks.push(Check::LockOrder);
    }
    if p.contains("crates/kvcache/src/")
        || p.contains("crates/core/src/")
        || p.contains("crates/sim/src/")
    {
        checks.push(Check::NewtypeEscape);
    }
    if p.contains("crates/sim/src/")
        || p.contains("crates/metrics/src/")
        || p.contains("crates/workload/src/")
        || p.contains("crates/core/src/")
        || p.contains("crates/lint/src/")
    {
        checks.push(Check::FloatDeterminism);
    }
    // Stale-suppression applies everywhere an allow could live.
    if p.contains("/src/") {
        checks.push(Check::StaleSuppression);
    }
    checks
}

/// Run `checks` against one Rust source text. Suppressions are honoured;
/// malformed or stale suppressions are appended as violations.
pub fn lint_rust_source(path: &Path, contents: &str, checks: &[Check]) -> Vec<Violation> {
    lint_rust_source_with_edges(path, contents, checks).0
}

/// Like [`lint_rust_source`], additionally returning the file's lock
/// acquisition-order edges (non-empty only when [`Check::LockOrder`] is
/// requested) so [`lint_workspace`] can assemble the *global* lock graph.
pub fn lint_rust_source_with_edges(
    path: &Path,
    contents: &str,
    checks: &[Check],
) -> (Vec<Violation>, Vec<(PathBuf, dataflow::LockEdge)>) {
    let lexed = lexer::lex(contents);
    let lines = syntax::source_lines(&lexed);
    let allows = syntax::collect_allows(&lexed, &lines);
    let fns = syntax::functions(&lexed, &lines);

    // The guard dataflow runs once; both lock families consume it.
    let mut discipline: Vec<(usize, String)> = Vec::new();
    let mut order: Vec<(usize, String)> = Vec::new();
    let mut edges: Vec<(PathBuf, dataflow::LockEdge)> = Vec::new();
    if checks.contains(&Check::LockDiscipline) || checks.contains(&Check::LockOrder) {
        for f in fns.iter().filter(|f| !f.in_test) {
            let facts = dataflow::lock_facts(f);
            discipline.extend(facts.violations);
            order.extend(facts.order_violations);
            edges.extend(facts.edges.into_iter().map(|e| (path.to_path_buf(), e)));
        }
        // Nested fns are scanned both standalone and inside their parent:
        // dedup the facts.
        edges.sort_by(|a, b| {
            (&a.0, &a.1.held, &a.1.acquired, a.1.line)
                .cmp(&(&b.0, &b.1.held, &b.1.acquired, b.1.line))
        });
        edges.dedup();
    }

    let mk = |check: Check, (line, message): &(usize, String)| Violation {
        check,
        path: path.to_path_buf(),
        line: *line,
        message: message.clone(),
    };

    let mut raw: Vec<Violation> = Vec::new();
    for &check in checks {
        match check {
            Check::UnitConfusion => raw.extend(check_unit_confusion(path, &lines)),
            Check::PanicFreedom => raw.extend(check_panic_freedom(path, &lines)),
            Check::SimDeterminism => raw.extend(check_sim_determinism(path, &lines)),
            Check::FloatDeterminism => raw.extend(check_float_determinism(path, &lines)),
            Check::LockDiscipline => {
                raw.extend(discipline.iter().map(|v| mk(Check::LockDiscipline, v)));
            }
            Check::LockOrder => {
                raw.extend(order.iter().map(|v| mk(Check::LockOrder, v)));
                raw.extend(lock_order_cycles(&edges, false));
            }
            Check::NewtypeEscape => {
                for f in fns.iter().filter(|f| !f.in_test) {
                    raw.extend(
                        dataflow::unit_taint(f).iter().map(|v| mk(Check::NewtypeEscape, v)),
                    );
                }
            }
            Check::VendorHygiene | Check::StaleSuppression => {}
        }
    }
    // Dedup nested-fn double reports.
    let mut seen: BTreeSet<(Check, usize, String)> = BTreeSet::new();
    raw.retain(|v| seen.insert((v.check, v.line, v.message.clone())));

    // Apply suppressions, remembering which allows earned their keep.
    let mut used: BTreeSet<(usize, Check)> = BTreeSet::new();
    let mut violations: Vec<Violation> = Vec::new();
    for v in raw {
        if allows.allowed.contains_key(&(v.line, v.check)) {
            used.insert((v.line, v.check));
            continue;
        }
        violations.push(v);
    }
    if checks.contains(&Check::StaleSuppression) {
        for ((target, check), site) in &allows.allowed {
            if !used.contains(&(*target, *check)) {
                violations.push(Violation {
                    check: Check::StaleSuppression,
                    path: path.to_path_buf(),
                    line: site.comment_line,
                    message: format!(
                        "stale suppression: `lint:allow({check})` targets line {target} but \
                         suppresses no finding (reason was: \"{}\"); remove it",
                        site.reason
                    ),
                });
            }
        }
    }
    for (line, message) in &allows.errors {
        violations.push(Violation {
            check: Check::StaleSuppression,
            path: path.to_path_buf(),
            line: *line,
            message: message.clone(),
        });
    }
    violations.sort_by(|a, b| (a.line, a.check).cmp(&(b.line, b.check)));
    let edges_out =
        if checks.contains(&Check::LockOrder) { edges } else { Vec::new() };
    (violations, edges_out)
}

/// vendor-hygiene over a workspace root: every `path = "vendor/..."`
/// dependency in the root manifest must exist as a shim crate and be
/// documented in `vendor/README.md`.
pub fn check_vendor_hygiene(root: &Path) -> Vec<Violation> {
    let manifest_path = root.join("Cargo.toml");
    let mut out = Vec::new();
    let Ok(manifest) = fs::read_to_string(&manifest_path) else {
        out.push(Violation {
            check: Check::VendorHygiene,
            path: PathBuf::from("Cargo.toml"),
            line: 0,
            message: "workspace root Cargo.toml not readable".to_string(),
        });
        return out;
    };
    let readme = fs::read_to_string(root.join("vendor/README.md")).unwrap_or_default();
    for (idx, line) in manifest.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        let Some((name, rest)) = trimmed.split_once('=') else { continue };
        let name = name.trim();
        let Some(path_pos) = rest.find("path = \"vendor/") else { continue };
        let vendor_path: String = rest[path_pos + "path = \"".len()..]
            .chars()
            .take_while(|c| *c != '"')
            .collect();
        let shim = root.join(&vendor_path);
        if !shim.join("Cargo.toml").is_file() || !shim.join("src").is_dir() {
            out.push(Violation {
                check: Check::VendorHygiene,
                path: PathBuf::from("Cargo.toml"),
                line: idx + 1,
                message: format!(
                    "dependency `{name}` points at `{vendor_path}` but no shim crate \
                     (Cargo.toml + src/) exists there"
                ),
            });
        }
        if readme.is_empty() {
            out.push(Violation {
                check: Check::VendorHygiene,
                path: PathBuf::from("vendor/README.md"),
                line: 0,
                message: "vendor/README.md missing: every shim must be documented".to_string(),
            });
        } else if !readme.contains(&format!("`{name}`")) {
            out.push(Violation {
                check: Check::VendorHygiene,
                path: PathBuf::from("vendor/README.md"),
                line: 0,
                message: format!("vendored dependency `{name}` has no vendor/README.md entry"),
            });
        }
    }
    out
}

/// Recursively collect workspace `.rs` files eligible for linting.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // Build output, vendored shims and the lint fixtures (which
            // contain violations on purpose) are out of scope.
            if name == "target" || name == "vendor" || name == "fixtures" {
                continue;
            }
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint the workspace rooted at `root`: all families, scoped per
/// [`checks_for`], plus vendor hygiene and the *global* lock-order graph
/// assembled across every runtime file. Paths in the result are relative to
/// `root`.
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files);
    let mut violations = Vec::new();
    let mut all_edges: Vec<(PathBuf, dataflow::LockEdge)> = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let checks = checks_for(&rel);
        if checks.is_empty() {
            continue;
        }
        let Ok(contents) = fs::read_to_string(&file) else { continue };
        let (vs, edges) = lint_rust_source_with_edges(&rel, &contents, &checks);
        violations.extend(vs);
        all_edges.extend(edges);
    }
    // Cross-file cycles: per-file passes each saw only their own slice of
    // the acquisition graph.
    violations.extend(lock_order_cycles(&all_edges, true));
    violations.extend(check_vendor_hygiene(root));
    violations.sort_by(|a, b| (&a.path, a.line, a.check).cmp(&(&b.path, b.line, b.check)));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, checks: &[Check]) -> Vec<Violation> {
        lint_rust_source(Path::new("test.rs"), src, checks)
    }

    #[test]
    fn fault_injection_module_is_in_panic_freedom_scope() {
        // The fault-injection/recovery layer must stay panic-free and
        // lock-disciplined: a panic inside the recovery path would turn an
        // injected (survivable) fault into a real crash.
        let checks = checks_for(Path::new("crates/runtime/src/fault.rs"));
        assert!(checks.contains(&Check::PanicFreedom), "fault.rs must be panic-free");
        assert!(checks.contains(&Check::LockDiscipline), "injector holds a shared mutex");
        let driver = checks_for(Path::new("crates/runtime/src/driver.rs"));
        assert!(driver.contains(&Check::PanicFreedom), "recovery path must be panic-free");
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r#"
fn f() {
    let s = "HashMap and .unwrap() inside a string";
    // HashMap in a comment
    /* Instant::now in a block comment */
}
"#;
        assert!(lint(src, &[Check::SimDeterminism, Check::PanicFreedom]).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
fn hot() -> usize { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert_eq!(m.get(&0).copied().unwrap_or(0), 0);
        Some(1).unwrap();
    }
}
"#;
        assert!(lint(src, &[Check::SimDeterminism, Check::PanicFreedom]).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_same_line_only() {
        let src = "fn f() {\n    a.expect(\"x\"); // lint:allow(panic-freedom): invariant documented\n    b.expect(\"y\");\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "fn f() {\n    // lint:allow(panic-freedom): checked above\n    a.expect(\"x\");\n}\n";
        assert!(lint(src, &[Check::PanicFreedom]).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "fn f() {\n    a.expect(\"x\"); // lint:allow(panic-freedom)\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        // The expect still fires AND the bare allow is flagged.
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|v| v.message.contains("requires a reason")));
    }

    #[test]
    fn allow_with_unknown_check_is_a_violation() {
        let src = "fn f() { // lint:allow(made-up-check): because\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown check"));
    }

    #[test]
    fn literal_index_is_flagged_but_variable_index_is_not() {
        let src = "fn f(xs: &[u32], i: usize) {\n    let a = xs[0];\n    let b = xs[i];\n    let c = [0u8; 4];\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unit_confusion_flags_hinted_raw_params_and_returns() {
        let src = "pub fn append(seq: u64, tokens: usize) {}\npub fn block_size(&self) -> usize { 0 }\npub fn num_seqs(&self) -> usize { 0 }\n";
        let v = lint(src, &[Check::UnitConfusion]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn unit_confusion_ignores_newtyped_and_crate_private_fns() {
        let src = "pub fn append(seq: u64, tokens: Tokens) {}\npub(crate) fn fill(&mut self, tokens: usize) {}\n";
        assert!(lint(src, &[Check::UnitConfusion]).is_empty());
    }

    #[test]
    fn lock_across_send_is_flagged_and_drop_clears_it() {
        let bad = "fn f() {\n    let g = m.lock().unwrap();\n    tx.send(*g).unwrap();\n}\n";
        let v: Vec<_> = lint(bad, &[Check::LockDiscipline]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].line, 3);

        let good = "fn f() {\n    let g = m.lock().unwrap();\n    let v = *g;\n    drop(g);\n    tx.send(v).unwrap();\n}\n";
        assert!(lint(good, &[Check::LockDiscipline]).is_empty());

        let scoped = "fn f() {\n    {\n        let g = m.lock().unwrap();\n    }\n    tx.send(1).unwrap();\n}\n";
        assert!(lint(scoped, &[Check::LockDiscipline]).is_empty());
    }

    #[test]
    fn multiline_guard_binding_is_tracked() {
        // The v1 lexical check required `let` and `.lock()` on one line;
        // this binding spans three.
        let src = "fn f() {\n    let g = m\n        .lock()\n        .unwrap();\n    let v = rx.recv().unwrap();\n    let _ = (*g, v);\n}\n";
        let v = lint(src, &[Check::LockDiscipline]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("MutexGuard `g` is live"));
    }

    #[test]
    fn deref_copy_does_not_bind_the_guard() {
        let src = "fn f() {\n    let v = *m.lock().unwrap();\n    tx.send(v).unwrap();\n}\n";
        assert!(lint(src, &[Check::LockDiscipline]).is_empty());
    }

    #[test]
    fn lock_order_cycle_is_reported_once() {
        let src = "fn fwd() {\n    let a = alpha.lock().unwrap();\n    let b = beta.lock().unwrap();\n    let _ = (a, b);\n}\nfn bwd() {\n    let b = beta.lock().unwrap();\n    let a = alpha.lock().unwrap();\n    let _ = (a, b);\n}\n";
        let v = lint(src, &[Check::LockOrder]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].message.contains("lock-order cycle"));
        assert!(v[0].message.contains("alpha"));
        assert!(v[0].message.contains("beta"));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "fn one() {\n    let a = alpha.lock().unwrap();\n    let b = beta.lock().unwrap();\n    let _ = (a, b);\n}\nfn two() {\n    let a = alpha.lock().unwrap();\n    let b = beta.lock().unwrap();\n    let _ = (a, b);\n}\n";
        assert!(lint(src, &[Check::LockOrder]).is_empty());
    }

    #[test]
    fn stale_allow_is_a_violation() {
        let src = "fn f() {\n    // lint:allow(panic-freedom): nothing here panics any more\n    let x = 1 + 1;\n    let _ = x;\n}\n";
        let v = lint(src, &[Check::PanicFreedom, Check::StaleSuppression]);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].check, Check::StaleSuppression);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("stale suppression"));
    }

    #[test]
    fn live_allow_is_not_stale() {
        let src = "fn f() {\n    a.expect(\"x\"); // lint:allow(panic-freedom): invariant documented\n}\n";
        let v = lint(src, &[Check::PanicFreedom, Check::StaleSuppression]);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn float_determinism_findings() {
        let src = "fn f(xs: &mut Vec<f64>) -> f64 {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    f64::NAN\n}\n";
        let v = lint(src, &[Check::FloatDeterminism]);
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v.iter().any(|v| v.message.contains("total_cmp")));
        assert!(v.iter().any(|v| v.message.contains("NaN")));
    }

    #[test]
    fn partial_ord_impls_are_not_flagged() {
        // Defining `fn partial_cmp` (no leading dot) is fine; only *calls*
        // are a determinism hazard.
        let src = "impl PartialOrd for E {\n    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\n";
        assert!(lint(src, &[Check::FloatDeterminism]).is_empty());
    }

    #[test]
    fn check_names_round_trip() {
        for c in Check::ALL {
            assert_eq!(Check::from_name(c.name()), Some(c));
        }
        assert_eq!(Check::from_name("nope"), None);
    }
}
