//! In-tree static-analysis pass (`gllm-lint`), modeled on rust-lang's
//! `tidy`: purely lexical, line-level checks with no external parser
//! dependencies, so it runs fully offline as part of the tier-1 gate.
//!
//! Five check families (see `DESIGN.md` §7 for the rationale):
//!
//! * **unit-confusion** — the public interfaces of the scheduler/KV layers
//!   (`throttle.rs`, `plan.rs`, `policy.rs`, `pool.rs`, `allocator.rs`,
//!   `page_table.rs`, `manager.rs`) must pass quantities as the `Tokens`/
//!   `Blocks`/`Bytes` newtypes from `gllm-units`, not raw integers.
//! * **panic-freedom** — no `unwrap()`/`expect()`/`panic!`-family macros or
//!   literal-index slicing in non-test code on the `crates/runtime` and
//!   `crates/core` hot paths (asserts are fine: they document invariants).
//! * **sim-determinism** — no wall clocks, OS entropy, or hash-ordered
//!   containers in `crates/sim`, `crates/core`, `crates/metrics`: the
//!   simulator must replay bit-identically (seeded RNG and `BTreeMap`
//!   only).
//! * **lock-discipline** — no `MutexGuard` held across channel `send(`/
//!   `recv(` or thread `join()` in `crates/runtime` (a guard held across a
//!   blocking rendezvous is how the pipeline deadlocks).
//! * **vendor-hygiene** — every `vendor/` path dependency in the root
//!   `Cargo.toml` must resolve to an actual shim crate and be documented in
//!   `vendor/README.md`.
//!
//! Any finding can be suppressed with an inline comment carrying a
//! mandatory reason:
//!
//! ```text
//! do_thing().expect("checked above"); // lint:allow(panic-freedom): checked on the previous line
//! // lint:allow(unit-confusion): the second cap counts sequences, not tokens
//! pub fn budget_caps(...) -> Option<(Tokens, usize)> { ... }
//! ```
//!
//! A trailing allow covers its own line; a standalone allow comment covers
//! the next code line. An allow without a reason — or naming an unknown
//! check — is itself reported as a violation.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The check families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Check {
    /// Raw integers crossing unit-bearing public interfaces.
    UnitConfusion,
    /// Panicking constructs on runtime/core hot paths.
    PanicFreedom,
    /// Nondeterminism sources in the simulation plane.
    SimDeterminism,
    /// Mutex guards held across blocking channel/thread operations.
    LockDiscipline,
    /// Vendored path dependencies without a shim or README entry.
    VendorHygiene,
}

impl Check {
    /// Every check, in reporting order.
    pub const ALL: [Check; 5] = [
        Check::UnitConfusion,
        Check::PanicFreedom,
        Check::SimDeterminism,
        Check::LockDiscipline,
        Check::VendorHygiene,
    ];

    /// The kebab-case name used in reports and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Check::UnitConfusion => "unit-confusion",
            Check::PanicFreedom => "panic-freedom",
            Check::SimDeterminism => "sim-determinism",
            Check::LockDiscipline => "lock-discipline",
            Check::VendorHygiene => "vendor-hygiene",
        }
    }

    /// Parse a check name as written inside `lint:allow(...)`.
    pub fn from_name(name: &str) -> Option<Check> {
        Check::ALL.into_iter().find(|c| c.name() == name)
    }

    /// One-line description for `--list-checks`.
    pub fn describe(self) -> &'static str {
        match self {
            Check::UnitConfusion => {
                "Tokens/Blocks/Bytes newtypes must cross scheduler/KV public interfaces, not raw ints"
            }
            Check::PanicFreedom => {
                "no unwrap()/expect()/panic! family/literal-index slicing in runtime+core non-test code"
            }
            Check::SimDeterminism => {
                "no Instant::now/SystemTime/thread_rng/HashMap/HashSet/thread::spawn in sim, core and metrics (threads only via gllm_sim::sweep)"
            }
            Check::LockDiscipline => {
                "no MutexGuard live across channel send(/recv( or thread join() in the runtime"
            }
            Check::VendorHygiene => {
                "every vendor/ path dep resolves to a shim crate with a vendor/README.md entry"
            }
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The check that fired.
    pub check: Check,
    /// File the finding is in (workspace-relative when produced by
    /// [`lint_workspace`]).
    pub path: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.check,
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source preprocessing: strings/comments stripped, comments kept aside.
// ---------------------------------------------------------------------------

/// One physical line after lexical preprocessing.
#[derive(Debug, Clone, Default)]
struct SourceLine {
    /// The line with string/char literals blanked and comments removed.
    code: String,
    /// Concatenated text of `//` and `/* */` comments on the line.
    comment: String,
    /// Whether the line is inside a `#[cfg(test)]` module (or is itself a
    /// `#[test]`-attributed region opener).
    in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Normal,
    Str,
    RawStr(usize),
    BlockComment(usize),
}

/// Lexically split `contents` into per-line code and comment streams and
/// tag test regions. Purely heuristic (no real parser) but resilient to
/// strings containing `//`, nested block comments, raw strings and char
/// literals.
fn preprocess(contents: &str) -> Vec<SourceLine> {
    let mut out = Vec::new();
    let mut state = LexState::Normal;
    // Brace depth of stripped code, and the depth at which an active
    // #[cfg(test)] region began.
    let mut depth = 0usize;
    let mut test_region: Option<usize> = None;
    let mut awaiting_test_brace = false;

    for raw in contents.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                LexState::Normal => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw[raw.len() - bytes[i..].iter().collect::<String>().len()..]);
                        break;
                    }
                    '/' if next == Some('*') => {
                        state = LexState::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = LexState::Str;
                        i += 1;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string r"..." / r#"..."#.
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            code.push('"');
                            state = LexState::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes with a
                        // quote within a few chars (handles escapes).
                        let mut j = i + 1;
                        if bytes.get(j) == Some(&'\\') {
                            j += 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                        } else {
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'\'') {
                            code.push_str("' '");
                            i = j + 1;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                LexState::Str => match c {
                    '\\' => i += 2,
                    '"' => {
                        code.push('"');
                        state = LexState::Normal;
                        i += 1;
                    }
                    _ => i += 1,
                },
                LexState::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if bytes.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            state = LexState::Normal;
                            i += 1 + hashes;
                        } else {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
                LexState::BlockComment(n) => {
                    if c == '*' && next == Some('/') {
                        if n == 1 {
                            state = LexState::Normal;
                        } else {
                            state = LexState::BlockComment(n - 1);
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment(n + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
            }
        }
        // Unterminated single-line string: bail back to normal (heuristic;
        // multi-line string *literal contents* are then seen as code, but
        // every check token is unlikely inside one).
        if state == LexState::Str {
            state = LexState::Normal;
        }

        // Test-region tracking on the stripped code.
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            awaiting_test_brace = true;
        }
        let line_started_in_test = test_region.is_some();
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if awaiting_test_brace && test_region.is_none() {
                        test_region = Some(depth);
                        awaiting_test_brace = false;
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some(d) = test_region {
                        if depth < d {
                            test_region = None;
                        }
                    }
                }
                _ => {}
            }
        }
        let in_test = line_started_in_test || test_region.is_some() || awaiting_test_brace;
        out.push(SourceLine { code, comment, in_test });
    }
    out
}

// ---------------------------------------------------------------------------
// Suppression comments.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Allows {
    /// (1-based line, check) pairs whose findings are suppressed.
    allowed: BTreeMap<(usize, Check), String>,
    /// Malformed allows (missing reason / unknown check), already as
    /// violations.
    errors: Vec<(usize, String)>,
}

/// Extract `lint:allow(check): reason` annotations. A trailing allow
/// applies to its own line; a standalone comment line applies to the next
/// line that contains code.
fn collect_allows(lines: &[SourceLine]) -> Allows {
    let mut allows = Allows::default();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let Some(pos) = line.comment.find("lint:allow(") else { continue };
        let rest = &line.comment[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            allows
                .errors
                .push((lineno, "malformed lint:allow (missing `)`)".to_string()));
            continue;
        };
        let name = &rest[..close];
        let Some(check) = Check::from_name(name) else {
            allows
                .errors
                .push((lineno, format!("lint:allow names unknown check `{name}`")));
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            allows.errors.push((
                lineno,
                format!("lint:allow({name}) requires a reason: `// lint:allow({name}): <why>`"),
            ));
            continue;
        }
        // Standalone comment line: cover the next line with code.
        let target = if line.code.trim().is_empty() {
            lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j + 1)
                .unwrap_or(lineno)
        } else {
            lineno
        };
        allows.allowed.insert((target, check), reason.to_string());
    }
    allows
}

// ---------------------------------------------------------------------------
// Per-file checks.
// ---------------------------------------------------------------------------

/// Identifier fragments that signal a unit-bearing quantity.
const UNIT_HINTS: [&str; 6] = ["token", "block", "byte", "capacit", "budget", "slack"];

fn has_unit_hint(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    UNIT_HINTS.iter().any(|h| lower.contains(h))
}

/// Split out `name: type` parameter pairs from a flattened signature.
fn raw_int_params(sig: &str) -> Vec<String> {
    let mut found = Vec::new();
    let b = sig.as_bytes();
    let mut i = 0;
    while let Some(colon) = sig[i..].find(':').map(|p| p + i) {
        // Identifier before the colon.
        let mut s = colon;
        while s > 0 && (b[s - 1] as char).is_whitespace() {
            s -= 1;
        }
        let mut start = s;
        while start > 0 {
            let c = b[start - 1] as char;
            if c.is_ascii_alphanumeric() || c == '_' {
                start -= 1;
            } else {
                break;
            }
        }
        let name = &sig[start..s];
        // Type after the colon (skip `::` paths — only single colons are
        // parameter separators).
        let after = &sig[colon + 1..];
        if after.starts_with(':') || (s > 0 && b[s - 1] as char == ':') {
            i = colon + 1;
            continue;
        }
        let ty: String = after
            .trim_start()
            .chars()
            .take_while(|c| *c != ',' && *c != ')')
            .collect();
        let ty = ty.trim();
        let is_raw_int = ty == "usize"
            || ty == "u64"
            || ty == "&usize"
            || ty == "&u64"
            || ty.starts_with("usize ")
            || ty.starts_with("u64 ");
        if is_raw_int && !name.is_empty() && has_unit_hint(name) {
            found.push(name.to_string());
        }
        i = colon + 1;
    }
    found
}

/// unit-confusion: public `fn` signatures in unit-bearing files must not
/// pass hinted quantities as raw `usize`/`u64`.
fn check_unit_confusion(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        if line.in_test || !line.code.contains("pub fn ") {
            i += 1;
            continue;
        }
        let fn_line = i + 1;
        // Flatten the signature: accumulate until the body opens or the
        // declaration ends.
        let mut sig = String::new();
        let mut j = i;
        while j < lines.len() && j < i + 24 {
            let code = &lines[j].code;
            if let Some(brace) = code.find('{') {
                sig.push_str(&code[..brace]);
                break;
            }
            sig.push_str(code);
            sig.push(' ');
            if code.contains(';') {
                break;
            }
            j += 1;
        }
        let fn_name = sig
            .split("pub fn ")
            .nth(1)
            .map(|rest| {
                rest.chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect::<String>()
            })
            .unwrap_or_default();
        let (params, ret) = match sig.split_once("->") {
            Some((p, r)) => (p.to_string(), r.to_string()),
            None => (sig.clone(), String::new()),
        };
        for name in raw_int_params(&params) {
            out.push(Violation {
                check: Check::UnitConfusion,
                path: path.to_path_buf(),
                line: fn_line,
                message: format!(
                    "`pub fn {fn_name}` takes `{name}` as a raw integer; use the \
                     Tokens/Blocks/Bytes newtypes from gllm-units at public boundaries"
                ),
            });
        }
        if (ret.contains("usize") || ret.contains("u64")) && has_unit_hint(&fn_name) {
            out.push(Violation {
                check: Check::UnitConfusion,
                path: path.to_path_buf(),
                line: fn_line,
                message: format!(
                    "`pub fn {fn_name}` returns a raw integer; unit-named accessors must \
                     return Tokens/Blocks/Bytes"
                ),
            });
        }
        i = j.max(i) + 1;
    }
    out
}

/// panic-freedom: panicking constructs in non-test hot-path code.
fn check_panic_freedom(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    const PANICKY: [(&str, &str); 6] = [
        (".unwrap()", "unwrap()"),
        (".expect(", "expect()"),
        ("panic!(", "panic!"),
        ("unreachable!(", "unreachable!"),
        ("todo!(", "todo!"),
        ("unimplemented!(", "unimplemented!"),
    ];
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, label) in PANICKY {
            if line.code.contains(needle) {
                out.push(Violation {
                    check: Check::PanicFreedom,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "`{label}` on a hot path; return a Result (or justify with \
                         `// lint:allow(panic-freedom): <why the invariant holds>`)"
                    ),
                });
            }
        }
        // Literal-integer indexing (`xs[0]`): panics when the container is
        // shorter than assumed. Non-literal indices are out of scope for a
        // lexical pass.
        if let Some(v) = find_literal_index(&line.code) {
            out.push(Violation {
                check: Check::PanicFreedom,
                path: path.to_path_buf(),
                line: idx + 1,
                message: format!(
                    "literal index `[{v}]` can panic; use .get({v}) / .first() or justify \
                     with a lint:allow"
                ),
            });
        }
    }
    out
}

/// Find `ident[<digits>]` indexing in stripped code (skips array type/len
/// syntax like `[0u8; 4]` which is not preceded by an identifier char).
fn find_literal_index(code: &str) -> Option<String> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(prev.is_ascii_alphanumeric() || prev == '_' || prev == ')') {
            continue;
        }
        let digits: String = code[i + 1..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if digits.is_empty() {
            continue;
        }
        if code[i + 1 + digits.len()..].starts_with(']') {
            return Some(digits);
        }
    }
    None
}

/// sim-determinism: wall clocks, OS entropy, hash-ordered containers,
/// unsanctioned threading.
fn check_sim_determinism(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    const BANNED: [(&str, &str); 7] = [
        ("Instant::now", "wall-clock time is nondeterministic; thread virtual time through"),
        ("SystemTime", "system time is nondeterministic; thread virtual time through"),
        ("thread_rng", "OS entropy breaks replay; use a seeded StdRng"),
        ("from_entropy", "OS entropy breaks replay; use seed_from_u64"),
        ("HashMap", "iteration order is nondeterministic; use BTreeMap"),
        ("HashSet", "iteration order is nondeterministic; use BTreeSet"),
        (
            "thread::spawn",
            "thread scheduling is nondeterministic; fan out via gllm_sim::sweep (the sanctioned index-merged pool)",
        ),
    ];
    // The sweep module is the one sanctioned home for threads in the
    // simulation plane: workers merge results by job index, so its output
    // is scheduling-independent by construction.
    let sanctioned_threads =
        path.to_string_lossy().replace('\\', "/").ends_with("crates/sim/src/sweep.rs");
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, why) in BANNED {
            if needle == "thread::spawn" && sanctioned_threads {
                continue;
            }
            if line.code.contains(needle) {
                out.push(Violation {
                    check: Check::SimDeterminism,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!("`{needle}`: {why}"),
                });
            }
        }
    }
    out
}

/// lock-discipline: a `MutexGuard` binding must not stay live across a
/// channel `send(`/`recv(` or a thread `join()`.
fn check_lock_discipline(path: &Path, lines: &[SourceLine]) -> Vec<Violation> {
    let mut out = Vec::new();
    // Active guards: (name, minimum depth the guard's scope keeps).
    let mut guards: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let opens = code.matches('{').count();
        let closes = code.matches('}').count();

        // Blocking ops while any guard is live (checked before this line's
        // own binding registers: a binding and a send on one line is also
        // flagged below).
        let blocking = code.contains(".send(")
            || code.contains(".recv(")
            || code.contains(".recv_timeout(")
            || code.contains(".join()");
        if blocking {
            for (name, _) in &guards {
                out.push(Violation {
                    check: Check::LockDiscipline,
                    path: path.to_path_buf(),
                    line: idx + 1,
                    message: format!(
                        "channel/thread blocking op while MutexGuard `{name}` is live; \
                         drop the guard (narrow scope or `drop({name})`) before blocking"
                    ),
                });
            }
        }

        // Explicit drops end a guard early.
        guards.retain(|(name, _)| !code.contains(&format!("drop({name})")));

        // New guard binding?
        if code.contains(".lock()") {
            if let Some(name) = lock_binding_name(code) {
                let activation = depth + opens.saturating_sub(closes).min(1);
                if blocking {
                    out.push(Violation {
                        check: Check::LockDiscipline,
                        path: path.to_path_buf(),
                        line: idx + 1,
                        message: format!(
                            "MutexGuard `{name}` acquired on a line that also blocks on a \
                             channel/thread op"
                        ),
                    });
                }
                guards.push((name, activation.max(depth)));
            }
        }

        depth = (depth + opens).saturating_sub(closes);
        guards.retain(|(_, d)| depth >= *d);
    }
    out
}

/// Extract the binding name from `let g = ...lock()...` or
/// `if/while let Ok(g) = ...lock()...`.
fn lock_binding_name(code: &str) -> Option<String> {
    let let_pos = code.find("let ")?;
    let after = &code[let_pos + 4..];
    let after = after.trim_start();
    let after = after.strip_prefix("Ok(").unwrap_or(after);
    let after = after.trim_start().strip_prefix("mut ").unwrap_or(after).trim_start();
    let name: String = after
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    // The binding must precede the `.lock()` call on the line.
    if name.is_empty() || code.find(".lock()") < Some(let_pos) {
        None
    } else {
        Some(name)
    }
}

// ---------------------------------------------------------------------------
// Workspace-level driving.
// ---------------------------------------------------------------------------

/// Which checks apply to a workspace-relative `.rs` path.
fn checks_for(rel: &Path) -> Vec<Check> {
    let p = rel.to_string_lossy().replace('\\', "/");
    let mut checks = Vec::new();
    // Unit boundaries: the scheduler/KV files that carry quantities.
    const UNIT_FILES: [&str; 7] = [
        "crates/core/src/throttle.rs",
        "crates/core/src/plan.rs",
        "crates/core/src/policy.rs",
        "crates/core/src/pool.rs",
        "crates/kvcache/src/allocator.rs",
        "crates/kvcache/src/page_table.rs",
        "crates/kvcache/src/manager.rs",
    ];
    if UNIT_FILES.iter().any(|f| p.ends_with(f)) {
        checks.push(Check::UnitConfusion);
    }
    if p.contains("crates/runtime/src/") || p.contains("crates/core/src/") {
        checks.push(Check::PanicFreedom);
    }
    if p.contains("crates/sim/src/")
        || p.contains("crates/core/src/")
        || p.contains("crates/metrics/src/")
    {
        checks.push(Check::SimDeterminism);
    }
    if p.contains("crates/runtime/src/") {
        checks.push(Check::LockDiscipline);
    }
    checks
}

/// Run `checks` against one Rust source text. Suppressions are honoured;
/// malformed suppressions are appended as violations of the named (or
/// first) check.
pub fn lint_rust_source(path: &Path, contents: &str, checks: &[Check]) -> Vec<Violation> {
    let lines = preprocess(contents);
    let allows = collect_allows(&lines);
    let mut violations = Vec::new();
    for &check in checks {
        let found = match check {
            Check::UnitConfusion => check_unit_confusion(path, &lines),
            Check::PanicFreedom => check_panic_freedom(path, &lines),
            Check::SimDeterminism => check_sim_determinism(path, &lines),
            Check::LockDiscipline => check_lock_discipline(path, &lines),
            Check::VendorHygiene => Vec::new(),
        };
        for v in found {
            if allows.allowed.contains_key(&(v.line, check)) {
                continue;
            }
            violations.push(v);
        }
    }
    for (line, message) in &allows.errors {
        violations.push(Violation {
            check: Check::PanicFreedom, // reported under a fixed family so counts are stable
            path: path.to_path_buf(),
            line: *line,
            message: message.clone(),
        });
    }
    violations.sort_by(|a, b| (a.line, a.check).cmp(&(b.line, b.check)));
    violations
}

/// vendor-hygiene over a workspace root: every `path = "vendor/..."`
/// dependency in the root manifest must exist as a shim crate and be
/// documented in `vendor/README.md`.
pub fn check_vendor_hygiene(root: &Path) -> Vec<Violation> {
    let manifest_path = root.join("Cargo.toml");
    let mut out = Vec::new();
    let Ok(manifest) = fs::read_to_string(&manifest_path) else {
        out.push(Violation {
            check: Check::VendorHygiene,
            path: PathBuf::from("Cargo.toml"),
            line: 0,
            message: "workspace root Cargo.toml not readable".to_string(),
        });
        return out;
    };
    let readme = fs::read_to_string(root.join("vendor/README.md")).unwrap_or_default();
    for (idx, line) in manifest.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        let Some((name, rest)) = trimmed.split_once('=') else { continue };
        let name = name.trim();
        let Some(path_pos) = rest.find("path = \"vendor/") else { continue };
        let vendor_path: String = rest[path_pos + "path = \"".len()..]
            .chars()
            .take_while(|c| *c != '"')
            .collect();
        let shim = root.join(&vendor_path);
        if !shim.join("Cargo.toml").is_file() || !shim.join("src").is_dir() {
            out.push(Violation {
                check: Check::VendorHygiene,
                path: PathBuf::from("Cargo.toml"),
                line: idx + 1,
                message: format!(
                    "dependency `{name}` points at `{vendor_path}` but no shim crate \
                     (Cargo.toml + src/) exists there"
                ),
            });
        }
        if readme.is_empty() {
            out.push(Violation {
                check: Check::VendorHygiene,
                path: PathBuf::from("vendor/README.md"),
                line: 0,
                message: "vendor/README.md missing: every shim must be documented".to_string(),
            });
        } else if !readme.contains(&format!("`{name}`")) {
            out.push(Violation {
                check: Check::VendorHygiene,
                path: PathBuf::from("vendor/README.md"),
                line: 0,
                message: format!("vendored dependency `{name}` has no vendor/README.md entry"),
            });
        }
    }
    out
}

/// Recursively collect workspace `.rs` files eligible for linting.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // Build output, vendored shims and the lint fixtures (which
            // contain violations on purpose) are out of scope.
            if name == "target" || name == "vendor" || name == "fixtures" {
                continue;
            }
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lint the workspace rooted at `root`: all five families, scoped per
/// [`checks_for`], plus vendor hygiene. Paths in the result are relative to
/// `root`.
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files);
    let mut violations = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let checks = checks_for(&rel);
        if checks.is_empty() {
            continue;
        }
        let Ok(contents) = fs::read_to_string(&file) else { continue };
        violations.extend(lint_rust_source(&rel, &contents, &checks));
    }
    violations.extend(check_vendor_hygiene(root));
    violations.sort_by(|a, b| (&a.path, a.line, a.check).cmp(&(&b.path, b.line, b.check)));
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, checks: &[Check]) -> Vec<Violation> {
        lint_rust_source(Path::new("test.rs"), src, checks)
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r#"
fn f() {
    let s = "HashMap and .unwrap() inside a string";
    // HashMap in a comment
    /* Instant::now in a block comment */
}
"#;
        assert!(lint(src, &[Check::SimDeterminism, Check::PanicFreedom]).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
fn hot() -> usize { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert_eq!(m.get(&0).copied().unwrap_or(0), 0);
        Some(1).unwrap();
    }
}
"#;
        assert!(lint(src, &[Check::SimDeterminism, Check::PanicFreedom]).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_same_line_only() {
        let src = "fn f() {\n    a.expect(\"x\"); // lint:allow(panic-freedom): invariant documented\n    b.expect(\"y\");\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "fn f() {\n    // lint:allow(panic-freedom): checked above\n    a.expect(\"x\");\n}\n";
        assert!(lint(src, &[Check::PanicFreedom]).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "fn f() {\n    a.expect(\"x\"); // lint:allow(panic-freedom)\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        // The expect still fires AND the bare allow is flagged.
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|v| v.message.contains("requires a reason")));
    }

    #[test]
    fn allow_with_unknown_check_is_a_violation() {
        let src = "fn f() { // lint:allow(made-up-check): because\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown check"));
    }

    #[test]
    fn literal_index_is_flagged_but_variable_index_is_not() {
        let src = "fn f(xs: &[u32], i: usize) {\n    let a = xs[0];\n    let b = xs[i];\n    let c = [0u8; 4];\n}\n";
        let v = lint(src, &[Check::PanicFreedom]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn unit_confusion_flags_hinted_raw_params_and_returns() {
        let src = "pub fn append(seq: u64, tokens: usize) {}\npub fn block_size(&self) -> usize { 0 }\npub fn num_seqs(&self) -> usize { 0 }\n";
        let v = lint(src, &[Check::UnitConfusion]);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn unit_confusion_ignores_newtyped_and_crate_private_fns() {
        let src = "pub fn append(seq: u64, tokens: Tokens) {}\npub(crate) fn fill(&mut self, tokens: usize) {}\n";
        assert!(lint(src, &[Check::UnitConfusion]).is_empty());
    }

    #[test]
    fn lock_across_send_is_flagged_and_drop_clears_it() {
        let bad = "fn f() {\n    let g = m.lock().unwrap();\n    tx.send(*g).unwrap();\n}\n";
        let v: Vec<_> = lint(bad, &[Check::LockDiscipline]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);

        let good = "fn f() {\n    let g = m.lock().unwrap();\n    let v = *g;\n    drop(g);\n    tx.send(v).unwrap();\n}\n";
        assert!(lint(good, &[Check::LockDiscipline]).is_empty());

        let scoped = "fn f() {\n    {\n        let g = m.lock().unwrap();\n    }\n    tx.send(1).unwrap();\n}\n";
        assert!(lint(scoped, &[Check::LockDiscipline]).is_empty());
    }

    #[test]
    fn check_names_round_trip() {
        for c in Check::ALL {
            assert_eq!(Check::from_name(c.name()), Some(c));
        }
        assert_eq!(Check::from_name("nope"), None);
    }
}
