//! Syntax-level views on the lexed token stream: per-line stripped source
//! with `#[cfg(test)]` tagging, `lint:allow` suppression collection, and
//! per-function token slices for the dataflow analyses.

use std::collections::BTreeMap;

use crate::lexer::{Lexed, Tok, TokKind};
use crate::Check;

/// One physical line after lexical preprocessing, as consumed by the
/// line-oriented check families.
#[derive(Debug, Clone, Default)]
pub struct SourceLine {
    /// The line with string/char literals blanked and comments removed.
    pub code: String,
    /// Concatenated text of `//` and `/* */` comments on the line.
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` module or a
    /// `#[test]`-attributed region.
    pub in_test: bool,
}

/// Build the per-line view from the lexer output. Test-region tagging uses
/// brace depth over the stripped code — the lexer guarantees braces inside
/// strings, chars and comments are already gone.
pub fn source_lines(lexed: &Lexed) -> Vec<SourceLine> {
    let mut out = Vec::with_capacity(lexed.lines.len());
    let mut depth = 0usize;
    let mut test_region: Option<usize> = None;
    let mut awaiting_test_brace = false;
    for strip in &lexed.lines {
        let code = strip.code.clone();
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            awaiting_test_brace = true;
        }
        let line_started_in_test = test_region.is_some();
        let mut entered_region = false;
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if awaiting_test_brace && test_region.is_none() {
                        test_region = Some(depth);
                        awaiting_test_brace = false;
                        entered_region = true;
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some(d) = test_region {
                        if depth < d {
                            test_region = None;
                        }
                    }
                }
                _ => {}
            }
        }
        // `entered_region` covers one-line test fns whose region opens and
        // closes within the same physical line.
        let in_test =
            line_started_in_test || test_region.is_some() || awaiting_test_brace || entered_region;
        out.push(SourceLine { code, comment: strip.comment.clone(), in_test });
    }
    out
}

// ---------------------------------------------------------------------------
// Suppression comments.
// ---------------------------------------------------------------------------

/// Parsed `lint:allow` annotations for one file.
#[derive(Debug, Default)]
pub struct Allows {
    /// `(1-based target line, check)` pairs whose findings are suppressed,
    /// with the declared reason and the line the allow comment sits on.
    pub allowed: BTreeMap<(usize, Check), AllowSite>,
    /// Malformed allows (missing reason / unknown check), already phrased
    /// as violation messages.
    pub errors: Vec<(usize, String)>,
}

/// Where an allow was written and why.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// Line the `lint:allow` comment itself is on.
    pub comment_line: usize,
    /// The mandatory reason text.
    pub reason: String,
}

/// Extract `lint:allow(check): reason` annotations. A trailing allow
/// applies to its own line; a standalone comment line applies to the next
/// line that contains code. Doc comments are excluded: an allow inside
/// `///` or `//!` is documentation, not a live suppression.
pub fn collect_allows(lexed: &Lexed, lines: &[SourceLine]) -> Allows {
    let mut allows = Allows::default();
    for c in &lexed.comments {
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find("lint:allow(") else { continue };
        let lineno = c.line;
        let rest = &c.text[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            allows.errors.push((lineno, "malformed lint:allow (missing `)`)".to_string()));
            continue;
        };
        let name = &rest[..close];
        if name == Check::StaleSuppression.name() {
            allows.errors.push((
                lineno,
                "lint:allow(stale-suppression) is not allowed: fix or remove the stale allow"
                    .to_string(),
            ));
            continue;
        }
        let Some(check) = Check::from_name(name) else {
            allows.errors.push((lineno, format!("lint:allow names unknown check `{name}`")));
            continue;
        };
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            allows.errors.push((
                lineno,
                format!("lint:allow({name}) requires a reason: `// lint:allow({name}): <why>`"),
            ));
            continue;
        }
        // Standalone comment line: cover the next line with code.
        let own_line_has_code =
            lines.get(lineno - 1).map(|l| !l.code.trim().is_empty()).unwrap_or(false);
        let target = if own_line_has_code {
            lineno
        } else {
            lines
                .iter()
                .enumerate()
                .skip(lineno)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(j, _)| j + 1)
                .unwrap_or(lineno)
        };
        allows.allowed.insert(
            (target, check),
            AllowSite { comment_line: lineno, reason: reason.to_string() },
        );
    }
    allows
}

// ---------------------------------------------------------------------------
// Function extraction.
// ---------------------------------------------------------------------------

/// One `fn` item: its signature and body token slices.
#[derive(Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// `true` for plain `pub` (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// `true` inside `#[cfg(test)]` / under `#[test]`.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Tokens from `fn` to just before the body `{` (or the `;`).
    pub sig: Vec<Tok>,
    /// Body tokens including the outer braces (empty for declarations).
    pub body: Vec<Tok>,
}

/// Extract every function item from the token stream. Nested functions are
/// also returned (and their tokens additionally appear inside the enclosing
/// body — the dataflow analyses are conservative about that). `lines`
/// supplies the test tagging.
pub fn functions(lexed: &Lexed, lines: &[SourceLine]) -> Vec<FnItem> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn` as part of `fn` pointer types (`fn(` immediately) has no
        // name ident; skip it.
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let fn_line = toks[i].line;
        // Visibility: look back over `pub` / `pub(crate)` etc.
        let is_pub = is_plain_pub(toks, i);
        // Find the body `{` or declaration `;`, skipping delimited groups
        // (argument parens, where-clause bounds never contain top-level
        // `{` before the body).
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut body_open = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Open => {
                    if toks[j].text == "{" && depth == 0 {
                        body_open = Some(j);
                        break;
                    }
                    depth += 1;
                }
                TokKind::Close => depth = depth.saturating_sub(1),
                TokKind::Punct if toks[j].text == ";" && depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let sig_end = body_open.unwrap_or(j);
        let sig = toks[i..sig_end.min(toks.len())].to_vec();
        let body = match body_open {
            Some(open) => {
                let mut d = 0usize;
                let mut k = open;
                while k < toks.len() {
                    match toks[k].kind {
                        TokKind::Open if toks[k].text == "{" => d += 1,
                        TokKind::Close if toks[k].text == "}" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                toks[open..(k + 1).min(toks.len())].to_vec()
            }
            None => Vec::new(),
        };
        let in_test = lines.get(fn_line - 1).map(|l| l.in_test).unwrap_or(false);
        out.push(FnItem {
            name: name_tok.text.clone(),
            is_pub,
            in_test,
            line: fn_line,
            sig,
            body,
        });
        // Continue scanning from inside the signature so nested fns are
        // found too.
        i += 2;
    }
    out
}

/// `pub fn` but not `pub(crate) fn`: walk back over qualifiers.
fn is_plain_pub(toks: &[Tok], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("extern")
        {
            continue;
        }
        if t.kind == TokKind::Str {
            // `extern "C"` ABI string.
            continue;
        }
        if t.is_ident("pub") {
            // `pub(crate)`/`pub(super)` has `(` after pub — i.e. between
            // this token and what we already walked.
            return !matches!(toks.get(k + 1), Some(n) if n.text == "(");
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        let lexed = lex(src);
        let lines = source_lines(&lexed);
        functions(&lexed, &lines)
    }

    #[test]
    fn extracts_functions_with_bodies_and_visibility() {
        let src = "pub fn a(x: u32) -> u32 { x + 1 }\npub(crate) fn b() {}\nfn c();\n";
        let fs = fns(src);
        assert_eq!(fs.len(), 3);
        assert!(fs[0].is_pub && fs[0].name == "a" && !fs[0].body.is_empty());
        assert!(!fs[1].is_pub && fs[1].name == "b");
        assert!(fs[2].body.is_empty(), "declaration has no body");
    }

    #[test]
    fn where_clause_and_generics_do_not_break_body_detection() {
        let src = "fn g<T: Clone>(x: T) -> Vec<T>\nwhere\n    T: Send,\n{ vec![x] }\n";
        let fs = fns(src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].body.iter().any(|t| t.is_ident("vec")));
    }

    #[test]
    fn test_functions_are_tagged() {
        let src = "#[test]\nfn t() { let _ = 1; }\n\nfn hot() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let fs = fns(src);
        let by_name = |n: &str| fs.iter().find(|f| f.name == n).map(|f| f.in_test);
        assert_eq!(by_name("t"), Some(true));
        assert_eq!(by_name("hot"), Some(false));
        assert_eq!(by_name("helper"), Some(true));
    }

    #[test]
    fn doc_comment_allows_are_ignored() {
        let src = "//! example: // lint:allow(panic-freedom): docs only\nfn f() {}\n";
        let lexed = lex(src);
        let lines = source_lines(&lexed);
        let allows = collect_allows(&lexed, &lines);
        assert!(allows.allowed.is_empty());
        assert!(allows.errors.is_empty());
    }

    #[test]
    fn stale_suppression_cannot_be_allowed() {
        let src = "fn f() {} // lint:allow(stale-suppression): nope\n";
        let lexed = lex(src);
        let lines = source_lines(&lexed);
        let allows = collect_allows(&lexed, &lines);
        assert_eq!(allows.errors.len(), 1);
        assert!(allows.errors[0].1.contains("not allowed"));
    }
}
