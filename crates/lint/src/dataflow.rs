//! Intraprocedural dataflow analyses over the token stream.
//!
//! Two fact engines run per function body:
//!
//! * **Guard tracking** — models `MutexGuard`/`RwLockGuard` lifetimes
//!   through `let` / `if let` / `while let` / `match` bindings, nested
//!   blocks, explicit `drop()`, guard moves (`let g2 = g;`) and
//!   single-expression temporaries. It reports blocking rendezvous
//!   operations (`send`/`recv`/`recv_timeout`/zero-arg `join`) reached
//!   while any guard is live, re-acquisition of a lock already held
//!   (immediate self-deadlock for `std::sync::Mutex`), and emits the
//!   acquisition-order edges the global lock-order graph is built from.
//! * **Unit taint** — tags bindings carrying `Tokens`/`Blocks`/`Bytes`
//!   quantities (from parameter ascriptions, `let` ascriptions and
//!   constructors), follows raw escapes through `.get()` / `.0`, and
//!   reports cross-unit raw arithmetic plus `pub fn`s whose raw-integer
//!   return value is a laundered unit quantity.
//!
//! Both are line-agnostic: a binding and its use can be any number of
//! statements (or physical lines) apart — exactly the violations PR 2's
//! per-line lexical pass could not see.

use crate::lexer::{Tok, TokKind};
use crate::syntax::FnItem;

// ---------------------------------------------------------------------------
// Guard tracking.
// ---------------------------------------------------------------------------

/// How long an acquired guard lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuardScope {
    /// Bound by `let` at brace depth `d`: dies when that block closes.
    Block(usize),
    /// Temporary (no binding): dies at the end of the statement at depth
    /// `d` (next `;`, or the block close).
    Stmt(usize),
    /// Bound by `if let` / `while let` / `match`: becomes `Block` at the
    /// next `{`.
    Pending,
}

#[derive(Debug, Clone)]
struct Guard {
    /// Binding names that own this guard (aliases accumulate on moves).
    names: Vec<String>,
    /// Normalized lock path (`self.` stripped), e.g. `audit_state`.
    path: String,
    /// Line of the acquisition.
    line: usize,
    scope: GuardScope,
}

impl Guard {
    fn display_name(&self) -> &str {
        self.names.first().map(String::as_str).unwrap_or(&self.path)
    }
}

/// One acquisition-order fact: `acquired` was taken while `held` was live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub held: String,
    /// Lock acquired under it.
    pub acquired: String,
    /// Line of the inner acquisition.
    pub line: usize,
}

/// Guard-tracking results for one function.
#[derive(Debug, Default)]
pub struct LockFacts {
    /// `(line, message)` guard-lifetime violations (lock-discipline family).
    pub violations: Vec<(usize, String)>,
    /// `(line, message)` re-lock self-deadlocks (lock-order family).
    pub order_violations: Vec<(usize, String)>,
    /// Acquisition-order edges for the global lock-order graph.
    pub edges: Vec<LockEdge>,
}

const BLOCKING_CALLS: [&str; 4] = ["send", "recv", "recv_timeout", "recv_deadline"];

/// Run guard tracking over one function body.
pub fn lock_facts(f: &FnItem) -> LockFacts {
    let toks = &f.body;
    let mut facts = LockFacts::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Paren-group stack: `true` when the group is the argument list of a
    // blocking call (an acquisition inside it is held across the call).
    let mut arg_groups: Vec<bool> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Open if t.text == "{" => {
                depth += 1;
                for g in guards.iter_mut() {
                    if g.scope == GuardScope::Pending {
                        g.scope = GuardScope::Block(depth);
                    }
                }
            }
            TokKind::Close if t.text == "}" => {
                guards.retain(|g| {
                    !matches!(g.scope, GuardScope::Block(d) | GuardScope::Stmt(d) if d >= depth)
                });
                depth = depth.saturating_sub(1);
            }
            TokKind::Open => {
                arg_groups.push(false);
            }
            TokKind::Close => {
                arg_groups.pop();
            }
            TokKind::Punct if t.text == ";" => {
                guards.retain(|g| !matches!(g.scope, GuardScope::Stmt(d) if d >= depth));
            }
            // `drop(name)` ends a guard early.
            TokKind::Ident if t.text == "drop" => {
                if let (Some(open), Some(name), Some(close)) =
                    (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
                {
                    if open.text == "(" && close.text == ")" && name.kind == TokKind::Ident {
                        guards.retain(|g| !g.names.iter().any(|n| n == &name.text));
                    }
                }
            }
            // Guard move: `let g2 = g;` transfers ownership to `g2`.
            TokKind::Ident if t.text == "let" => {
                if let Some(renamed) = match_guard_move(toks, i, &guards) {
                    let (old, new) = renamed;
                    for g in guards.iter_mut() {
                        if g.names.iter().any(|n| n == &old) {
                            g.names.push(new.clone());
                        }
                    }
                }
            }
            TokKind::Punct if t.text == "." => {
                if let Some(call) = toks.get(i + 1).filter(|c| c.kind == TokKind::Ident) {
                    let open_paren =
                        toks.get(i + 2).map(|o| o.text == "(").unwrap_or(false);
                    let zero_arg =
                        open_paren && toks.get(i + 3).map(|c| c.text == ")").unwrap_or(false);
                    let is_blocking = open_paren
                        && (BLOCKING_CALLS.contains(&call.text.as_str())
                            || (call.text == "join" && zero_arg));
                    if is_blocking {
                        for g in &guards {
                            facts.violations.push((
                                call.line,
                                format!(
                                    "channel/thread blocking op while MutexGuard `{g}` is \
                                     live (acquired line {l}); drop the guard (narrow scope \
                                     or `drop({g})`) before blocking",
                                    g = g.display_name(),
                                    l = g.line
                                ),
                            ));
                        }
                        // Mark the argument group: a lock taken inside the
                        // arguments is held across the call itself.
                        if !zero_arg {
                            // The `(` will be pushed when we reach it; flag
                            // it via a lookahead marker instead.
                            arg_groups.push(true);
                            // Skip the `(` so it is not pushed twice.
                            i += 3;
                            continue;
                        }
                    }
                    if let Some(acq) = match_acquisition(toks, i) {
                        on_acquisition(toks, i, acq, depth, &mut guards, &mut facts, &arg_groups);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// `.lock()` always; `.read()` / `.write()` only when the receiver names a
/// lock (`*lock*` / `*rw*`) — plain `.read()`/`.write()` is usually IO.
fn match_acquisition(toks: &[Tok], dot: usize) -> Option<String> {
    let call = toks.get(dot + 1)?;
    let zero_arg = toks.get(dot + 2).map(|o| o.text == "(").unwrap_or(false)
        && toks.get(dot + 3).map(|c| c.text == ")").unwrap_or(false);
    if !zero_arg {
        return None;
    }
    let path = receiver_path(toks, dot);
    match call.text.as_str() {
        "lock" => Some(path),
        "read" | "write" => {
            let last = path.rsplit('.').next().unwrap_or(&path).to_ascii_lowercase();
            (last.contains("lock") || last.contains("rw")).then_some(path)
        }
        _ => None,
    }
}

/// The dotted path feeding a method call: walk back over `ident`, `.`,
/// `::` chains. `self.` is stripped so driver-side `audit_state.lock()`
/// and server-side `self.audit_state.lock()` name the same lock.
fn receiver_path(toks: &[Tok], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot;
    while k > 0 {
        let t = &toks[k - 1];
        match t.kind {
            TokKind::Ident => parts.push(t.text.clone()),
            TokKind::Punct if t.text == "." || t.text == ":" => {
                // Separators join; `::` arrives as two `:` puncts.
                if parts.is_empty() {
                    break;
                }
            }
            _ => break,
        }
        k -= 1;
    }
    parts.reverse();
    let mut path = parts.join(".");
    if let Some(stripped) = path.strip_prefix("self.") {
        path = stripped.to_string();
    }
    if path.is_empty() {
        path = "<expr>".to_string();
    }
    path
}

#[allow(clippy::too_many_arguments)]
fn on_acquisition(
    toks: &[Tok],
    dot: usize,
    path: String,
    depth: usize,
    guards: &mut Vec<Guard>,
    facts: &mut LockFacts,
    arg_groups: &[bool],
) {
    let line = toks[dot].line;
    // Lock-order edges + re-lock detection against every live guard.
    for g in guards.iter() {
        facts.edges.push(LockEdge { held: g.path.clone(), acquired: path.clone(), line });
        if g.path == path {
            facts.order_violations.push((
                line,
                format!(
                    "re-locks `{path}` while the guard from line {} is still live: \
                     std::sync::Mutex is not reentrant (self-deadlock)",
                    g.line
                ),
            ));
        }
    }
    if arg_groups.iter().any(|b| *b) {
        facts.violations.push((
            line,
            format!(
                "MutexGuard `{path}` acquired inside the arguments of a blocking \
                 channel/thread call: the guard is held across the rendezvous"
            ),
        ));
    }
    // Find the statement start and classify the binding.
    let mut start = dot;
    // Walk back past the receiver path first.
    while start > 0 {
        let t = &toks[start - 1];
        let boundary = t.text == ";"
            || (t.kind == TokKind::Open && t.text == "{")
            || (t.kind == TokKind::Close && t.text == "}");
        if boundary {
            break;
        }
        start -= 1;
    }
    let span = &toks[start..dot];
    let let_pos = span.iter().rposition(|t| t.is_ident("let"));
    let scoped = span.iter().any(|t| {
        t.is_ident("if") || t.is_ident("while") || t.is_ident("match") || t.is_ident("for")
    });
    match let_pos {
        Some(lp) => {
            // Pattern tokens between `let` and the `=`.
            let eq = span[lp..].iter().position(|t| t.text == "=").map(|p| p + lp);
            let pat = match eq {
                Some(e) => &span[lp + 1..e],
                None => &span[lp + 1..],
            };
            // `let v = *m.lock()...` copies the value out: the guard is a
            // statement temporary, not bound to `v`.
            let deref = eq
                .map(|e| span[e + 1..].iter().any(|t| t.text == "*"))
                .unwrap_or(false);
            if deref {
                guards.push(Guard {
                    names: Vec::new(),
                    path,
                    line,
                    scope: GuardScope::Stmt(depth),
                });
                return;
            }
            let names: Vec<String> = pat
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .filter(|t| !matches!(t.text.as_str(), "mut" | "ref" | "Ok" | "Some" | "Err"))
                .map(|t| t.text.clone())
                .collect();
            guards.push(Guard {
                names,
                path,
                line,
                scope: if scoped { GuardScope::Pending } else { GuardScope::Block(depth) },
            });
        }
        None if scoped => {
            // `match m.lock() { ... }`: guard borrowed for the whole group.
            guards.push(Guard { names: Vec::new(), path, line, scope: GuardScope::Pending });
        }
        None => {
            // Expression temporary: lives to the end of the statement.
            guards.push(Guard { names: Vec::new(), path, line, scope: GuardScope::Stmt(depth) });
        }
    }
}

/// `let new = old;` where `old` is a live guard: returns `(old, new)`.
fn match_guard_move(toks: &[Tok], let_idx: usize, guards: &[Guard]) -> Option<(String, String)> {
    let mut k = let_idx + 1;
    if toks.get(k).map(|t| t.is_ident("mut")).unwrap_or(false) {
        k += 1;
    }
    let new = toks.get(k).filter(|t| t.kind == TokKind::Ident)?;
    if !toks.get(k + 1).map(|t| t.text == "=").unwrap_or(false) {
        return None;
    }
    let old = toks.get(k + 2).filter(|t| t.kind == TokKind::Ident)?;
    if !toks.get(k + 3).map(|t| t.text == ";").unwrap_or(false) {
        return None;
    }
    guards
        .iter()
        .any(|g| g.names.iter().any(|n| n == &old.text))
        .then(|| (old.text.clone(), new.text.clone()))
}

// ---------------------------------------------------------------------------
// Unit taint.
// ---------------------------------------------------------------------------

const UNITS: [&str; 3] = ["Tokens", "Blocks", "Bytes"];

/// What a binding carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct UnitTag {
    /// Index into [`UNITS`].
    unit: usize,
    /// `true` when the binding holds the *raw* integer escaped via
    /// `.get()` / `.0`, not the newtype itself.
    raw: bool,
}

/// Run unit-taint analysis over one function; returns `(line, message)`
/// violations.
pub fn unit_taint(f: &FnItem) -> Vec<(usize, String)> {
    let mut tags: std::collections::BTreeMap<String, UnitTag> = std::collections::BTreeMap::new();
    let mut out = Vec::new();

    // Parameter ascriptions: `name: [&][mut] Unit`.
    let sig = &f.sig;
    for i in 0..sig.len() {
        if sig[i].kind != TokKind::Ident || !sig.get(i + 1).map(|t| t.text == ":").unwrap_or(false)
        {
            continue;
        }
        // Skip `::` path segments.
        if sig.get(i + 2).map(|t| t.text == ":").unwrap_or(false)
            || (i > 0 && sig[i - 1].text == ":")
        {
            continue;
        }
        let mut k = i + 2;
        while sig
            .get(k)
            .map(|t| t.text == "&" || t.is_ident("mut") || t.kind == TokKind::Lifetime)
            .unwrap_or(false)
        {
            k += 1;
        }
        if let Some(unit) = sig.get(k).and_then(|t| UNITS.iter().position(|u| t.is_ident(u))) {
            tags.insert(sig[i].text.clone(), UnitTag { unit, raw: false });
        }
    }

    let toks = &f.body;
    // Pass 1: `let` bindings (in statement order — forward propagation).
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            if let Some((name, tag)) = classify_let(toks, i, &tags) {
                tags.insert(name, tag);
            }
        }
        i += 1;
    }

    // Pass 2: cross-unit raw arithmetic.
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct || !(t.text == "+" || t.text == "-") {
            continue;
        }
        // Binary position: something value-like on the left, and not a
        // compound assignment / arrow on the right.
        let binary = i > 0
            && matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Int | TokKind::Float)
            || (i > 0 && toks[i - 1].kind == TokKind::Close);
        let next_eq = toks.get(i + 1).map(|n| n.text == "=" || n.text == ">").unwrap_or(false);
        if !binary || next_eq {
            continue;
        }
        let lhs = operand_unit_backward(toks, i, &tags);
        let rhs = operand_unit_forward(toks, i + 1, &tags);
        if let (Some(a), Some(b)) = (lhs, rhs) {
            if a != b {
                out.push((
                    t.line,
                    format!(
                        "cross-unit raw arithmetic: a {} count is {}ed with a {} count \
                         outside the sanctioned gllm-units conversions (to_blocks/\
                         full_blocks/to_tokens)",
                        UNITS[a],
                        if t.text == "+" { "add" } else { "subtract" },
                        UNITS[b]
                    ),
                ));
            }
        }
    }

    // Pass 3: pub fn returning a laundered raw unit.
    if f.is_pub && returns_raw_int(sig) {
        if let Some((line, unit)) = final_raw_escape(toks, &tags) {
            out.push((
                line,
                format!(
                    "`pub fn {}` returns a raw integer that is a {} quantity escaped via \
                     `.get()`/`.0`; return the {} newtype at public boundaries",
                    f.name, UNITS[unit], UNITS[unit]
                ),
            ));
        }
    }
    out
}

/// Classify `let [mut] name [: Ty] = rhs ;` for unit taint.
fn classify_let(
    toks: &[Tok],
    let_idx: usize,
    tags: &std::collections::BTreeMap<String, UnitTag>,
) -> Option<(String, UnitTag)> {
    let mut k = let_idx + 1;
    if toks.get(k).map(|t| t.is_ident("mut")).unwrap_or(false) {
        k += 1;
    }
    let name = toks.get(k).filter(|t| t.kind == TokKind::Ident)?.text.clone();
    k += 1;
    // Optional ascription `: Unit`.
    if toks.get(k).map(|t| t.text == ":").unwrap_or(false) {
        if let Some(unit) = toks.get(k + 1).and_then(|t| UNITS.iter().position(|u| t.is_ident(u)))
        {
            return Some((name, UnitTag { unit, raw: false }));
        }
        // Ascribed to something else: not a unit binding.
        while toks.get(k).map(|t| t.text != "=" && t.text != ";").unwrap_or(false) {
            k += 1;
        }
    }
    if !toks.get(k).map(|t| t.text == "=").unwrap_or(false) {
        return None;
    }
    let rhs = k + 1;
    // `let x = Unit(...)`.
    if let Some(unit) = toks.get(rhs).and_then(|t| UNITS.iter().position(|u| t.is_ident(u))) {
        if toks.get(rhs + 1).map(|t| t.text == "(").unwrap_or(false) {
            return Some((name, UnitTag { unit, raw: false }));
        }
    }
    // `let x = y;` / `let x = y.get()...;` / `let x = y.0;` with y tagged.
    let src = toks.get(rhs).filter(|t| t.kind == TokKind::Ident)?;
    let tag = tags.get(&src.text)?;
    let after = toks.get(rhs + 1)?;
    if after.text == ";" {
        return Some((name, *tag));
    }
    if after.text == "." && !tag.raw {
        let field = toks.get(rhs + 2)?;
        let escaped = (field.is_ident("get")
            && toks.get(rhs + 3).map(|t| t.text == "(").unwrap_or(false))
            || (field.kind == TokKind::Int && field.text == "0");
        if escaped {
            return Some((name, UnitTag { unit: tag.unit, raw: true }));
        }
    }
    None
}

/// Resolve the operand ending at `op_idx - 1`: `x.get()`, `x.0`, or a raw
/// tagged ident.
fn operand_unit_backward(
    toks: &[Tok],
    op_idx: usize,
    tags: &std::collections::BTreeMap<String, UnitTag>,
) -> Option<usize> {
    let prev = |n: usize| -> Option<&Tok> { op_idx.checked_sub(n).and_then(|k| toks.get(k)) };
    // `x . get ( )` ⇐
    if prev(1)?.text == ")"
        && prev(2)?.text == "("
        && prev(3)?.is_ident("get")
        && prev(4)?.text == "."
    {
        if let Some(x) = prev(5) {
            if x.kind == TokKind::Ident {
                return tags.get(&x.text).map(|t| t.unit);
            }
        }
        return None;
    }
    // `x . 0` ⇐
    if prev(1)?.kind == TokKind::Int && prev(1)?.text == "0" && prev(2)?.text == "." {
        if let Some(x) = prev(3) {
            if x.kind == TokKind::Ident {
                return tags.get(&x.text).map(|t| t.unit);
            }
        }
        return None;
    }
    // Raw tagged ident.
    let x = prev(1)?;
    if x.kind == TokKind::Ident {
        return tags.get(&x.text).filter(|t| t.raw).map(|t| t.unit);
    }
    None
}

/// Resolve the operand starting at `idx`: `x.get()`, `x.0`, or a raw
/// tagged ident.
fn operand_unit_forward(
    toks: &[Tok],
    idx: usize,
    tags: &std::collections::BTreeMap<String, UnitTag>,
) -> Option<usize> {
    let x = toks.get(idx)?;
    if x.kind != TokKind::Ident {
        return None;
    }
    let tag = tags.get(&x.text)?;
    let dot = toks.get(idx + 1);
    if dot.map(|t| t.text == ".").unwrap_or(false) {
        let field = toks.get(idx + 2)?;
        let escaped = (field.is_ident("get")
            && toks.get(idx + 3).map(|t| t.text == "(").unwrap_or(false))
            || (field.kind == TokKind::Int && field.text == "0");
        if escaped && !tag.raw {
            return Some(tag.unit);
        }
        return None;
    }
    tag.raw.then_some(tag.unit)
}

/// Does the signature return `usize` / `u64` (possibly nested in the type)?
fn returns_raw_int(sig: &[Tok]) -> bool {
    let Some(arrow) = sig
        .windows(2)
        .position(|w| matches!(w, [a, b] if a.text == "-" && b.text == ">"))
    else {
        return false;
    };
    sig[arrow + 2..].iter().any(|t| t.is_ident("usize") || t.is_ident("u64"))
}

/// The function's final expression (or an explicit `return`) when it is a
/// raw unit escape: returns `(line, unit)`.
fn final_raw_escape(
    toks: &[Tok],
    tags: &std::collections::BTreeMap<String, UnitTag>,
) -> Option<(usize, usize)> {
    // Explicit `return x.get();` / `return x.0;` / `return raw;` anywhere.
    for i in 0..toks.len() {
        if toks[i].is_ident("return") {
            if let Some(unit) = operand_unit_forward(toks, i + 1, tags) {
                // Must be the whole expression: next meaningful token ends
                // the statement.
                return Some((toks[i].line, unit));
            }
        }
    }
    // Trailing expression: tokens between the last `;`/`{` and the final
    // `}`.
    if toks.len() < 2 {
        return None;
    }
    let end = toks.len() - 1; // final `}`
    let mut start = end;
    while start > 0 {
        let t = &toks[start - 1];
        if t.text == ";" || (t.kind == TokKind::Open && t.text == "{") {
            break;
        }
        start -= 1;
    }
    let tail = &toks[start..end];
    match tail {
        // `x.get()` / `x.0`
        [x, dot, field, open, close]
            if x.kind == TokKind::Ident
                && dot.text == "."
                && field.is_ident("get")
                && open.text == "("
                && close.text == ")" =>
        {
            tags.get(&x.text).filter(|t| !t.raw).map(|t| (x.line, t.unit))
        }
        [x, dot, field]
            if x.kind == TokKind::Ident
                && dot.text == "."
                && field.kind == TokKind::Int
                && field.text == "0" =>
        {
            tags.get(&x.text).filter(|t| !t.raw).map(|t| (x.line, t.unit))
        }
        [x] if x.kind == TokKind::Ident => {
            tags.get(&x.text).filter(|t| t.raw).map(|t| (x.line, t.unit))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::{functions, source_lines};

    fn first_fn(src: &str) -> FnItem {
        let lexed = lex(src);
        let lines = source_lines(&lexed);
        functions(&lexed, &lines).into_iter().next().expect("one fn")
    }

    #[test]
    fn multiline_binding_is_tracked_across_statements() {
        let src = "fn f() {\n    let guard = state\n        .lock()\n        .unwrap();\n    let x = *guard;\n    let v = rx.recv().unwrap();\n    let _ = (x, v);\n}\n";
        let facts = lock_facts(&first_fn(src));
        assert_eq!(facts.violations.len(), 1, "{:?}", facts.violations);
        assert_eq!(facts.violations[0].0, 6);
        assert!(facts.violations[0].1.contains("MutexGuard `guard` is live"));
    }

    #[test]
    fn guard_move_keeps_the_lock_live() {
        let src = "fn f() {\n    let g = m.lock().unwrap();\n    let g2 = g;\n    tx.send(1).unwrap();\n}\n";
        let facts = lock_facts(&first_fn(src));
        assert_eq!(facts.violations.len(), 1, "{:?}", facts.violations);
    }

    #[test]
    fn if_let_guard_dies_with_its_block() {
        let src = "fn f() {\n    if let Ok(mut g) = m.lock() {\n        *g += 1;\n    }\n    tx.send(1).unwrap();\n}\n";
        let facts = lock_facts(&first_fn(src));
        assert!(facts.violations.is_empty(), "{:?}", facts.violations);
    }

    #[test]
    fn relock_of_the_same_mutex_is_a_self_deadlock() {
        let src = "fn f() {\n    let a = m.lock().unwrap();\n    let b = m.lock().unwrap();\n    let _ = (a, b);\n}\n";
        let facts = lock_facts(&first_fn(src));
        assert_eq!(facts.order_violations.len(), 1);
        assert!(facts.order_violations[0].1.contains("re-locks"));
    }

    #[test]
    fn acquisition_order_edges_are_emitted() {
        let src = "fn f() {\n    let a = alpha.lock().unwrap();\n    let b = beta.lock().unwrap();\n    let _ = (a, b);\n}\n";
        let facts = lock_facts(&first_fn(src));
        assert_eq!(
            facts.edges,
            vec![LockEdge { held: "alpha".into(), acquired: "beta".into(), line: 3 }]
        );
    }

    #[test]
    fn cross_unit_raw_arithmetic_is_flagged() {
        let src = "fn f(t: Tokens, b: Blocks) -> usize {\n    let traw = t.get();\n    let braw = b.get();\n    traw + braw\n}\n";
        let v = unit_taint(&first_fn(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].1.contains("cross-unit"));
    }

    #[test]
    fn same_unit_arithmetic_is_fine() {
        let src = "fn f(a: Tokens, b: Tokens) -> usize {\n    a.get() + b.get()\n}\n";
        let v = unit_taint(&first_fn(src));
        // Same unit: no mixing. (The raw-return rule needs a *binding*;
        // a computed sum is plain local arithmetic.)
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pub_fn_returning_laundered_raw_is_flagged() {
        let src = "pub fn capacity(t: Tokens) -> usize {\n    t.get()\n}\n";
        let v = unit_taint(&first_fn(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].1.contains("pub fn capacity"));
    }
}
