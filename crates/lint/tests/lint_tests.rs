//! Fixture tests for the gllm-lint check families, plus the tier-1 gate:
//! the workspace itself must be lint-clean.
//!
//! Each known-bad fixture asserts an *exact* violation count so a silently
//! weakened check fails loudly; each known-good fixture asserts zero.

use std::path::{Path, PathBuf};

use gllm_lint::{check_vendor_hygiene, lint_rust_source, lint_workspace, Check, Violation};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str, checks: &[Check]) -> Vec<Violation> {
    let contents = std::fs::read_to_string(fixture_dir().join(name)).expect("fixture exists");
    lint_rust_source(Path::new(name), &contents, checks)
}

#[test]
fn unit_confusion_fixtures() {
    let bad = lint_fixture("unit_confusion_bad.rs", &[Check::UnitConfusion]);
    assert_eq!(bad.len(), 4, "{bad:#?}");
    assert!(bad.iter().all(|v| v.check == Check::UnitConfusion));
    // One return-type finding, three raw-param findings.
    assert_eq!(bad.iter().filter(|v| v.message.contains("returns a raw integer")).count(), 1);
    assert_eq!(bad.iter().filter(|v| v.message.contains("as a raw integer")).count(), 3);

    let good = lint_fixture("unit_confusion_good.rs", &[Check::UnitConfusion]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn panic_freedom_fixtures() {
    let bad = lint_fixture("panic_freedom_bad.rs", &[Check::PanicFreedom]);
    assert_eq!(bad.len(), 4, "{bad:#?}");
    for label in ["unwrap()", "expect()", "panic!", "literal index"] {
        assert!(
            bad.iter().any(|v| v.message.contains(label)),
            "missing `{label}` finding in {bad:#?}"
        );
    }

    let good = lint_fixture("panic_freedom_good.rs", &[Check::PanicFreedom]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn sim_determinism_fixtures() {
    let bad = lint_fixture("sim_determinism_bad.rs", &[Check::SimDeterminism]);
    assert_eq!(bad.len(), 5, "{bad:#?}");
    for needle in ["Instant::now", "HashMap", "thread_rng", "thread::spawn"] {
        assert!(
            bad.iter().any(|v| v.message.contains(needle)),
            "missing `{needle}` finding in {bad:#?}"
        );
    }

    let good = lint_fixture("sim_determinism_good.rs", &[Check::SimDeterminism]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn thread_spawn_is_sanctioned_only_in_the_sweep_module() {
    let src = "pub fn fan() {\n    let h = std::thread::spawn(|| 1u64);\n    h.join().ok();\n}\n";
    // Anywhere else in the sim plane: flagged.
    let elsewhere = lint_rust_source(
        Path::new("crates/sim/src/engine.rs"),
        src,
        &[Check::SimDeterminism],
    );
    assert_eq!(elsewhere.len(), 1, "{elsewhere:#?}");
    assert!(elsewhere[0].message.contains("thread::spawn"));
    // In the sanctioned index-merged worker pool: allowed.
    let sanctioned = lint_rust_source(
        Path::new("crates/sim/src/sweep.rs"),
        src,
        &[Check::SimDeterminism],
    );
    assert!(sanctioned.is_empty(), "{sanctioned:#?}");
}

#[test]
fn lock_discipline_fixtures() {
    let bad = lint_fixture("lock_discipline_bad.rs", &[Check::LockDiscipline]);
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad.iter().all(|v| v.message.contains("MutexGuard `g` is live")));

    let good = lint_fixture("lock_discipline_good.rs", &[Check::LockDiscipline]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn suppression_semantics() {
    let v = lint_fixture("suppression.rs", &[Check::PanicFreedom]);
    // Two expects are allowed (trailing + standalone form). The reasonless
    // allow suppresses nothing AND is flagged; the unknown check is flagged.
    assert_eq!(v.len(), 3, "{v:#?}");
    assert_eq!(v.iter().filter(|v| v.message.contains("expect()")).count(), 1);
    assert_eq!(v.iter().filter(|v| v.message.contains("requires a reason")).count(), 1);
    assert_eq!(v.iter().filter(|v| v.message.contains("unknown check")).count(), 1);
}

#[test]
fn vendor_hygiene_fixtures() {
    let good = check_vendor_hygiene(&fixture_dir().join("vendor_good"));
    assert!(good.is_empty(), "{good:#?}");

    let bad = check_vendor_hygiene(&fixture_dir().join("vendor_bad"));
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad.iter().any(|v| v.message.contains("no shim crate")));
    assert!(bad.iter().any(|v| v.message.contains("no vendor/README.md entry")));
}

// ---------------------------------------------------------------------------
// v2 dataflow families.
// ---------------------------------------------------------------------------

#[test]
fn lock_order_fixtures() {
    let bad = lint_fixture("lock_order_bad.rs", &[Check::LockOrder]);
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad.iter().all(|v| v.check == Check::LockOrder));
    assert_eq!(bad.iter().filter(|v| v.message.contains("lock-order cycle")).count(), 1);
    assert_eq!(bad.iter().filter(|v| v.message.contains("re-locks")).count(), 1);

    let good = lint_fixture("lock_order_good.rs", &[Check::LockOrder]);
    assert!(good.is_empty(), "{good:#?}");
}

/// The seeded multi-statement guard-across-recv case from the issue: the
/// v2 dataflow engine must catch what the v1 lexical check provably could
/// not see.
#[test]
fn multiline_guard_across_recv_is_caught_and_was_invisible_to_v1() {
    let contents = std::fs::read_to_string(fixture_dir().join("guard_multiline_bad.rs"))
        .expect("fixture exists");

    // v2: exactly one lock-discipline finding, at the blocking recv.
    let v = lint_rust_source(
        Path::new("guard_multiline_bad.rs"),
        &contents,
        &[Check::LockDiscipline],
    );
    assert_eq!(v.len(), 1, "{v:#?}");
    assert!(v[0].message.contains("MutexGuard `guard` is live"));
    assert!(contents.lines().nth(v[0].line - 1).unwrap_or("").contains(".recv()"));

    // v1's guard registration required `let` and `.lock()` on one physical
    // line (see PR 2's `lock_binding_name`). No line of this fixture
    // satisfies that precondition, so the old check tracked no guard at
    // all — the violation was invisible by construction.
    assert!(
        !contents.lines().any(|l| l.contains("let ") && l.contains(".lock()")),
        "fixture must keep the binding split across lines"
    );
}

#[test]
fn newtype_escape_fixtures() {
    let bad = lint_fixture("newtype_escape_bad.rs", &[Check::NewtypeEscape]);
    assert_eq!(bad.len(), 3, "{bad:#?}");
    assert!(bad.iter().all(|v| v.check == Check::NewtypeEscape));
    assert_eq!(bad.iter().filter(|v| v.message.contains("cross-unit")).count(), 2);
    assert_eq!(bad.iter().filter(|v| v.message.contains("pub fn laundered")).count(), 1);

    let good = lint_fixture("newtype_escape_good.rs", &[Check::NewtypeEscape]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn float_determinism_fixtures() {
    let bad = lint_fixture("float_determinism_bad.rs", &[Check::FloatDeterminism]);
    assert_eq!(bad.len(), 3, "{bad:#?}");
    assert_eq!(bad.iter().filter(|v| v.message.contains("total_cmp")).count(), 2);
    assert_eq!(bad.iter().filter(|v| v.message.contains("NaN")).count(), 3);

    let good = lint_fixture("float_determinism_good.rs", &[Check::FloatDeterminism]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn stale_suppression_fixtures() {
    let v = lint_fixture(
        "stale_suppression.rs",
        &[Check::PanicFreedom, Check::SimDeterminism, Check::StaleSuppression],
    );
    assert_eq!(v.len(), 2, "{v:#?}");
    assert!(v.iter().all(|f| f.check == Check::StaleSuppression));
    assert!(v.iter().all(|f| f.message.contains("stale suppression")));
}

#[test]
fn sarif_output_for_a_fixture_names_rules_and_locations() {
    let bad = lint_fixture("lock_order_bad.rs", &[Check::LockOrder]);
    let doc = gllm_lint::sarif::to_sarif(&bad);
    assert!(doc.contains("\"version\": \"2.1.0\""));
    assert!(doc.contains("\"ruleId\": \"lock-order\""));
    assert!(doc.contains("lock_order_bad.rs"));
}

/// Regression for the runtime guard-scope fixes (narrowed audit critical
/// sections in the driver, poison-recovering `audit_snapshot` in the
/// server): the real runtime sources must stay clean under the v2 lock
/// dataflow families specifically, not just the aggregate workspace gate.
#[test]
fn runtime_sources_pass_lock_dataflow_checks() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    for name in ["driver.rs", "server.rs", "worker.rs"] {
        let rel = Path::new("crates/runtime/src").join(name);
        let contents = std::fs::read_to_string(root.join(&rel)).expect("runtime source exists");
        let v = lint_rust_source(&rel, &contents, &[Check::LockDiscipline, Check::LockOrder]);
        assert!(v.is_empty(), "{name} regressed on lock dataflow checks: {v:#?}");
    }
}

/// Tier-1 gate: the workspace this crate lives in must be lint-clean. This
/// is what keeps the five static invariants enforced going forward — any
/// new violation (or reasonless suppression) fails `cargo test`.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let violations = lint_workspace(&root);
    assert!(
        violations.is_empty(),
        "gllm-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}
