//! Fixture tests for the gllm-lint check families, plus the tier-1 gate:
//! the workspace itself must be lint-clean.
//!
//! Each known-bad fixture asserts an *exact* violation count so a silently
//! weakened check fails loudly; each known-good fixture asserts zero.

use std::path::{Path, PathBuf};

use gllm_lint::{check_vendor_hygiene, lint_rust_source, lint_workspace, Check, Violation};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str, checks: &[Check]) -> Vec<Violation> {
    let contents = std::fs::read_to_string(fixture_dir().join(name)).expect("fixture exists");
    lint_rust_source(Path::new(name), &contents, checks)
}

#[test]
fn unit_confusion_fixtures() {
    let bad = lint_fixture("unit_confusion_bad.rs", &[Check::UnitConfusion]);
    assert_eq!(bad.len(), 4, "{bad:#?}");
    assert!(bad.iter().all(|v| v.check == Check::UnitConfusion));
    // One return-type finding, three raw-param findings.
    assert_eq!(bad.iter().filter(|v| v.message.contains("returns a raw integer")).count(), 1);
    assert_eq!(bad.iter().filter(|v| v.message.contains("as a raw integer")).count(), 3);

    let good = lint_fixture("unit_confusion_good.rs", &[Check::UnitConfusion]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn panic_freedom_fixtures() {
    let bad = lint_fixture("panic_freedom_bad.rs", &[Check::PanicFreedom]);
    assert_eq!(bad.len(), 4, "{bad:#?}");
    for label in ["unwrap()", "expect()", "panic!", "literal index"] {
        assert!(
            bad.iter().any(|v| v.message.contains(label)),
            "missing `{label}` finding in {bad:#?}"
        );
    }

    let good = lint_fixture("panic_freedom_good.rs", &[Check::PanicFreedom]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn sim_determinism_fixtures() {
    let bad = lint_fixture("sim_determinism_bad.rs", &[Check::SimDeterminism]);
    assert_eq!(bad.len(), 5, "{bad:#?}");
    for needle in ["Instant::now", "HashMap", "thread_rng", "thread::spawn"] {
        assert!(
            bad.iter().any(|v| v.message.contains(needle)),
            "missing `{needle}` finding in {bad:#?}"
        );
    }

    let good = lint_fixture("sim_determinism_good.rs", &[Check::SimDeterminism]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn thread_spawn_is_sanctioned_only_in_the_sweep_module() {
    let src = "pub fn fan() {\n    let h = std::thread::spawn(|| 1u64);\n    h.join().ok();\n}\n";
    // Anywhere else in the sim plane: flagged.
    let elsewhere = lint_rust_source(
        Path::new("crates/sim/src/engine.rs"),
        src,
        &[Check::SimDeterminism],
    );
    assert_eq!(elsewhere.len(), 1, "{elsewhere:#?}");
    assert!(elsewhere[0].message.contains("thread::spawn"));
    // In the sanctioned index-merged worker pool: allowed.
    let sanctioned = lint_rust_source(
        Path::new("crates/sim/src/sweep.rs"),
        src,
        &[Check::SimDeterminism],
    );
    assert!(sanctioned.is_empty(), "{sanctioned:#?}");
}

#[test]
fn lock_discipline_fixtures() {
    let bad = lint_fixture("lock_discipline_bad.rs", &[Check::LockDiscipline]);
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad.iter().all(|v| v.message.contains("MutexGuard `g` is live")));

    let good = lint_fixture("lock_discipline_good.rs", &[Check::LockDiscipline]);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn suppression_semantics() {
    let v = lint_fixture("suppression.rs", &[Check::PanicFreedom]);
    // Two expects are allowed (trailing + standalone form). The reasonless
    // allow suppresses nothing AND is flagged; the unknown check is flagged.
    assert_eq!(v.len(), 3, "{v:#?}");
    assert_eq!(v.iter().filter(|v| v.message.contains("expect()")).count(), 1);
    assert_eq!(v.iter().filter(|v| v.message.contains("requires a reason")).count(), 1);
    assert_eq!(v.iter().filter(|v| v.message.contains("unknown check")).count(), 1);
}

#[test]
fn vendor_hygiene_fixtures() {
    let good = check_vendor_hygiene(&fixture_dir().join("vendor_good"));
    assert!(good.is_empty(), "{good:#?}");

    let bad = check_vendor_hygiene(&fixture_dir().join("vendor_bad"));
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad.iter().any(|v| v.message.contains("no shim crate")));
    assert!(bad.iter().any(|v| v.message.contains("no vendor/README.md entry")));
}

/// Tier-1 gate: the workspace this crate lives in must be lint-clean. This
/// is what keeps the five static invariants enforced going forward — any
/// new violation (or reasonless suppression) fails `cargo test`.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let violations = lint_workspace(&root);
    assert!(
        violations.is_empty(),
        "gllm-lint found {} violation(s):\n{}",
        violations.len(),
        violations.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}
