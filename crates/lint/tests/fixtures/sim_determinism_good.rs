//! Fixture: sim-determinism clean. Expected violations: 0.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn step(seed: u64) -> BTreeMap<u64, u64> {
    // virtual time and a seeded RNG: replays bit-identically
    let _rng = StdRng::seed_from_u64(seed);
    let mut m = BTreeMap::new();
    m.insert(0, seed);
    m
}
