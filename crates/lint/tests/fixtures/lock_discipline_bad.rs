//! Fixture: lock-discipline. Expected violations: 2.

use std::sync::mpsc::Sender;
use std::sync::Mutex;
use std::thread::JoinHandle;

pub fn relay(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = tx.send(*g); // violation: guard `g` live across send
}

pub fn wait(m: &Mutex<u32>, h: JoinHandle<()>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (*g, h.join()); // violation: guard `g` live across join
}
