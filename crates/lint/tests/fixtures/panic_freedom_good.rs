//! Fixture: panic-freedom clean. Expected violations: 0.

pub fn hot(xs: &[u32]) -> Option<u32> {
    // asserts are allowed: they document invariants
    assert!(xs.len() < 1_000_000, "bounded batch");
    let a = xs.first()?;
    let b = xs.get(1).copied().unwrap_or(0);
    Some(a + b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let xs = [1u32, 2];
        assert_eq!(xs[0], 1);
        Some(1).unwrap();
        if false {
            panic!("fine in tests");
        }
    }
}
