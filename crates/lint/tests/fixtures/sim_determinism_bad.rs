//! Fixture: sim-determinism. Expected violations: 5.

use std::collections::HashMap; // violation: HashMap

pub fn step() -> u128 {
    let t = std::time::Instant::now(); // violation: Instant::now
    let mut m: HashMap<u64, u64> = HashMap::new(); // violation: HashMap (once per line)
    m.insert(0, rand::thread_rng().gen()); // violation: thread_rng
    let h = std::thread::spawn(|| 1u64); // violation: thread::spawn
    h.join().ok();
    t.elapsed().as_nanos()
}
