//! Fixture: panic-freedom. Expected violations: 4.

pub fn hot(xs: &[u32]) -> u32 {
    let a = xs.first().unwrap(); // violation: unwrap()
    let b = maybe().expect("present"); // violation: expect()
    if xs.is_empty() {
        panic!("empty"); // violation: panic!
    }
    a + b + xs[0] // violation: literal index
}

fn maybe() -> Option<u32> {
    Some(1)
}
