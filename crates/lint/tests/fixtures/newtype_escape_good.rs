//! Fixture: sanctioned unit handling — same-unit arithmetic re-wrapped in
//! the newtype, newtypes crossing pub boundaries intact, and raw escapes
//! confined to private helpers. Expected: 0 newtype-escape findings.

use gllm_units::Tokens;

pub fn same_unit(a: Tokens, b: Tokens) -> Tokens {
    Tokens(a.get() + b.get())
}

pub fn newtype_boundary(capacity: Tokens) -> Tokens {
    capacity
}

fn private_raw(capacity: Tokens) -> usize {
    capacity.get()
}

pub fn uses_private(capacity: Tokens) -> bool {
    private_raw(capacity) > 0
}
