//! Fixture: raw unit escapes that mix units or cross pub boundaries.
//! Expected: exactly 3 newtype-escape findings (two cross-unit additions,
//! one laundered pub return).

use gllm_units::{Blocks, Bytes, Tokens};

pub fn mix(tokens: Tokens, blocks: Blocks) -> usize {
    let t = tokens.get();
    let b = blocks.get();
    t + b
}

pub fn laundered(capacity: Tokens) -> usize {
    capacity.get()
}

pub fn tuple_escape(blocks: Blocks, bytes: Bytes) -> usize {
    blocks.0 + bytes.0
}
