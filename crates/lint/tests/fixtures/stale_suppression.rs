//! Fixture: suppression liveness. One allow still suppresses a finding
//! (kept), one targets code that no longer panics (stale), and one names a
//! family that never fired on its line (stale). Expected: exactly 2
//! stale-suppression findings.

pub fn live() -> u32 {
    let x: Option<u32> = Some(1);
    x.expect("present above") // lint:allow(panic-freedom): constructed as Some on the previous line
}

// lint:allow(panic-freedom): nothing panicky on the next line any more
pub fn stale() -> u32 {
    41 + 1
}

pub fn wrong_family() -> u32 {
    2 // lint:allow(sim-determinism): this line never had a determinism finding
}
