//! Fixture: the seeded multi-statement guard-across-recv case. The v1
//! lexical check required `let` and `.lock()` on the *same physical line*
//! to register a guard, so this builder-style binding was invisible to it.
//! The v2 dataflow engine tracks the binding across lines and statements.
//! Expected: exactly 1 lock-discipline finding, at the `recv` line.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(state: &Mutex<u64>, rx: &Receiver<u64>) -> u64 {
    let guard = state
        .lock()
        .unwrap();
    let bias = *guard + 1;
    let v = rx.recv().unwrap();
    bias + v
}
