//! Fixture: unit-confusion clean. Expected violations: 0.

use gllm_units::{Blocks, Tokens};

pub struct Cache;

impl Cache {
    // quantities cross the public boundary as newtypes
    pub fn append(&mut self, seq: u64, tokens: Tokens) {
        let _ = (seq, tokens);
    }

    pub fn block_size(&self) -> Tokens {
        Tokens(16)
    }

    // crate-private fns may use raw ints internally
    pub(crate) fn fill(&mut self, tokens: usize) {
        let _ = tokens;
    }

    // not unit-named: a raw count of sequences is fine
    pub fn num_seqs(&self) -> usize {
        0
    }

    pub fn free_blocks(&self) -> Blocks {
        Blocks(0)
    }
}
