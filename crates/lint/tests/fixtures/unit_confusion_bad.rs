//! Fixture: unit-confusion. Expected violations: 4.
//! (never compiled — consumed as text by lint_tests.rs)

pub struct Cache;

impl Cache {
    // param `tokens: usize` -> violation
    pub fn append(&mut self, seq: u64, tokens: usize) {
        let _ = (seq, tokens);
    }

    // unit-named accessor returning a raw int -> violation
    pub fn block_size(&self) -> usize {
        16
    }
}

// both hinted params raw -> 2 violations
pub fn reserve(num_blocks: usize, kv_free_tokens: u64) -> bool {
    num_blocks > 0 && kv_free_tokens > 0
}
