//! Fixture: suppression semantics. Expected violations: 3.

pub fn f(a: Option<u32>, b: Option<u32>, c: Option<u32>) -> u32 {
    let x = a.expect("non-empty"); // lint:allow(panic-freedom): fixture — trailing allow with reason
    // lint:allow(panic-freedom): fixture — standalone allow covers the next code line
    let y = b.expect("non-empty");
    let z = c.expect("flagged"); // lint:allow(panic-freedom)
    x + y + z // lint:allow(made-up): reason present but check unknown
}
