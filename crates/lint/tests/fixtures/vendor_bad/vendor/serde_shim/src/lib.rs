//! Fixture shim crate (never compiled); missing from the README on purpose.
