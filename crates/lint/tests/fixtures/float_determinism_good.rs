//! Fixture: total, NaN-safe float ordering. Expected: 0 float-determinism
//! findings.

pub fn p50(xs: &mut Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let mid = xs.len() / 2;
    xs.get(mid).copied().unwrap_or(0.0)
}

pub fn less(a: f64, b: f64) -> bool {
    a.total_cmp(&b) == std::cmp::Ordering::Less
}
