//! Fixture: lock-discipline clean. Expected violations: 0.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn relay_scoped(m: &Mutex<u32>, tx: &Sender<u32>) {
    let v = {
        let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g
    };
    let _ = tx.send(v);
}

pub fn relay_dropped(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let v = *g;
    drop(g);
    let _ = tx.send(v);
}
