//! Fixture shim crate (never compiled).
