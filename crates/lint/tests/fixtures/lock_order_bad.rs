//! Fixture: a lock-order cycle between two mutexes plus a re-lock
//! self-deadlock. Expected: exactly 2 lock-order findings (one cycle
//! report, one re-lock report).

use std::sync::Mutex;

pub struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

pub fn forward(s: &Shared) -> u32 {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    *a + *b
}

pub fn backward(s: &Shared) -> u32 {
    let b = s.beta.lock().unwrap();
    let a = s.alpha.lock().unwrap();
    *a + *b
}

pub fn relock(s: &Shared) -> u32 {
    let first = s.alpha.lock().unwrap();
    let again = s.alpha.lock().unwrap();
    *first + *again
}
