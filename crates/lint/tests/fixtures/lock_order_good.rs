//! Fixture: consistent acquisition order (alpha before beta everywhere)
//! and re-acquisition only after the first guard is dropped. Expected: 0
//! lock-order findings.

use std::sync::Mutex;

pub struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

pub fn one(s: &Shared) -> u32 {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    *a + *b
}

pub fn two(s: &Shared) -> u32 {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    *a * *b
}

pub fn sequential(s: &Shared) -> u32 {
    let first = *s.alpha.lock().unwrap();
    let second = *s.alpha.lock().unwrap();
    first + second
}
