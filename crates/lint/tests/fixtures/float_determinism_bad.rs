//! Fixture: partial f64 orders and NaN injection. Expected: exactly 3
//! float-determinism findings (two `.partial_cmp(` calls, one NaN
//! literal).

pub fn p50(xs: &mut Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    xs.get(mid).copied().unwrap_or(0.0)
}

pub fn poison() -> f64 {
    f64::NAN
}

pub fn less(a: f64, b: f64) -> bool {
    matches!(a.partial_cmp(&b), Some(std::cmp::Ordering::Less))
}
