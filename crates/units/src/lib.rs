//! Unit-of-measure newtypes for the scheduler/allocator boundary.
//!
//! PR 1's headline bug was a token-vs-block confusion: `TokenThrottle::plan`
//! reserved KV headroom at token granularity while `BlockAllocator` accounts
//! in blocks, and nothing in the type system objected. These newtypes make
//! that class of bug unrepresentable at the public interfaces of
//! `gllm-core` and `gllm-kvcache`: a [`Tokens`] cannot be added to a
//! [`Blocks`], and the *only* sanctioned conversions between them are
//! [`Tokens::to_blocks`] / [`Tokens::full_blocks`] / [`Blocks::to_tokens`],
//! which all demand the block size explicitly.
//!
//! Design rules (enforced by `gllm-lint`'s `unit-confusion` check):
//! - Public scheduler/allocator functions and struct fields whose names
//!   mention tokens/blocks/bytes carry the corresponding newtype, never a
//!   raw integer.
//! - The wrapped value is reachable via `.0` or [`Tokens::get`] for local
//!   arithmetic (loop counts, indexing), but quantities crossing a public
//!   interface go back in the newtype.
//! - Arithmetic between like units is provided (`+`, `-`, `+=`, `-=`,
//!   `sum()`, `min`/`max` via `Ord`); arithmetic across units is a compile
//!   error by construction.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $suffix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0);

            /// Construct from a raw count.
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }

            /// The raw count, for local arithmetic and indexing.
            pub const fn get(self) -> $repr {
                self.0
            }

            /// `true` when the quantity is zero.
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Saturating same-unit subtraction (never underflows).
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Same-unit checked subtraction.
            pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
                match self.0.checked_sub(rhs.0) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// The smaller of two quantities.
            pub fn min(self, rhs: Self) -> Self {
                Self(self.0.min(rhs.0))
            }

            /// The larger of two quantities.
            pub fn max(self, rhs: Self) -> Self {
                Self(self.0.max(rhs.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }
    };
}

unit_newtype!(
    /// A count of tokens (prompt positions, KV slots, budget units).
    Tokens,
    usize,
    "tok"
);

unit_newtype!(
    /// A count of KV-cache blocks (allocator granularity).
    Blocks,
    usize,
    "blk"
);

unit_newtype!(
    /// A count of bytes (weights, activations, link transfers).
    Bytes,
    u64,
    "B"
);

impl Tokens {
    /// Blocks needed to hold this many tokens: the **only** sanctioned
    /// token→block conversion (ceiling division by the block size).
    ///
    /// Callers must pass the allocator's block size explicitly — there is
    /// deliberately no global or default block size to mis-assume.
    pub fn to_blocks(self, block_size: Tokens) -> Blocks {
        Blocks(self.0.div_ceil(block_size.0.max(1)))
    }

    /// Fully occupied blocks at this token count (floor division); used by
    /// prefix forking, which may only share *complete* blocks.
    pub fn full_blocks(self, block_size: Tokens) -> Blocks {
        Blocks(self.0 / block_size.0.max(1))
    }
}

impl Blocks {
    /// Token capacity of this many blocks: the sanctioned block→token
    /// conversion (exact multiplication by the block size).
    pub fn to_tokens(self, block_size: Tokens) -> Tokens {
        Tokens(self.0 * block_size.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_block_round_trips_respect_block_size() {
        let bs = Tokens(16);
        assert_eq!(Tokens(0).to_blocks(bs), Blocks(0));
        assert_eq!(Tokens(1).to_blocks(bs), Blocks(1));
        assert_eq!(Tokens(16).to_blocks(bs), Blocks(1));
        assert_eq!(Tokens(17).to_blocks(bs), Blocks(2));
        assert_eq!(Tokens(17).full_blocks(bs), Blocks(1));
        assert_eq!(Blocks(3).to_tokens(bs), Tokens(48));
    }

    #[test]
    fn arithmetic_stays_within_one_unit() {
        let a = Tokens(10) + Tokens(5) - Tokens(3);
        assert_eq!(a, Tokens(12));
        assert_eq!(Tokens(3).saturating_sub(Tokens(9)), Tokens::ZERO);
        assert_eq!(Tokens(3).checked_sub(Tokens(9)), None);
        let total: Tokens = [Tokens(1), Tokens(2), Tokens(3)].into_iter().sum();
        assert_eq!(total, Tokens(6));
        let mut b = Blocks(4);
        b += Blocks(2);
        b -= Blocks(1);
        assert_eq!(b, Blocks(5));
        assert_eq!(Tokens(7).min(Tokens(4)), Tokens(4));
        assert_eq!(Tokens(7).max(Tokens(4)), Tokens(7));
    }

    #[test]
    fn display_carries_the_unit_suffix() {
        assert_eq!(Tokens(5).to_string(), "5tok");
        assert_eq!(Blocks(2).to_string(), "2blk");
        assert_eq!(Bytes(1024).to_string(), "1024B");
    }

    #[test]
    fn serde_round_trip_is_transparent_enough() {
        use serde::Serialize as _;
        let v = Tokens(42).to_value();
        let back = <Tokens as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(back, Tokens(42));
    }

    #[test]
    fn degenerate_block_size_does_not_divide_by_zero() {
        assert_eq!(Tokens(5).to_blocks(Tokens(0)), Blocks(5));
        assert_eq!(Tokens(5).full_blocks(Tokens(0)), Blocks(5));
    }
}
