//! Presets for every system in the paper's evaluation (§4.1 "Schemes").

use gllm_core::batch_level::BatchLevelPolicy;
use gllm_kvcache::Tokens;
use gllm_core::orca::OrcaPolicy;
use gllm_core::sarathi::SarathiServe;
use gllm_core::td_pipe::TdPipe;
use gllm_core::throttle::{ThrottleConfig, TokenThrottle};
use gllm_core::SchedulePolicy;
use serde::{Deserialize, Serialize};

use crate::runtime_model::RuntimeModel;

/// Which parallelism strategy the system deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Inter-layer (one stage per GPU) — vLLM and gLLM.
    Pipeline,
    /// Intra-layer (all GPUs per batch) — SGLang.
    Tensor,
}

/// Constructible description of a scheduling policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// gLLM's Token Throttling with the given hyper-parameters.
    Throttle(ThrottleConfig),
    /// Sarathi-Serve's fixed-budget hybrid batching.
    Sarathi {
        /// Fixed token budget (paper: 2048).
        token_budget: usize,
    },
    /// Orca-style whole-prompt iteration-level scheduling.
    Orca {
        /// New prompts admitted per iteration.
        max_new_prompts: usize,
    },
    /// FasterTransformer-style run-to-completion batching.
    BatchLevel {
        /// Sequences per admitted batch.
        batch_size: usize,
    },
    /// TD-Pipe's temporal prefill/decode disaggregation.
    TdPipe {
        /// Prefill-phase token budget per batch.
        prefill_batch_tokens: usize,
        /// Decode population that triggers the decode phase.
        high_watermark: usize,
        /// Decode population that releases back to prefill.
        low_watermark: usize,
    },
}

impl PolicyKind {
    /// Instantiate the policy object.
    pub fn build(&self) -> Box<dyn SchedulePolicy> {
        match self {
            PolicyKind::Throttle(cfg) => Box::new(TokenThrottle::new(*cfg)),
            PolicyKind::Sarathi { token_budget } => Box::new(SarathiServe::new(Tokens(*token_budget))),
            PolicyKind::Orca { max_new_prompts } => {
                Box::new(OrcaPolicy { max_new_prompts: *max_new_prompts })
            }
            PolicyKind::BatchLevel { batch_size } => {
                Box::new(BatchLevelPolicy { batch_size: *batch_size })
            }
            PolicyKind::TdPipe { prefill_batch_tokens, high_watermark, low_watermark } => {
                Box::new(TdPipe::new(Tokens(*prefill_batch_tokens), *high_watermark, *low_watermark))
            }
        }
    }
}

/// A complete system under test: policy + parallelism + runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Display name used in bench rows (matches the paper's legends).
    pub name: String,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Parallelism strategy.
    pub parallelism: Parallelism,
    /// Runtime overhead model.
    pub runtime: RuntimeModel,
    /// Chunked pipeline parallelism (intra-request chunk overlap, §3.4).
    #[serde(default)]
    pub cpp: bool,
}

impl SystemConfig {
    /// gLLM: Token Throttling on the asynchronous runtime (paper defaults
    /// `#T = 8`, `#MaxP = 2048`, `#MinP = 32`, `KV_thresh = 0.05`).
    pub fn gllm() -> Self {
        Self::gllm_with(ThrottleConfig::default())
    }

    /// gLLM with custom throttle hyper-parameters (sensitivity study).
    pub fn gllm_with(cfg: ThrottleConfig) -> Self {
        Self {
            name: "gLLM".into(),
            policy: PolicyKind::Throttle(cfg),
            parallelism: Parallelism::Pipeline,
            runtime: RuntimeModel::gllm(),
            cpp: false,
        }
    }

    /// gLLM with chunked pipeline parallelism enabled (intra-request chunk
    /// overlap across stages; §3.4 lists CPP among the integrated
    /// optimizations).
    pub fn gllm_cpp() -> Self {
        Self {
            name: "gLLM+CPP".into(),
            cpp: true,
            ..Self::gllm()
        }
    }

    /// Ablation: gLLM without WT (§3.1.1 disabled).
    pub fn gllm_without_wt() -> Self {
        Self {
            name: "gLLM w/o WT".into(),
            policy: PolicyKind::Throttle(ThrottleConfig::default().without_wt()),
            ..Self::gllm()
        }
    }

    /// Ablation: gLLM without UT (§3.1.2 disabled).
    pub fn gllm_without_ut() -> Self {
        Self {
            name: "gLLM w/o UT".into(),
            policy: PolicyKind::Throttle(ThrottleConfig::default().without_ut()),
            ..Self::gllm()
        }
    }

    /// Ablation: gLLM runtime with Sarathi-Serve's coupled scheduling
    /// policy (the paper's `gLLM w/ CK`, isolating the runtime's benefit).
    pub fn gllm_with_ck() -> Self {
        Self {
            name: "gLLM w/ CK".into(),
            policy: PolicyKind::Sarathi { token_budget: 2048 },
            ..Self::gllm()
        }
    }

    /// vLLM: Sarathi scheduling (budget 2048) on the coupled runtime,
    /// pipeline parallelism.
    pub fn vllm() -> Self {
        Self {
            name: "vLLM".into(),
            policy: PolicyKind::Sarathi { token_budget: 2048 },
            parallelism: Parallelism::Pipeline,
            runtime: RuntimeModel::vllm(),
            cpp: false,
        }
    }

    /// SGLang: Sarathi scheduling (chunk 2048, mixed mode) on tensor
    /// parallelism with its lighter runtime.
    pub fn sglang() -> Self {
        Self {
            name: "SGLang".into(),
            policy: PolicyKind::Sarathi { token_budget: 2048 },
            parallelism: Parallelism::Tensor,
            runtime: RuntimeModel::sglang(),
            cpp: false,
        }
    }

    /// Historical baseline: Orca-style iteration-level scheduling on the
    /// coupled runtime.
    pub fn orca() -> Self {
        Self {
            name: "Orca".into(),
            policy: PolicyKind::Orca { max_new_prompts: 4 },
            parallelism: Parallelism::Pipeline,
            runtime: RuntimeModel::vllm(),
            cpp: false,
        }
    }

    /// TD-Pipe: temporally-disaggregated pipeline parallelism on the
    /// asynchronous runtime (§2.4's offline-throughput alternative).
    pub fn td_pipe() -> Self {
        Self {
            name: "TD-Pipe".into(),
            policy: PolicyKind::TdPipe {
                prefill_batch_tokens: 2048,
                high_watermark: 256,
                low_watermark: 64,
            },
            parallelism: Parallelism::Pipeline,
            runtime: RuntimeModel::gllm(),
            cpp: false,
        }
    }

    /// Historical baseline: FasterTransformer-style batch-level scheduling.
    pub fn faster_transformer() -> Self {
        Self {
            name: "FasterTransformer".into(),
            policy: PolicyKind::BatchLevel { batch_size: 32 },
            parallelism: Parallelism::Pipeline,
            runtime: RuntimeModel::vllm(),
            cpp: false,
        }
    }

    /// The paper's three main schemes (Figs. 10, 12, 13).
    pub fn paper_main() -> Vec<Self> {
        vec![Self::vllm(), Self::sglang(), Self::gllm()]
    }

    /// The paper's ablation schemes (Fig. 15).
    pub fn paper_ablation() -> Vec<Self> {
        vec![
            Self::gllm(),
            Self::gllm_without_wt(),
            Self::gllm_without_ut(),
            Self::gllm_with_ck(),
            Self::vllm(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_build_with_expected_names() {
        assert_eq!(SystemConfig::gllm().policy.build().name(), "gLLM");
        assert_eq!(SystemConfig::vllm().policy.build().name(), "Sarathi-Serve");
        assert_eq!(SystemConfig::gllm_without_wt().policy.build().name(), "gLLM w/o WT");
        assert_eq!(SystemConfig::orca().policy.build().name(), "Orca");
        assert_eq!(
            SystemConfig::faster_transformer().policy.build().name(),
            "FasterTransformer"
        );
    }

    #[test]
    fn parallelism_assignment_matches_paper() {
        assert_eq!(SystemConfig::gllm().parallelism, Parallelism::Pipeline);
        assert_eq!(SystemConfig::vllm().parallelism, Parallelism::Pipeline);
        assert_eq!(SystemConfig::sglang().parallelism, Parallelism::Tensor);
    }

    #[test]
    fn ck_variant_pairs_sarathi_policy_with_gllm_runtime() {
        let ck = SystemConfig::gllm_with_ck();
        assert!(matches!(ck.policy, PolicyKind::Sarathi { token_budget: 2048 }));
        assert!(!ck.runtime.coupled_input_prep);
    }

    #[test]
    fn preset_lists_have_expected_sizes() {
        assert_eq!(SystemConfig::paper_main().len(), 3);
        assert_eq!(SystemConfig::paper_ablation().len(), 5);
    }
}
