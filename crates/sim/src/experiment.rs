//! One-call experiment driver: trace + system + deployment → results.

use gllm_metrics::{AuditReport, MetricsRecorder, PipelineTrace, ServingReport, SloSpec, TokenTrace};
use gllm_model::CostModel;
use gllm_workload::Trace;

use crate::deployment::Deployment;
use crate::engine::{EngineConfig, ExecutionModel, SimEngine};
use crate::systems::{Parallelism, SystemConfig};

/// Everything one simulation produced.
#[derive(Debug)]
pub struct RunResult {
    /// System under test (display name).
    pub system: String,
    /// Aggregated serving metrics.
    pub report: ServingReport,
    /// Raw per-request timelines (for SLO sweeps).
    pub recorder: MetricsRecorder,
    /// Per-iteration batched token composition.
    pub token_trace: TokenTrace,
    /// Windowed GPU utilisation `(window_start_s, utilisation)`.
    pub utilization_series: Vec<(f64, f64)>,
    /// Mean GPU utilisation over the makespan.
    pub mean_utilization: f64,
    /// Virtual end time.
    pub end_time_s: f64,
    /// Micro-batches scheduled.
    pub sched_iterations: usize,
    /// KV preemption events.
    pub preemptions: u64,
    /// Requests rejected as unservable.
    pub aborted: usize,
    /// Structured per-batch pipeline events (empty unless
    /// [`EngineConfig::record_pipeline_trace`] was set).
    pub pipeline_trace: PipelineTrace,
    /// Invariant-audit report (None when [`EngineConfig::audit`] is off).
    pub audit: Option<AuditReport>,
}

impl RunResult {
    /// SLO attainment under `slo` for this run.
    pub fn slo_attainment(&self, slo: SloSpec) -> f64 {
        ServingReport::slo_attainment(&self.recorder, slo)
    }
}

/// Build the execution model a system uses on a deployment, after letting
/// `tweak` adjust the cost model (attention-term ablations, MoE variance).
pub fn execution_model_with(
    system: &SystemConfig,
    deployment: &Deployment,
    tweak: &dyn Fn(&mut CostModel),
) -> ExecutionModel {
    let mut cost = CostModel::new(deployment.model.clone(), deployment.cluster.gpu.clone());
    tweak(&mut cost);
    match system.parallelism {
        Parallelism::Pipeline => ExecutionModel::Pipeline {
            cost,
            partition: deployment.partition(),
            link: deployment.cluster.link.clone(),
        },
        Parallelism::Tensor => ExecutionModel::Tensor {
            cost,
            tp: deployment.cluster.num_gpus,
            link: deployment.cluster.link.clone(),
        },
    }
}

/// Build the execution model a system uses on a deployment.
pub fn execution_model(system: &SystemConfig, deployment: &Deployment) -> ExecutionModel {
    execution_model_with(system, deployment, &|_| {})
}

/// KV blocks available to a system on a deployment.
pub fn kv_blocks(system: &SystemConfig, deployment: &Deployment) -> usize {
    let tokens = match system.parallelism {
        Parallelism::Pipeline => deployment.pp_kv_tokens(),
        Parallelism::Tensor => deployment.tp_kv_tokens(),
    };
    deployment.kv_blocks(tokens)
}

/// Replay `trace` on `system`/`deployment` and reduce the results.
pub fn run_experiment(
    trace: &Trace,
    system: &SystemConfig,
    deployment: &Deployment,
    cfg: &EngineConfig,
) -> RunResult {
    run_experiment_with(trace, system, deployment, cfg, &|_| {})
}

/// [`run_experiment`] with a cost-model hook (used by ablation benches to
/// inject MoE variance or strip the quadratic attention term).
pub fn run_experiment_with(
    trace: &Trace,
    system: &SystemConfig,
    deployment: &Deployment,
    cfg: &EngineConfig,
    tweak: &dyn Fn(&mut CostModel),
) -> RunResult {
    let policy = system.policy.build();
    let exec = execution_model_with(system, deployment, tweak);
    // The engine borrows its config; only materialise a copy when the
    // system's CPP setting actually disagrees with the caller's config.
    let cpp_override;
    let engine_cfg = if cfg.enable_cpp == system.cpp {
        cfg
    } else {
        cpp_override = EngineConfig { enable_cpp: system.cpp, ..cfg.clone() };
        &cpp_override
    };
    let engine = SimEngine::new(
        trace,
        policy.as_ref(),
        exec,
        system.runtime.clone(),
        kv_blocks(system, deployment),
        deployment.block_size,
        deployment.max_seqs_per_batch,
        engine_cfg,
    );
    let out = engine.run();
    if let Some(audit) = &out.audit {
        audit.assert_clean(&format!("sim:{}", system.name));
    }
    let report = ServingReport::from_recorder(&out.recorder);
    let horizon = out.end_time_s.max(f64::MIN_POSITIVE);
    // The windowed series is only materialised when busy intervals were
    // recorded — an O(intervals × windows) reduction that sweeps skip.
    let utilization_series = if cfg.record_utilization {
        out.busy.utilization_series(horizon, horizon / 64.0)
    } else {
        Vec::new()
    };
    RunResult {
        system: system.name.clone(),
        report,
        utilization_series,
        mean_utilization: out.busy.mean_utilization(horizon),
        recorder: out.recorder,
        token_trace: out.token_trace,
        end_time_s: out.end_time_s,
        sched_iterations: out.sched_iterations,
        preemptions: out.preemptions,
        aborted: out.aborted,
        pipeline_trace: out.trace,
        audit: out.audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_model::{ClusterSpec, ModelConfig};
    use gllm_workload::Dataset;

    fn deployment() -> Deployment {
        Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4))
    }

    #[test]
    fn all_paper_systems_complete_a_small_online_trace() {
        let trace = Trace::paper_online(Dataset::ShareGpt, 1.0, 11);
        for sys in SystemConfig::paper_main() {
            let r = run_experiment(&trace, &sys, &deployment(), &EngineConfig::default());
            assert_eq!(
                r.report.finished_requests,
                trace.len(),
                "{} left work behind",
                sys.name
            );
            assert!(r.report.throughput_tok_s > 0.0);
            assert!(r.mean_utilization > 0.0);
        }
    }

    #[test]
    fn gllm_beats_vllm_on_throughput_at_saturating_rate() {
        // The headline claim, in miniature: at a rate near saturation the
        // throttled pipeline sustains more tokens/s than the Sarathi one.
        let trace = Trace::paper_online(Dataset::ShareGpt, 8.0, 5);
        let d = deployment();
        let g = run_experiment(&trace, &SystemConfig::gllm(), &d, &EngineConfig::default());
        let v = run_experiment(&trace, &SystemConfig::vllm(), &d, &EngineConfig::default());
        assert!(
            g.report.throughput_tok_s > v.report.throughput_tok_s,
            "gLLM {} vs vLLM {}",
            g.report.throughput_tok_s,
            v.report.throughput_tok_s
        );
    }

    #[test]
    fn tensor_parallelism_wins_at_low_rate_intra_node() {
        // §4.2 point (5): SGLang achieves lower latency under low request
        // rates with fast interconnects.
        let trace = Trace::paper_online(Dataset::ShareGpt, 0.25, 2);
        let d = deployment();
        let s = run_experiment(&trace, &SystemConfig::sglang(), &d, &EngineConfig::default());
        let g = run_experiment(&trace, &SystemConfig::gllm(), &d, &EngineConfig::default());
        assert!(
            s.report.mean_e2el_s < g.report.mean_e2el_s,
            "SGLang {} vs gLLM {}",
            s.report.mean_e2el_s,
            g.report.mean_e2el_s
        );
    }

    #[test]
    fn cost_memoization_does_not_change_any_metric() {
        // The stage-time cache must replay the exact f64 the first
        // evaluation produced, so every downstream metric is bit-identical
        // with memoization on or off.
        let trace = Trace::paper_online(Dataset::ShareGpt, 4.0, 7);
        let d = deployment();
        let on = EngineConfig { memoize_costs: true, ..EngineConfig::default() };
        let off = EngineConfig { memoize_costs: false, ..EngineConfig::default() };
        for sys in SystemConfig::paper_main() {
            let a = run_experiment(&trace, &sys, &d, &on);
            let b = run_experiment(&trace, &sys, &d, &off);
            assert_eq!(
                a.end_time_s.to_bits(),
                b.end_time_s.to_bits(),
                "{}: end time diverged under memoization",
                sys.name
            );
            assert_eq!(a.report, b.report, "{}: report diverged", sys.name);
            assert_eq!(a.sched_iterations, b.sched_iterations);
            assert_eq!(a.preemptions, b.preemptions);
        }
    }

    #[test]
    fn fast_scheduler_paths_are_bit_identical_to_legacy() {
        // The optimized pool paths (direct map-walk view, O(1) live count,
        // single-probe KV admission) must schedule the exact same batches
        // as the legacy paths — the perf harness's baseline is only honest
        // if the two are interchangeable.
        let trace = Trace::paper_online(Dataset::ShareGpt, 4.0, 11);
        let d = deployment();
        let fast = EngineConfig { fast_scheduler: true, ..EngineConfig::default() };
        let legacy = EngineConfig { fast_scheduler: false, ..EngineConfig::default() };
        for sys in SystemConfig::paper_main() {
            let a = run_experiment(&trace, &sys, &d, &fast);
            let b = run_experiment(&trace, &sys, &d, &legacy);
            assert_eq!(
                a.end_time_s.to_bits(),
                b.end_time_s.to_bits(),
                "{}: end time diverged under the fast scheduler",
                sys.name
            );
            assert_eq!(a.report, b.report, "{}: report diverged", sys.name);
            assert_eq!(a.sched_iterations, b.sched_iterations);
            assert_eq!(a.preemptions, b.preemptions);
        }
    }

    #[test]
    fn utilization_series_is_skipped_when_recording_is_off() {
        let trace = Trace::paper_online(Dataset::ShareGpt, 1.0, 3);
        let d = deployment();
        let quiet = EngineConfig { record_utilization: false, ..EngineConfig::default() };
        let r = run_experiment(&trace, &SystemConfig::gllm(), &d, &quiet);
        assert!(r.utilization_series.is_empty());
        // Recording is a pure observer: the simulated outcome is unchanged.
        let loud = run_experiment(&trace, &SystemConfig::gllm(), &d, &EngineConfig::default());
        assert_eq!(r.end_time_s.to_bits(), loud.end_time_s.to_bits());
        assert_eq!(r.report, loud.report);
        assert!(!loud.utilization_series.is_empty());
    }

    #[test]
    fn cross_node_collapses_tensor_parallelism() {
        // §4.2 point (5), cross-node half: on the slow network TP pays per
        // layer and loses badly.
        let model = ModelConfig::qwen2_5_32b();
        let d = Deployment::new(model, ClusterSpec::cross_node_a100(4));
        let trace = Trace::paper_online(Dataset::ShareGpt, 1.0, 13);
        let s = run_experiment(&trace, &SystemConfig::sglang(), &d, &EngineConfig::default());
        let g = run_experiment(&trace, &SystemConfig::gllm(), &d, &EngineConfig::default());
        assert!(g.report.mean_e2el_s < s.report.mean_e2el_s);
    }
}
