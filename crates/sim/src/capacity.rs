//! Maximum-throughput search (the paper's scalability methodology, §4.3:
//! "incrementally increasing request rates until system throughput
//! stabilizes").

use gllm_workload::{ArrivalProcess, Dataset, Trace};

use crate::deployment::Deployment;
use crate::engine::EngineConfig;
use crate::experiment::run_experiment;
use crate::systems::SystemConfig;

/// Result of a max-throughput search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityResult {
    /// Best sustained throughput observed (input+output tokens/s).
    pub max_throughput_tok_s: f64,
    /// Request rate at which it was achieved.
    pub at_rate: f64,
}

/// Escalate the request rate geometrically until throughput stops improving
/// by more than `plateau_tol` (relative), then report the best observed.
///
/// `base_rate` seeds the ladder; the workload and seed are fixed per step
/// so different systems face paired workloads at each rate.
pub fn max_throughput(
    system: &SystemConfig,
    deployment: &Deployment,
    dataset: Dataset,
    base_rate: f64,
    seed: u64,
) -> CapacityResult {
    let cfg = EngineConfig {
        record_token_trace: false,
        record_utilization: false,
        ..EngineConfig::default()
    };
    max_throughput_with(system, deployment, dataset, base_rate, seed, &cfg)
}

/// [`max_throughput`] under an explicit engine config (the perf harness
/// uses this to time the search with hot-path optimizations disabled).
pub fn max_throughput_with(
    system: &SystemConfig,
    deployment: &Deployment,
    dataset: Dataset,
    base_rate: f64,
    seed: u64,
    cfg: &EngineConfig,
) -> CapacityResult {
    let plateau_tol = 0.03;
    let mut best = CapacityResult { max_throughput_tok_s: 0.0, at_rate: base_rate };
    let mut rate = base_rate;
    let mut flat_steps = 0;
    // A 64 s send window (half the paper's 128 s) keeps the search cheap;
    // the plateau *location* depends on the rate, not the window length.
    let window_s = 64.0;
    for _ in 0..8 {
        let trace =
            Trace::synthesize(dataset, ArrivalProcess::Poisson { rate }, window_s, 0, seed);
        let result = run_experiment(&trace, system, deployment, cfg);
        let tput = result.report.throughput_tok_s;
        if tput_improves(tput, best.max_throughput_tok_s, plateau_tol) {
            best = CapacityResult { max_throughput_tok_s: tput, at_rate: rate };
            flat_steps = 0;
        } else {
            flat_steps += 1;
            if tput > best.max_throughput_tok_s {
                best = CapacityResult { max_throughput_tok_s: tput, at_rate: rate };
            }
            if flat_steps >= 2 {
                break;
            }
        }
        rate *= 1.6;
    }
    best
}

fn tput_improves(new: f64, best: f64, tol: f64) -> bool {
    new > best * (1.0 + tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_model::{ClusterSpec, ModelConfig};

    #[test]
    fn search_finds_a_positive_plateau() {
        let d = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
        let cap = max_throughput(&SystemConfig::gllm(), &d, Dataset::ShareGpt, 1.0, 3);
        assert!(cap.max_throughput_tok_s > 100.0);
        assert!(cap.at_rate >= 1.0);
    }

    #[test]
    fn more_gpus_give_more_capacity() {
        let model = ModelConfig::qwen2_5_14b();
        let d2 = Deployment::new(model.clone(), ClusterSpec::intra_node_l20(2));
        let d4 = Deployment::new(model, ClusterSpec::intra_node_l20(4));
        let c2 = max_throughput(&SystemConfig::gllm(), &d2, Dataset::ShareGpt, 2.0, 3);
        let c4 = max_throughput(&SystemConfig::gllm(), &d4, Dataset::ShareGpt, 2.0, 3);
        assert!(
            c4.max_throughput_tok_s > c2.max_throughput_tok_s * 1.3,
            "2 GPUs {} vs 4 GPUs {}",
            c2.max_throughput_tok_s,
            c4.max_throughput_tok_s
        );
    }
}
