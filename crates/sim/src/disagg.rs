//! Prefill/decode-disaggregated serving (Splitwise / DistServe style).
//!
//! The architecture the paper discusses as the main alternative (§1, §2):
//! prefill and decode run on *separate* GPU groups connected by KV-cache
//! transmission. Each request prefills on the prefill cluster (emitting its
//! first token), ships its KV cache across the interconnect, then decodes
//! on the decode cluster. This eliminates prefill/decode interference by
//! construction — at the cost the paper calls out: the GPU ratio between
//! the two groups must be chosen in advance, and a mismatch with the
//! workload's prefill:decode balance strands capacity on one side. The
//! `abl_disaggregation` bench quantifies exactly that sensitivity against
//! unified gLLM.
//!
//! Implementation: two pipeline groups driven by one deterministic event
//! queue. The prefill side runs Sarathi-style pure-prefill batching (there
//! are never decodes there); the decode side runs gLLM's Eq. 4 decode
//! spreading (DistServe's decode instances also batch aggressively).
//! Decode-side preemptions recompute on the decode cluster, as real
//! disaggregated systems do when the decode side runs out of KV.

use std::collections::{BTreeMap, VecDeque};

use gllm_core::sarathi::SarathiServe;
use gllm_core::throttle::TokenThrottle;
use gllm_core::{admit, BatchPlan, RequestPool, SchedulePolicy};
use gllm_kvcache::{KvCacheManager, Tokens};
use gllm_metrics::{BusyTracker, MetricsRecorder, TokenTrace};
use gllm_model::{BatchWorkload, CostModel, PipelinePartition, SequenceChunk};
use gllm_workload::Trace;

use crate::deployment::Deployment;
use crate::engine::{EngineConfig, ExecutionModel, SimOutput};
use crate::event::EventQueue;
use crate::runtime_model::RuntimeModel;

/// GPU split of a disaggregated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisaggConfig {
    /// GPUs dedicated to prefill (pipeline depth of the prefill group).
    pub prefill_gpus: usize,
    /// GPUs dedicated to decode (pipeline depth of the decode group).
    pub decode_gpus: usize,
}

impl DisaggConfig {
    /// Display name like `"Disagg 1P:3D"`.
    pub fn name(&self) -> String {
        format!("Disagg {}P:{}D", self.prefill_gpus, self.decode_gpus)
    }
}

#[derive(Debug, Clone, Copy)]
enum DEvent {
    Arrival { trace_index: usize },
    StageDone { side: usize, batch: u64, stage: usize },
    BatchReady { side: usize, batch: u64, stage: usize },
    TransferDone { seq: u64 },
}

#[derive(Debug, Clone)]
struct InFlightBatch {
    plan: BatchPlan,
    workload: BatchWorkload,
    sampled: usize,
    num_seqs: usize,
}

struct PipeSide {
    exec: ExecutionModel,
    policy: Box<dyn SchedulePolicy>,
    pool: RequestPool,
    kv: KvCacheManager,
    stage_busy: Vec<Option<u64>>,
    stage_queue: Vec<VecDeque<u64>>,
    batches: BTreeMap<u64, InFlightBatch>,
    in_flight: usize,
    gpu_offset: usize,
}

const PREFILL: usize = 0;
const DECODE: usize = 1;

/// Run `trace` on a disaggregated deployment of `deployment.model` over
/// `deployment.cluster`'s GPU type/link, split per `cfg`.
pub fn simulate_disaggregated(
    trace: &Trace,
    deployment: &Deployment,
    cfg: DisaggConfig,
    engine_cfg: &EngineConfig,
) -> SimOutput {
    assert!(cfg.prefill_gpus >= 1 && cfg.decode_gpus >= 1);
    assert_eq!(
        cfg.prefill_gpus + cfg.decode_gpus,
        deployment.cluster.num_gpus,
        "split must use the whole cluster"
    );
    let model = &deployment.model;
    let runtime = RuntimeModel::gllm();

    let make_side = |gpus: usize, policy: Box<dyn SchedulePolicy>, offset: usize| {
        let partition = PipelinePartition::even(model.num_layers, gpus);
        let mut cluster = deployment.cluster.clone();
        cluster.num_gpus = gpus;
        let kv_tokens = cluster.pp_kv_token_capacity(model, &partition);
        let exec = ExecutionModel::Pipeline {
            cost: CostModel::new(model.clone(), cluster.gpu.clone()),
            partition,
            link: cluster.link.clone(),
        };
        let stages = exec.stage_count();
        PipeSide {
            exec,
            policy,
            pool: RequestPool::new(deployment.max_seqs_per_batch),
            kv: KvCacheManager::from_token_capacity(
                Tokens(kv_tokens.max(1)),
                Tokens(deployment.block_size),
            ),
            stage_busy: vec![None; stages],
            stage_queue: vec![VecDeque::new(); stages],
            batches: BTreeMap::new(),
            in_flight: 0,
            gpu_offset: offset,
        }
    };

    let mut sides = [
        make_side(cfg.prefill_gpus, Box::<SarathiServe>::default(), 0),
        make_side(cfg.decode_gpus, Box::<TokenThrottle>::default(), cfg.prefill_gpus),
    ];

    // Request book-keeping: (prompt_len, max_output) by id, and the KV
    // transfer cost between the clusters.
    let req_info: BTreeMap<u64, (usize, usize)> = trace
        .requests
        .iter()
        .map(|r| (r.id, (r.prompt_len, r.output_len)))
        .collect();
    let kv_bytes_per_token = model.kv_bytes_per_token();

    let mut events: EventQueue<DEvent> = EventQueue::new();
    for (i, r) in trace.requests.iter().enumerate() {
        events.push(r.arrival_s, DEvent::Arrival { trace_index: i });
    }

    let mut recorder = MetricsRecorder::new();
    let mut token_trace = TokenTrace::new();
    let mut busy = BusyTracker::new(deployment.cluster.num_gpus);
    let mut pending_admits: VecDeque<u64> = VecDeque::new();
    let mut clock = 0.0f64;
    let mut next_batch = 0u64;
    let mut sched_iterations = 0usize;
    let mut preemptions = 0u64;
    let mut aborted = 0usize;

    // --- helpers as closures are borrow-hostile; use macros-by-fn style ---
    #[allow(clippy::too_many_arguments)]
    fn start_stage(
        side: &mut PipeSide,
        runtime: &RuntimeModel,
        events: &mut EventQueue<DEvent>,
        busy: &mut BusyTracker,
        record_util: bool,
        side_idx: usize,
        batch: u64,
        stage: usize,
        t: f64,
    ) {
        let b = &side.batches[&batch];
        let dur = side.exec.stage_time(stage, &b.workload, b.sampled)
            + runtime.stage_overhead(b.num_seqs);
        side.stage_busy[stage] = Some(batch);
        if record_util {
            busy.record(side.gpu_offset + stage, t, t + dur);
        }
        events.push(t + dur, DEvent::StageDone { side: side_idx, batch, stage });
    }

    #[allow(clippy::too_many_arguments)]
    fn try_schedule(
        side: &mut PipeSide,
        runtime: &RuntimeModel,
        events: &mut EventQueue<DEvent>,
        busy: &mut BusyTracker,
        recorder: &mut MetricsRecorder,
        token_trace: &mut TokenTrace,
        engine_cfg: &EngineConfig,
        side_idx: usize,
        clock: f64,
        next_batch: &mut u64,
        sched_iterations: &mut usize,
        preemptions: &mut u64,
    ) {
        loop {
            if side.in_flight >= side.exec.scheduler_depth()
                || side.stage_busy[0].is_some()
                || !side.stage_queue[0].is_empty()
            {
                return;
            }
            let view = side.pool.view(
                side.kv.free_rate(),
                side.kv.free_blocks().to_tokens(side.kv.block_size()),
                side.kv.block_size(),
                side.exec.scheduler_depth(),
            );
            let admission = admit(side.policy.plan(&view), &mut side.pool, &mut side.kv);
            for &victim in &admission.preempted {
                recorder.on_preemption(victim);
                *preemptions += 1;
            }
            let plan = admission.plan;
            if plan.is_empty() {
                if side.in_flight == 0 && side.pool.has_work() {
                    if let Some((victim, _)) = side.pool.preempt_stalled_waiting() {
                        if side.kv.contains(victim) {
                            side.kv.evict(victim).expect("victim held KV");
                        }
                        recorder.on_preemption(victim);
                        *preemptions += 1;
                        continue;
                    }
                }
                return;
            }
            side.pool.commit(&plan);
            if engine_cfg.record_token_trace {
                token_trace.record(plan.prefill_tokens().get(), plan.decode_tokens().get());
            }
            *sched_iterations += 1;
            let workload = BatchWorkload {
                prefill: plan
                    .prefill
                    .iter()
                    .map(|c| SequenceChunk::prefill(c.tokens.get(), c.context_before.get()))
                    .collect(),
                decode: plan
                    .decode
                    .iter()
                    .map(|d| SequenceChunk::decode(d.context_before.get()))
                    .collect(),
            };
            let sampled =
                plan.decode.len() + plan.prefill.iter().filter(|c| c.completes_prompt).count();
            let num_seqs = plan.num_seqs();
            let id = *next_batch;
            *next_batch += 1;
            side.batches.insert(id, InFlightBatch { plan, workload, sampled, num_seqs });
            side.in_flight += 1;
            start_stage(
                side,
                runtime,
                events,
                busy,
                engine_cfg.record_utilization,
                side_idx,
                id,
                0,
                clock + runtime.sched_overhead_s,
            );
        }
    }

    macro_rules! schedule_side {
        ($idx:expr) => {
            try_schedule(
                &mut sides[$idx],
                &runtime,
                &mut events,
                &mut busy,
                &mut recorder,
                &mut token_trace,
                engine_cfg,
                $idx,
                clock,
                &mut next_batch,
                &mut sched_iterations,
                &mut preemptions,
            )
        };
    }

    while let Some((t, ev)) = events.pop() {
        if t > engine_cfg.max_sim_time_s {
            break;
        }
        clock = t;
        match ev {
            DEvent::Arrival { trace_index } => {
                let r = &trace.requests[trace_index];
                recorder.on_arrival(r.id, clock, r.prompt_len);
                let fits_prefill = Tokens(r.prompt_len + deployment.block_size)
                    <= sides[PREFILL].kv.token_capacity();
                let fits_decode = Tokens(r.total_tokens() + deployment.block_size)
                    <= sides[DECODE].kv.token_capacity();
                if !fits_prefill || !fits_decode {
                    aborted += 1;
                    continue;
                }
                // Prefill side runs each request to its first token only.
                sides[PREFILL].pool.add(r.id, r.prompt_len, 1);
                schedule_side!(PREFILL);
            }
            DEvent::BatchReady { side, batch, stage } => {
                let s = &mut sides[side];
                if s.stage_busy[stage].is_none() && s.stage_queue[stage].is_empty() {
                    start_stage(
                        s,
                        &runtime,
                        &mut events,
                        &mut busy,
                        engine_cfg.record_utilization,
                        side,
                        batch,
                        stage,
                        clock,
                    );
                } else {
                    s.stage_queue[stage].push_back(batch);
                }
            }
            DEvent::StageDone { side, batch, stage } => {
                {
                    let s = &mut sides[side];
                    debug_assert_eq!(s.stage_busy[stage], Some(batch));
                    s.stage_busy[stage] = None;
                    if let Some(next) = s.stage_queue[stage].pop_front() {
                        start_stage(
                            s,
                            &runtime,
                            &mut events,
                            &mut busy,
                            engine_cfg.record_utilization,
                            side,
                            next,
                            stage,
                            clock,
                        );
                    }
                }
                let stage_count = sides[side].exec.stage_count();
                if stage + 1 < stage_count {
                    let comm = {
                        let s = &sides[side];
                        s.exec.comm_time(&s.batches[&batch].workload)
                    };
                    events.push(clock + comm, DEvent::BatchReady { side, batch, stage: stage + 1 });
                } else {
                    // Batch complete on this side.
                    let b = sides[side].batches.remove(&batch).expect("known batch");
                    let outcome = sides[side].pool.complete(&b.plan);
                    sides[side].in_flight -= 1;
                    if side == PREFILL {
                        // Finishing on the prefill side = first token out,
                        // then ship the KV to the decode cluster.
                        for e in &outcome.emitted {
                            debug_assert!(e.finished, "prefill side runs to first token");
                            recorder.on_token(e.seq, clock);
                        }
                        for &seq in &outcome.finished {
                            let (prompt_len, _) = req_info[&seq];
                            sides[PREFILL].kv.free(seq).expect("prefill KV present");
                            let bytes = prompt_len as u64 * kv_bytes_per_token;
                            let dt = deployment.cluster.link.p2p_time(bytes);
                            events.push(clock + dt, DEvent::TransferDone { seq });
                        }
                        schedule_side!(PREFILL);
                    } else {
                        for e in &outcome.emitted {
                            recorder.on_token(e.seq, clock);
                        }
                        for &seq in &outcome.finished {
                            recorder.on_finish(seq, clock);
                            sides[DECODE].kv.free(seq).expect("decode KV present");
                        }
                        // Freed KV may unblock queued transfers.
                        while let Some(&seq) = pending_admits.front() {
                            let (prompt_len, max_output) = req_info[&seq];
                            if !sides[DECODE].kv.can_append(seq, Tokens(prompt_len)) {
                                break;
                            }
                            pending_admits.pop_front();
                            sides[DECODE].kv.append(seq, Tokens(prompt_len)).expect("checked");
                            sides[DECODE].pool.add_decoding(seq, prompt_len, 1, max_output);
                        }
                        schedule_side!(DECODE);
                    }
                }
                if stage == 0 {
                    schedule_side!(side);
                }
            }
            DEvent::TransferDone { seq } => {
                let (prompt_len, max_output) = req_info[&seq];
                if max_output <= 1 {
                    // Single-token request: already complete at prefill.
                    recorder.on_finish(seq, clock);
                    continue;
                }
                if sides[DECODE].kv.can_append(seq, Tokens(prompt_len)) && pending_admits.is_empty() {
                    sides[DECODE].kv.append(seq, Tokens(prompt_len)).expect("checked");
                    sides[DECODE].pool.add_decoding(seq, prompt_len, 1, max_output);
                    schedule_side!(DECODE);
                } else {
                    pending_admits.push_back(seq);
                }
            }
        }
    }

    let unfinished = sides[PREFILL].pool.unfinished_count()
        + sides[DECODE].pool.unfinished_count()
        + pending_admits.len();
    let used_rate = |s: &PipeSide| s.kv.free_rate();
    let final_kv_free_rate = used_rate(&sides[PREFILL]).min(used_rate(&sides[DECODE]));
    SimOutput {
        recorder,
        token_trace,
        busy,
        end_time_s: clock,
        sched_iterations,
        preemptions,
        aborted,
        unfinished,
        final_kv_free_rate,
        trace: gllm_metrics::PipelineTrace::default(),
        audit: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_metrics::ServingReport;
    use gllm_model::{ClusterSpec, ModelConfig};
    use gllm_workload::{ArrivalProcess, Dataset};

    // 14B: the only paper model that fits a *single* L20, which asymmetric
    // splits (1P:3D, 3P:1D) require.
    fn deployment() -> Deployment {
        Deployment::new(ModelConfig::qwen2_5_14b(), ClusterSpec::intra_node_l20(4))
    }

    fn run(cfg: DisaggConfig, trace: &Trace) -> SimOutput {
        simulate_disaggregated(trace, &deployment(), cfg, &EngineConfig::default())
    }

    #[test]
    fn all_requests_finish_across_both_clusters() {
        let trace = Trace::synthesize(
            Dataset::Fixed { prompt: 300, output: 24 },
            ArrivalProcess::Burst,
            1.0,
            12,
            0,
        );
        let out = run(DisaggConfig { prefill_gpus: 2, decode_gpus: 2 }, &trace);
        let report = ServingReport::from_recorder(&out.recorder);
        assert_eq!(report.finished_requests, 12);
        let tokens: usize =
            out.recorder.timelines().iter().map(|(_, t)| t.output_tokens).sum();
        assert_eq!(tokens, 12 * 24);
        assert_eq!(out.unfinished, 0);
        assert_eq!(out.final_kv_free_rate, 1.0, "KV leaked on some side");
    }

    #[test]
    fn online_trace_completes_and_is_deterministic() {
        let trace = Trace::paper_online(Dataset::ShareGpt, 2.0, 5);
        let a = run(DisaggConfig { prefill_gpus: 1, decode_gpus: 3 }, &trace);
        let b = run(DisaggConfig { prefill_gpus: 1, decode_gpus: 3 }, &trace);
        let ra = ServingReport::from_recorder(&a.recorder);
        let rb = ServingReport::from_recorder(&b.recorder);
        assert_eq!(ra, rb);
        assert_eq!(ra.finished_requests, trace.len());
    }

    #[test]
    fn ratio_mismatch_starves_one_side() {
        // Prefill-heavy workload on a decode-heavy split vs a balanced
        // split: the wrong ratio must cost throughput.
        let trace = Trace::synthesize(
            Dataset::Fixed { prompt: 2000, output: 8 },
            ArrivalProcess::Poisson { rate: 2.0 },
            64.0,
            0,
            9,
        );
        let starved = run(DisaggConfig { prefill_gpus: 1, decode_gpus: 3 }, &trace);
        let matched = run(DisaggConfig { prefill_gpus: 3, decode_gpus: 1 }, &trace);
        let rs = ServingReport::from_recorder(&starved.recorder);
        let rm = ServingReport::from_recorder(&matched.recorder);
        assert!(
            rm.mean_ttft_s < rs.mean_ttft_s * 0.7,
            "matched split should prefill much faster: {} vs {}",
            rm.mean_ttft_s,
            rs.mean_ttft_s
        );
    }

    #[test]
    fn single_token_requests_finish_at_transfer() {
        let trace = Trace::synthesize(
            Dataset::Fixed { prompt: 64, output: 1 },
            ArrivalProcess::Burst,
            1.0,
            4,
            0,
        );
        let out = run(DisaggConfig { prefill_gpus: 2, decode_gpus: 2 }, &trace);
        let report = ServingReport::from_recorder(&out.recorder);
        assert_eq!(report.finished_requests, 4);
    }
}
