//! Discrete-event simulator of distributed LLM serving clusters.
//!
//! This crate is the substitute for the paper's GPU testbeds: it replays a
//! workload trace through the *real* schedulers of `gllm-core` and the
//! *real* KV-cache manager of `gllm-kvcache`, but executes micro-batches in
//! virtual time using `gllm-model`'s analytic cost model. Pipeline bubbles,
//! KV pressure, preemptions and the prefill/decode asymmetry all emerge
//! from the same mechanics as on hardware; only the per-batch latency is
//! analytic.
//!
//! * [`event`] — deterministic time-ordered event queue,
//! * [`deployment`] — model-on-cluster configuration (partitioning, KV
//!   capacity, block size),
//! * [`runtime_model`] — CPU-overhead model distinguishing vLLM's coupled
//!   metadata/activation runtime from gLLM's asynchronous overlapped one
//!   (§3.3–3.4),
//! * [`engine`] — the event loop: stages, micro-batches, comm delays,
//!   preemption, token emission,
//! * [`systems`] — presets for every system in the paper's evaluation
//!   (gLLM, vLLM, SGLang, the ablation variants),
//! * [`experiment`] — one-call experiment driver producing a
//!   [`experiment::RunResult`],
//! * [`capacity`] — max-throughput search used by the scalability study,
//! * [`sweep`] — deterministic parallel fan-out for multi-simulation
//!   sweeps (results merged in job order, bit-identical to serial).

pub mod capacity;
pub mod deployment;
pub mod disagg;
pub mod engine;
pub mod event;
pub mod experiment;
pub mod runtime_model;
pub mod sweep;
pub mod systems;

pub use deployment::Deployment;
pub use disagg::{simulate_disaggregated, DisaggConfig};
pub use engine::{EngineConfig, SimEngine};
pub use experiment::{run_experiment, RunResult};
pub use runtime_model::RuntimeModel;
pub use sweep::{default_jobs, parallel_map, run_experiments, ExperimentJob};
pub use systems::{Parallelism, PolicyKind, SystemConfig};
