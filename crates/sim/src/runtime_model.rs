//! Runtime CPU-overhead model.
//!
//! The paper identifies a design flaw in vLLM's pipeline parallelism: the
//! transmission of intermediate activations is coupled with input scheduling
//! metadata, so input preparation for the forward pass sits on the critical
//! path and costs "approximately 17 % of the total execution time" (§3.4).
//! The gLLM runtime decouples the two (preemptive metadata scheduling,
//! §3.3), letting workers build input/attention tensors while the previous
//! batch computes, leaving only the Token Throttling bookkeeping
//! (≈0.045 ms/iteration) exposed.
//!
//! [`RuntimeModel`] expresses this: `prep_time` is charged on every stage's
//! critical path when `coupled` is true, and overlapped (charged only at
//! schedule time, as `sched_overhead_s`) when false.

use serde::{Deserialize, Serialize};

/// CPU overhead characteristics of a serving runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeModel {
    /// Runtime name for reports.
    pub name: String,
    /// Whether input preparation is on each stage's critical path (vLLM)
    /// or overlapped with computation (gLLM).
    pub coupled_input_prep: bool,
    /// Fixed input-preparation CPU time per micro-batch per stage.
    pub prep_base_s: f64,
    /// Additional input-preparation time per sequence in the batch.
    pub prep_per_seq_s: f64,
    /// Overhead charged once per schedule at the driver (gLLM's Token
    /// Throttling costs ≈45 µs; simple policies less).
    pub sched_overhead_s: f64,
}

impl RuntimeModel {
    /// vLLM's runtime: coupled metadata + activation transmission. The
    /// constants are calibrated so preparation is ≈17 % of a typical decode
    /// forward pass, per §3.4.
    pub fn vllm() -> Self {
        Self {
            name: "vLLM-runtime".into(),
            coupled_input_prep: true,
            prep_base_s: 3.0e-3,
            prep_per_seq_s: 30.0e-6,
            sched_overhead_s: 100.0e-6,
        }
    }

    /// gLLM's asynchronous runtime: non-blocking pipeline operations,
    /// decoupled frontend and preemptive metadata scheduling hide input
    /// preparation behind computation.
    pub fn gllm() -> Self {
        Self {
            name: "gLLM-runtime".into(),
            coupled_input_prep: false,
            prep_base_s: 3.0e-3,
            prep_per_seq_s: 30.0e-6,
            sched_overhead_s: 45.0e-6,
        }
    }

    /// SGLang's runtime: tensor-parallel, single-batch control flow with
    /// lower CPU overhead than vLLM (§4.1 "SGLang has lower CPU overhead
    /// than vLLM").
    pub fn sglang() -> Self {
        Self {
            name: "SGLang-runtime".into(),
            coupled_input_prep: true,
            prep_base_s: 1.2e-3,
            prep_per_seq_s: 12.0e-6,
            sched_overhead_s: 80.0e-6,
        }
    }

    /// Input-preparation time for a batch of `num_seqs` sequences.
    pub fn prep_time(&self, num_seqs: usize) -> f64 {
        self.prep_base_s + self.prep_per_seq_s * num_seqs as f64
    }

    /// Overhead added to one stage's execution of a batch with `num_seqs`
    /// sequences: the full preparation cost when coupled, nothing when
    /// overlapped.
    pub fn stage_overhead(&self, num_seqs: usize) -> f64 {
        if self.coupled_input_prep {
            self.prep_time(num_seqs)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_runtime_charges_prep_on_stage() {
        let v = RuntimeModel::vllm();
        assert!(v.stage_overhead(64) > 0.004);
        let g = RuntimeModel::gllm();
        assert_eq!(g.stage_overhead(64), 0.0, "gLLM overlaps preparation");
    }

    #[test]
    fn vllm_prep_is_about_17_percent_of_typical_decode_forward() {
        // Typical 32B/4-GPU decode stage forward ≈ 25–30 ms (see the cost
        // model's tests); prep for ~64 seqs should land near 17 % of it.
        let prep = RuntimeModel::vllm().prep_time(64);
        let forward = 0.028;
        let frac = prep / (prep + forward);
        assert!((0.10..0.25).contains(&frac), "prep fraction {frac}");
    }

    #[test]
    fn gllm_sched_overhead_matches_paper_measurement() {
        assert!((RuntimeModel::gllm().sched_overhead_s - 45e-6).abs() < 1e-9);
    }

    #[test]
    fn sglang_cheaper_than_vllm() {
        assert!(RuntimeModel::sglang().prep_time(64) < RuntimeModel::vllm().prep_time(64));
    }
}
