//! The discrete-event serving engine.
//!
//! One [`SimEngine`] replays a workload trace through a scheduling policy
//! on a modelled cluster. The mechanics mirror the paper's runtime:
//!
//! * the driver (stage 0's host) schedules a fresh micro-batch whenever
//!   stage 0 is free and fewer than `#PP_depth` micro-batches are in
//!   flight — the inter-batch dependency of §2.4,
//! * a micro-batch flows through stages in order, each transition paying
//!   the activation-transfer time on the interconnect — the inter-stage
//!   dependency,
//! * KV is allocated at schedule time (Fig. 6: "KV cache is allocated for
//!   prefill tokens prior to the execution of each micro-batch"), decode
//!   steps may preempt the latest-arrival sequence when the cache is full,
//!   and prefill chunks are trimmed to the free space,
//! * output tokens are emitted when a batch leaves the last stage.
//!
//! Virtual time, deterministic event ordering and seeded workloads make
//! every simulation bit-reproducible.

use std::collections::{BTreeMap, VecDeque};

use gllm_core::{admit, BatchPlan, RequestPool, SchedulePolicy};
use gllm_kvcache::{Blocks, KvCacheManager, Tokens};
use gllm_metrics::{
    AuditReport, BusyTracker, InvariantAuditor, KvObservation, MetricsRecorder, PipelineTrace,
    PlanCaps, TokenTrace,
};
use gllm_model::{
    BatchWorkload, CostModel, LinkSpec, PipelinePartition, SequenceChunk, StageTimeCache,
};
use gllm_workload::Trace;

use crate::event::{Event, EventQueue};
use crate::runtime_model::RuntimeModel;

/// Engine knobs independent of the system under test.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Hard stop on virtual time (stragglers after this are abandoned).
    pub max_sim_time_s: f64,
    /// Record the per-iteration token trace (Figs. 1, 4b).
    pub record_token_trace: bool,
    /// Record per-GPU busy intervals (Fig. 4a).
    pub record_utilization: bool,
    /// Chunked pipeline parallelism (§3.4's CPP integration): a request's
    /// next prefill chunk may be scheduled while earlier chunks are still
    /// in later pipeline stages, exploiting intra-request parallelism for
    /// long prompts.
    pub enable_cpp: bool,
    /// Fault injection: multiply stage `s`'s execution time by
    /// `stage_slowdown[s]` (missing entries default to 1.0). Models a
    /// straggler GPU / thermal throttling — the *inter-stage* imbalance the
    /// paper leaves to future work (§2.4); the probe quantifies how bubbles
    /// amplify around a slow stage.
    pub stage_slowdown: Vec<f64>,
    /// Run the invariant auditor on every schedule/complete transition
    /// (cheap: O(plan) per batch). On by default so every test and bench
    /// run cross-checks KV accounting, pipeline depth, budget conformance
    /// and FCFS admission.
    pub audit: bool,
    /// Record the structured per-batch pipeline event log (schedule /
    /// stage / comm / complete / preempt) for Chrome-trace export. Off by
    /// default: stage-level spans are bulky on long runs.
    pub record_pipeline_trace: bool,
    /// Memoize per-(layers, lm-head) stage times and the activation
    /// transfer time within each in-flight micro-batch
    /// ([`gllm_model::StageTimeCache`]). Bit-identical to the direct path
    /// by construction (a hit replays the first evaluation's exact result);
    /// the switch exists so the perf harness can time the unmemoized
    /// baseline and tests can assert the equivalence end-to-end.
    pub memoize_costs: bool,
    /// Use the pool's optimized scheduler data paths (direct map-walk
    /// views, O(1) live count, single-probe KV admission). Bit-identical
    /// to the legacy paths by construction; like `memoize_costs`, the
    /// switch exists so the perf harness can time the unoptimized baseline
    /// and tests can assert the equivalence end-to-end.
    pub fast_scheduler: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_sim_time_s: 36_000.0,
            record_token_trace: true,
            record_utilization: true,
            enable_cpp: false,
            stage_slowdown: Vec::new(),
            audit: true,
            record_pipeline_trace: false,
            memoize_costs: true,
            fast_scheduler: true,
        }
    }
}

/// How micro-batches execute on the hardware.
#[derive(Debug, Clone)]
pub enum ExecutionModel {
    /// Pipeline parallelism: one stage per GPU, activations move over
    /// `link` between consecutive stages.
    Pipeline {
        /// Per-GPU latency model.
        cost: CostModel,
        /// Layer-to-stage assignment.
        partition: PipelinePartition,
        /// Inter-stage interconnect.
        link: LinkSpec,
    },
    /// Tensor parallelism: every GPU cooperates on every batch; per-layer
    /// all-reduces run over `link`.
    Tensor {
        /// Per-GPU latency model.
        cost: CostModel,
        /// TP degree.
        tp: usize,
        /// All-reduce interconnect.
        link: LinkSpec,
    },
}

impl ExecutionModel {
    /// Number of sequential execution stages (1 for TP).
    pub fn stage_count(&self) -> usize {
        match self {
            ExecutionModel::Pipeline { partition, .. } => partition.depth(),
            ExecutionModel::Tensor { .. } => 1,
        }
    }

    /// The scheduler's `#PP_depth` (concurrent micro-batches).
    pub fn scheduler_depth(&self) -> usize {
        self.stage_count()
    }

    /// Total GPUs in the deployment.
    pub fn num_gpus(&self) -> usize {
        match self {
            ExecutionModel::Pipeline { partition, .. } => partition.depth(),
            ExecutionModel::Tensor { tp, .. } => *tp,
        }
    }

    /// Execution time of `batch` on `stage` (`sampled` tokens hit the LM
    /// head on the final stage).
    pub fn stage_time(&self, stage: usize, batch: &BatchWorkload, sampled: usize) -> f64 {
        match self {
            ExecutionModel::Pipeline { cost, partition, .. } => {
                let lm_head = if stage + 1 == partition.depth() { sampled } else { 0 };
                cost.stage_forward_time(partition.layers_of(stage), batch, lm_head)
            }
            ExecutionModel::Tensor { cost, tp, link } => cost.tp_forward_time(batch, *tp, link),
        }
    }

    /// [`Self::stage_time`] memoized through `cache`. The cache must be
    /// dedicated to this `(execution model, batch)` pair — the engine keeps
    /// one per in-flight micro-batch. Tensor execution has a single stage
    /// (one evaluation per batch), so it bypasses the cache.
    pub fn stage_time_memo(
        &self,
        stage: usize,
        batch: &BatchWorkload,
        sampled: usize,
        cache: &mut StageTimeCache,
    ) -> f64 {
        match self {
            ExecutionModel::Pipeline { cost, partition, .. } => {
                let lm_head = if stage + 1 == partition.depth() { sampled } else { 0 };
                cache.stage_forward_time(cost, partition.layers_of(stage), batch, lm_head)
            }
            ExecutionModel::Tensor { .. } => self.stage_time(stage, batch, sampled),
        }
    }

    /// Activation-transfer time between consecutive stages.
    pub fn comm_time(&self, batch: &BatchWorkload) -> f64 {
        match self {
            ExecutionModel::Pipeline { cost, link, .. } => {
                link.p2p_time(cost.activation_bytes(batch))
            }
            ExecutionModel::Tensor { .. } => 0.0,
        }
    }

    /// GPUs kept busy by `stage`.
    fn busy_gpus(&self, stage: usize) -> std::ops::Range<usize> {
        match self {
            ExecutionModel::Pipeline { .. } => stage..stage + 1,
            ExecutionModel::Tensor { tp, .. } => 0..*tp,
        }
    }
}

/// A micro-batch travelling through the pipeline.
#[derive(Debug, Clone)]
struct InFlightBatch {
    plan: BatchPlan,
    workload: BatchWorkload,
    sampled: usize,
    num_seqs: usize,
    /// Per-batch stage-time memo (the workload is frozen at schedule time,
    /// so stages sharing a (layers, lm-head) key share one evaluation).
    stage_times: StageTimeCache,
    /// Activation-transfer time, evaluated once on the first inter-stage
    /// hop (identical for every hop of this batch).
    comm_s: Option<f64>,
}

/// Raw results of one simulation.
#[derive(Debug)]
pub struct SimOutput {
    /// Per-request metric timelines.
    pub recorder: MetricsRecorder,
    /// Per-iteration batched token composition.
    pub token_trace: TokenTrace,
    /// Per-GPU busy intervals.
    pub busy: BusyTracker,
    /// Virtual time at which the last event was processed.
    pub end_time_s: f64,
    /// Micro-batches scheduled.
    pub sched_iterations: usize,
    /// Total preemption events (evictions).
    pub preemptions: u64,
    /// Requests rejected because they could never fit in KV.
    pub aborted: usize,
    /// Requests still unfinished when the run ended (0 on a clean drain).
    pub unfinished: usize,
    /// KV free rate at the end of the run (1.0 on a clean drain — anything
    /// less with `unfinished == 0` indicates a leak).
    pub final_kv_free_rate: f64,
    /// Structured pipeline event log (empty unless
    /// `record_pipeline_trace` was set).
    pub trace: PipelineTrace,
    /// Invariant-audit result (`None` when auditing was disabled).
    pub audit: Option<AuditReport>,
}

/// The discrete-event serving engine. Construct with [`SimEngine::new`] and
/// consume with [`SimEngine::run`].
pub struct SimEngine<'a> {
    trace: &'a Trace,
    policy: &'a dyn SchedulePolicy,
    exec: ExecutionModel,
    runtime: RuntimeModel,
    cfg: &'a EngineConfig,

    clock: f64,
    events: EventQueue,
    pool: RequestPool,
    kv: KvCacheManager,

    stage_busy: Vec<Option<u64>>,
    stage_queue: Vec<VecDeque<u64>>,
    batches: BTreeMap<u64, InFlightBatch>,
    next_batch_id: u64,
    in_flight: usize,

    recorder: MetricsRecorder,
    token_trace: TokenTrace,
    busy: BusyTracker,
    ptrace: PipelineTrace,
    auditor: Option<InvariantAuditor>,
    sched_iterations: usize,
    preemptions: u64,
    aborted: usize,
}

impl<'a> SimEngine<'a> {
    /// Build an engine over `kv_blocks` KV blocks of `block_size` tokens.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        trace: &'a Trace,
        policy: &'a dyn SchedulePolicy,
        exec: ExecutionModel,
        runtime: RuntimeModel,
        kv_blocks: usize,
        block_size: usize,
        max_seqs_per_batch: usize,
        cfg: &'a EngineConfig,
    ) -> Self {
        let stages = exec.stage_count();
        let num_gpus = exec.num_gpus();
        let enable_cpp = cfg.enable_cpp;
        let auditor = cfg
            .audit
            .then(|| {
                InvariantAuditor::new(Blocks(kv_blocks), Tokens(block_size), exec.scheduler_depth())
            });
        let ptrace = PipelineTrace::new(cfg.record_pipeline_trace);
        // Pre-size the hot buffers: the queue is seeded with one arrival
        // per request (plus a small in-flight margin), and each request
        // contributes roughly one token-trace point / stage interval per
        // output token — a cheap lower bound that absorbs the early
        // doubling reallocations.
        let n = trace.requests.len();
        let events = EventQueue::with_capacity(n + 2 * stages + 8);
        let token_trace = if cfg.record_token_trace {
            TokenTrace::with_capacity(2 * n)
        } else {
            TokenTrace::new()
        };
        let busy = if cfg.record_utilization {
            BusyTracker::with_capacity(num_gpus, 2 * n * stages)
        } else {
            BusyTracker::new(num_gpus)
        };
        Self {
            trace,
            policy,
            exec,
            runtime,
            cfg,
            clock: 0.0,
            events,
            pool: RequestPool::new(max_seqs_per_batch)
                .with_cpp(enable_cpp)
                .with_fast_path(cfg.fast_scheduler),
            kv: KvCacheManager::new(Blocks(kv_blocks), Tokens(block_size)),
            stage_busy: vec![None; stages],
            stage_queue: vec![VecDeque::new(); stages],
            batches: BTreeMap::new(),
            next_batch_id: 0,
            in_flight: 0,
            recorder: MetricsRecorder::new(),
            token_trace,
            busy,
            ptrace,
            auditor,
            sched_iterations: 0,
            preemptions: 0,
            aborted: 0,
        }
    }

    /// Run to completion (or the time limit) and return the raw output.
    pub fn run(mut self) -> SimOutput {
        for (i, _) in self.trace.requests.iter().enumerate() {
            self.events
                .push(self.trace.requests[i].arrival_s, Event::Arrival { trace_index: i });
        }
        while let Some((t, ev)) = self.events.pop() {
            if t > self.cfg.max_sim_time_s {
                break;
            }
            self.clock = t;
            match ev {
                Event::Arrival { trace_index } => self.on_arrival(trace_index),
                Event::BatchReady { batch, stage } => self.on_batch_ready(batch, stage),
                Event::StageDone { batch, stage } => self.on_stage_done(batch, stage),
            }
        }
        let unfinished = self.pool.unfinished_count();
        SimOutput {
            recorder: self.recorder,
            token_trace: self.token_trace,
            busy: self.busy,
            end_time_s: self.clock,
            sched_iterations: self.sched_iterations,
            preemptions: self.preemptions,
            aborted: self.aborted,
            unfinished,
            final_kv_free_rate: self.kv.free_rate(),
            trace: self.ptrace,
            audit: self.auditor.map(|a| a.into_report(unfinished == 0)),
        }
    }

    /// Current KV occupancy as the auditor's observation.
    fn kv_obs(&self) -> KvObservation {
        let s = self.kv.stats();
        KvObservation { free_blocks: s.free_blocks, used_blocks: s.used_blocks }
    }

    fn on_arrival(&mut self, trace_index: usize) {
        let r = &self.trace.requests[trace_index];
        self.recorder.on_arrival(r.id, self.clock, r.prompt_len);
        if let Some(a) = self.auditor.as_mut() {
            a.on_arrival(r.id);
        }
        // A request whose full context can never fit is rejected up front
        // (a real engine would return an error to the client).
        if Tokens(r.total_tokens()) + self.kv.block_size() > self.kv.token_capacity() {
            self.aborted += 1;
            if let Some(a) = self.auditor.as_mut() {
                a.on_abort(r.id);
            }
            return;
        }
        self.pool.add(r.id, r.prompt_len, r.output_len);
        self.try_schedule();
    }

    fn on_batch_ready(&mut self, batch: u64, stage: usize) {
        if self.stage_busy[stage].is_none() && self.stage_queue[stage].is_empty() {
            self.start_stage(batch, stage, self.clock);
        } else {
            self.stage_queue[stage].push_back(batch);
        }
    }

    fn on_stage_done(&mut self, batch: u64, stage: usize) {
        debug_assert_eq!(self.stage_busy[stage], Some(batch));
        self.stage_busy[stage] = None;
        if let Some(next) = self.stage_queue[stage].pop_front() {
            self.start_stage(next, stage, self.clock);
        }
        if stage + 1 < self.exec.stage_count() {
            let comm = {
                let b = self.batches.get_mut(&batch).expect("unknown batch in transit");
                if self.cfg.memoize_costs {
                    match b.comm_s {
                        Some(c) => c,
                        None => {
                            let c = self.exec.comm_time(&b.workload);
                            b.comm_s = Some(c);
                            c
                        }
                    }
                } else {
                    self.exec.comm_time(&b.workload)
                }
            };
            self.ptrace.comm(self.clock, self.clock + comm, batch, stage);
            self.events
                .push(self.clock + comm, Event::BatchReady { batch, stage: stage + 1 });
        } else {
            self.complete_batch(batch);
        }
        // Stage 0 freeing (or a completion) may unblock the scheduler.
        if stage == 0 {
            self.try_schedule();
        }
    }

    fn start_stage(&mut self, batch: u64, stage: usize, t: f64) {
        let (dur, gpus) = {
            let b = self.batches.get_mut(&batch).expect("unknown batch started");
            let slow = self.cfg.stage_slowdown.get(stage).copied().unwrap_or(1.0);
            let raw = if self.cfg.memoize_costs {
                self.exec.stage_time_memo(stage, &b.workload, b.sampled, &mut b.stage_times)
            } else {
                self.exec.stage_time(stage, &b.workload, b.sampled)
            };
            let dur = raw * slow + self.runtime.stage_overhead(b.num_seqs);
            (dur, self.exec.busy_gpus(stage))
        };
        self.stage_busy[stage] = Some(batch);
        if self.cfg.record_utilization {
            for g in gpus {
                self.busy.record(g, t, t + dur);
            }
        }
        self.ptrace.stage(t, t + dur, batch, stage);
        self.events.push(t + dur, Event::StageDone { batch, stage });
    }

    fn complete_batch(&mut self, batch: u64) {
        let b = self.batches.remove(&batch).expect("unknown batch completed");
        let outcome = self.pool.complete(&b.plan);
        for e in &outcome.emitted {
            self.recorder.on_token(e.seq, self.clock);
        }
        for &id in &outcome.finished {
            self.recorder.on_finish(id, self.clock);
            self.kv.free(id).expect("finished sequence had KV");
        }
        self.in_flight -= 1;
        self.ptrace
            .complete(self.clock, batch, outcome.emitted.len(), outcome.finished.len());
        if let Some(a) = self.auditor.as_mut() {
            let s = self.kv.stats();
            let after = KvObservation { free_blocks: s.free_blocks, used_blocks: s.used_blocks };
            a.on_complete(self.clock, batch, &outcome.finished, after);
        }
        self.try_schedule();
    }

    /// Schedule micro-batches while stage 0 is free and pipeline slots
    /// remain — the paper's driver-worker loop.
    fn try_schedule(&mut self) {
        loop {
            if self.in_flight >= self.exec.scheduler_depth()
                || self.stage_busy[0].is_some()
                || !self.stage_queue[0].is_empty()
            {
                return;
            }
            let view = self.pool.view(
                self.kv.free_rate(),
                self.kv.free_blocks().to_tokens(self.kv.block_size()),
                self.kv.block_size(),
                self.exec.scheduler_depth(),
            );
            let kv_before = self.kv_obs();
            let caps = self
                .policy
                .budget_caps(&view)
                .map(|(prefill_tokens, decode_seqs)| PlanCaps { prefill_tokens, decode_seqs });
            let proposed = self.policy.plan(&view);
            let proposed_copy = self.auditor.as_ref().map(|_| proposed.clone());
            let admission = admit(proposed, &mut self.pool, &mut self.kv);
            for &victim in &admission.preempted {
                self.recorder.on_preemption(victim);
                self.preemptions += 1;
                self.ptrace.preempt(self.clock, victim);
                if let Some(a) = self.auditor.as_mut() {
                    a.on_evict(victim);
                }
            }
            let plan = admission.plan;
            if plan.is_empty() {
                // Stall breaker: with nothing in flight and work remaining,
                // force a waiting sequence to give its KV back so the head
                // of the line can progress (bounded: each eviction frees
                // > 0 tokens).
                if self.in_flight == 0 && self.pool.has_work() {
                    if let Some((victim, _)) = self.pool.preempt_stalled_waiting() {
                        if self.kv.contains(victim) {
                            self.kv.evict(victim).expect("victim held KV");
                        }
                        self.recorder.on_preemption(victim);
                        self.preemptions += 1;
                        self.ptrace.preempt(self.clock, victim);
                        if let Some(a) = self.auditor.as_mut() {
                            a.on_evict(victim);
                        }
                        continue;
                    }
                }
                return;
            }
            self.pool.commit(&plan);
            if self.cfg.record_token_trace {
                self.token_trace
                    .record(plan.prefill_tokens().get(), plan.decode_tokens().get());
            }
            self.sched_iterations += 1;
            if let (Some(a), Some(proposed)) = (self.auditor.as_mut(), proposed_copy.as_ref()) {
                let after = KvObservation {
                    free_blocks: self.kv.free_blocks(),
                    used_blocks: self.kv.stats().used_blocks,
                };
                a.on_schedule(
                    self.clock,
                    self.next_batch_id,
                    proposed,
                    &plan,
                    caps,
                    kv_before,
                    after,
                );
            }
            self.ptrace.schedule(
                self.clock,
                self.next_batch_id,
                plan.prefill_tokens().get(),
                plan.decode_tokens().get(),
                plan.num_seqs(),
            );

            let workload = to_workload(&plan);
            let sampled = plan.decode.len()
                + plan.prefill.iter().filter(|c| c.completes_prompt).count();
            let num_seqs = plan.num_seqs();
            let id = self.next_batch_id;
            self.next_batch_id += 1;
            self.batches.insert(
                id,
                InFlightBatch {
                    plan,
                    workload,
                    sampled,
                    num_seqs,
                    stage_times: StageTimeCache::new(),
                    comm_s: None,
                },
            );
            self.in_flight += 1;
            self.start_stage(id, 0, self.clock + self.runtime.sched_overhead_s);
        }
    }

}

/// Convert a committed plan into the cost model's batch description.
fn to_workload(plan: &BatchPlan) -> BatchWorkload {
    BatchWorkload {
        prefill: plan
            .prefill
            .iter()
            .map(|c| SequenceChunk::prefill(c.tokens.get(), c.context_before.get()))
            .collect(),
        decode: plan
            .decode
            .iter()
            .map(|d| SequenceChunk::decode(d.context_before.get()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_core::sarathi::SarathiServe;
    use gllm_core::throttle::TokenThrottle;
    use gllm_core::ScheduleView;
    use gllm_metrics::ServingReport;
    use gllm_model::{ClusterSpec, GpuSpec, ModelConfig};
    use gllm_workload::{ArrivalProcess, Dataset};

    fn small_exec(stages: usize) -> ExecutionModel {
        let model = ModelConfig::qwen2_5_32b();
        let cost = CostModel::new(model.clone(), GpuSpec::l20_48g());
        ExecutionModel::Pipeline {
            cost,
            partition: PipelinePartition::even(model.num_layers, stages),
            link: LinkSpec::pcie(),
        }
    }

    fn burst_trace(n: usize, prompt: usize, output: usize) -> Trace {
        Trace::synthesize(
            Dataset::Fixed { prompt, output },
            ArrivalProcess::Burst,
            1.0,
            n,
            0,
        )
    }

    fn run(
        trace: &Trace,
        policy: &dyn SchedulePolicy,
        exec: ExecutionModel,
        kv_blocks: usize,
    ) -> SimOutput {
        SimEngine::new(
            trace,
            policy,
            exec,
            RuntimeModel::gllm(),
            kv_blocks,
            16,
            1024,
            &EngineConfig::default(),
        )
        .run()
    }

    #[test]
    fn all_requests_finish_and_emit_their_tokens() {
        let trace = burst_trace(8, 200, 12);
        let out = run(&trace, &TokenThrottle::default(), small_exec(4), 4096);
        let report = ServingReport::from_recorder(&out.recorder);
        assert_eq!(report.finished_requests, 8);
        let tokens: usize = out
            .recorder
            .timelines()
            .iter()
            .map(|(_, t)| t.output_tokens)
            .sum();
        assert_eq!(tokens, 8 * 12);
        assert_eq!(out.aborted, 0);
    }

    #[test]
    fn kv_is_fully_returned_after_drain() {
        let trace = burst_trace(6, 100, 5);
        let policy = SarathiServe::default();
        let cfg = EngineConfig::default();
        let mut engine = SimEngine::new(
            &trace,
            &policy,
            small_exec(2),
            RuntimeModel::vllm(),
            2048,
            16,
            1024,
            &cfg,
        );
        // Run manually so we can inspect the KV afterwards.
        for (i, r) in trace.requests.iter().enumerate() {
            engine.events.push(r.arrival_s, Event::Arrival { trace_index: i });
        }
        while let Some((t, ev)) = engine.events.pop() {
            engine.clock = t;
            match ev {
                Event::Arrival { trace_index } => engine.on_arrival(trace_index),
                Event::BatchReady { batch, stage } => engine.on_batch_ready(batch, stage),
                Event::StageDone { batch, stage } => engine.on_stage_done(batch, stage),
            }
        }
        assert!(!engine.pool.has_work());
        assert_eq!(engine.kv.free_rate(), 1.0, "KV leaked");
        assert_eq!(engine.in_flight, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = Trace::paper_online(Dataset::ShareGpt, 2.0, 7);
        let a = run(&trace, &TokenThrottle::default(), small_exec(4), 8192);
        let b = run(&trace, &TokenThrottle::default(), small_exec(4), 8192);
        let ra = ServingReport::from_recorder(&a.recorder);
        let rb = ServingReport::from_recorder(&b.recorder);
        assert_eq!(ra, rb);
        assert_eq!(a.token_trace, b.token_trace);
    }

    #[test]
    fn pipeline_keeps_at_most_depth_batches_in_flight() {
        // Indirect check: with depth 4 and plenty of decodes, gLLM's Eq. 4
        // spreads them; iterations must be at least ceil-divided.
        let trace = burst_trace(32, 64, 20);
        let out = run(&trace, &TokenThrottle::default(), small_exec(4), 8192);
        assert!(out.sched_iterations >= 32 * 20 / (32usize.div_ceil(4) * 4));
        let report = ServingReport::from_recorder(&out.recorder);
        assert_eq!(report.finished_requests, 32);
    }

    #[test]
    fn oversized_request_is_aborted_not_wedged() {
        let mut trace = burst_trace(2, 100, 5);
        trace.requests[1].prompt_len = 100_000; // cannot fit in 64 blocks
        let out = run(&trace, &TokenThrottle::default(), small_exec(2), 64);
        assert_eq!(out.aborted, 1);
        let report = ServingReport::from_recorder(&out.recorder);
        assert_eq!(report.finished_requests, 1);
    }

    #[test]
    fn kv_pressure_triggers_preemption_but_everything_still_finishes() {
        // 16 blocks × 16 tokens = 256 tokens of KV for 4 requests needing
        // 4 × (40 + 30) = 280 tokens at peak → someone must be preempted.
        let trace = burst_trace(4, 40, 30);
        let out = run(&trace, &SarathiServe::default(), small_exec(2), 16);
        let report = ServingReport::from_recorder(&out.recorder);
        assert_eq!(report.finished_requests, 4);
        assert!(out.preemptions > 0, "expected KV preemptions");
    }

    #[test]
    fn tensor_parallel_engine_completes_work() {
        let model = ModelConfig::qwen2_5_32b();
        let cluster = ClusterSpec::intra_node_l20(4);
        let exec = ExecutionModel::Tensor {
            cost: CostModel::new(model, GpuSpec::l20_48g()),
            tp: 4,
            link: cluster.link,
        };
        let trace = burst_trace(8, 128, 8);
        let out = run(&trace, &SarathiServe::default(), exec, 4096);
        let report = ServingReport::from_recorder(&out.recorder);
        assert_eq!(report.finished_requests, 8);
    }

    #[test]
    fn utilization_and_token_trace_are_recorded() {
        let trace = burst_trace(8, 256, 10);
        let out = run(&trace, &TokenThrottle::default(), small_exec(4), 8192);
        assert!(!out.token_trace.is_empty());
        assert!(out.busy.mean_utilization(out.end_time_s) > 0.05);
    }

    #[test]
    fn cpp_pipelines_a_long_prompt_and_cuts_ttft() {
        // One 16K-token prompt: classic chunking serialises chunk (i+1)
        // behind chunk i's full pipeline traversal; CPP overlaps them.
        let trace = burst_trace(1, 16_384, 4);
        let policy = TokenThrottle::default();
        let run_with = |cpp: bool| {
            SimEngine::new(
                &trace, &policy, small_exec(4), RuntimeModel::gllm(), 4096, 16, 1024,
                &EngineConfig { enable_cpp: cpp, ..Default::default() },
            )
            .run()
        };
        let classic = run_with(false);
        let cpp = run_with(true);
        let t_classic = ServingReport::from_recorder(&classic.recorder).mean_ttft_s;
        let t_cpp = ServingReport::from_recorder(&cpp.recorder).mean_ttft_s;
        assert!(
            t_cpp < t_classic * 0.55,
            "CPP should pipeline chunks: {t_cpp} vs {t_classic}"
        );
        assert_eq!(cpp.unfinished, 0);
        assert_eq!(cpp.final_kv_free_rate, 1.0);
    }

    #[test]
    fn clean_drain_returns_all_kv() {
        let trace = burst_trace(10, 150, 15);
        let out = run(&trace, &TokenThrottle::default(), small_exec(4), 4096);
        assert_eq!(out.unfinished, 0);
        assert_eq!(out.final_kv_free_rate, 1.0, "KV leaked");
    }

    #[test]
    fn slow_stage_injection_stretches_the_pipeline() {
        let trace = burst_trace(8, 200, 16);
        let policy = TokenThrottle::default();
        let healthy = SimEngine::new(
            &trace, &policy, small_exec(4), RuntimeModel::gllm(), 8192, 16, 1024,
            &EngineConfig::default(),
        )
        .run();
        let degraded = SimEngine::new(
            &trace, &policy, small_exec(4), RuntimeModel::gllm(), 8192, 16, 1024,
            &EngineConfig { stage_slowdown: vec![1.0, 1.0, 2.0, 1.0], ..Default::default() },
        )
        .run();
        let h = ServingReport::from_recorder(&healthy.recorder);
        let d = ServingReport::from_recorder(&degraded.recorder);
        assert_eq!(d.finished_requests, 8, "slow stage must not lose work");
        // A 2x slower stage gates the whole pipeline: E2EL rises by well
        // over the 25% a perfectly-overlapped system would see.
        assert!(
            d.mean_e2el_s > h.mean_e2el_s * 1.4,
            "healthy {} vs degraded {}",
            h.mean_e2el_s,
            d.mean_e2el_s
        );
        // And the healthy stages go idle waiting for the straggler.
        assert!(degraded.busy.mean_utilization(degraded.end_time_s)
            < healthy.busy.mean_utilization(healthy.end_time_s));
    }

    #[test]
    fn sarathi_trace_is_more_volatile_than_gllm_under_bursts() {
        // The Fig. 1 phenomenon in miniature: bursty arrivals produce
        // bigger token-count swings under Sarathi than under throttling.
        let trace = Trace::paper_online(Dataset::ShareGpt, 6.0, 3);
        let sarathi = run(&trace, &SarathiServe::default(), small_exec(4), 8192);
        let gllm = run(&trace, &TokenThrottle::default(), small_exec(4), 8192);
        assert!(
            sarathi.token_trace.total_tokens_cv() > gllm.token_trace.total_tokens_cv(),
            "sarathi CV {} vs gLLM CV {}",
            sarathi.token_trace.total_tokens_cv(),
            gllm.token_trace.total_tokens_cv()
        );
    }

    #[test]
    fn drained_runs_audit_clean_for_every_policy() {
        // Satellite leak check: the auditor's shadow KV accounting must
        // agree with the cache on every transition AND at drain time.
        let trace = burst_trace(10, 300, 8);
        let policies: Vec<Box<dyn SchedulePolicy>> = vec![
            Box::new(TokenThrottle::default()),
            Box::new(SarathiServe::default()),
        ];
        for policy in &policies {
            let out = run(&trace, policy.as_ref(), small_exec(4), 4096);
            let audit = out.audit.expect("audit defaults on");
            audit.assert_clean(policy.name());
            assert!(audit.batches_checked > 0, "auditor saw no batches");
        }
    }

    #[test]
    fn audit_survives_kv_pressure_and_preemption() {
        // Preemption (recompute eviction) is the hardest path for shadow
        // accounting: evicted sequences give back their blocks and later
        // re-prefill from scratch without tripping FCFS first-start checks.
        let trace = burst_trace(16, 400, 30);
        let out = run(&trace, &SarathiServe::default(), small_exec(2), 96);
        assert!(out.preemptions > 0, "test must exercise preemption");
        out.audit.expect("audit defaults on").assert_clean("preemption");
    }

    /// A deliberately broken policy: plans prefill for KV it does not have
    /// (token-granular accounting, the pre-fix `TokenThrottle` bug) and
    /// publishes budget caps smaller than what it actually plans.
    struct BrokenPolicy;

    impl SchedulePolicy for BrokenPolicy {
        fn plan(&self, view: &ScheduleView) -> BatchPlan {
            use gllm_core::plan::PrefillChunk;
            use gllm_core::policy::take_decodes;
            let decode = take_decodes(&view.decodable, view.decodable.len());
            // Token-granular reservation: one token per decode slot, then
            // hand ALL remaining free tokens to prefill — ignores that each
            // decode at a block boundary claims a whole fresh block.
            let kv_left = view.kv_free_tokens.saturating_sub(Tokens(decode.len()));
            let prefill = view
                .waiting
                .first()
                .map(|w| PrefillChunk {
                    seq: w.seq,
                    tokens: w.remaining_prefill.min(kv_left),
                    context_before: w.context_before,
                    completes_prompt: w.remaining_prefill <= kv_left,
                })
                .into_iter()
                .filter(|c| !c.tokens.is_zero())
                .collect();
            BatchPlan { prefill, decode }
        }

        fn budget_caps(&self, _view: &ScheduleView) -> Option<(Tokens, usize)> {
            // Published caps that the plans above routinely exceed.
            Some((Tokens(1), 0))
        }

        fn name(&self) -> &'static str {
            "broken"
        }
    }

    #[test]
    fn broken_policy_trips_the_auditor_end_to_end() {
        // Block size 16 with tight KV: token-granular decode reservation
        // must trip KvOvercommit, and the bogus caps trip BudgetConformance.
        let trace = burst_trace(8, 200, 40);
        let out = run(&trace, &BrokenPolicy, small_exec(2), 64);
        let audit = out.audit.expect("audit defaults on");
        assert!(
            !audit.is_clean(),
            "a policy that overcommits KV and violates its own caps must be caught"
        );
        let kinds: std::collections::HashSet<_> =
            audit.violations.iter().map(|v| v.invariant).collect();
        assert!(
            kinds.contains(&gllm_metrics::Invariant::BudgetConformance),
            "caps (1, 0) are exceeded by every nonempty plan: {kinds:?}"
        );
        assert!(
            kinds.contains(&gllm_metrics::Invariant::KvOvercommit),
            "token-granular decode reservation must overcommit blocks: {kinds:?}"
        );
    }

    #[test]
    fn pipeline_trace_records_spans_when_enabled() {
        let trace = burst_trace(4, 100, 6);
        let policy = TokenThrottle::default();
        let mut cfg = EngineConfig::default();
        cfg.record_pipeline_trace = true;
        let out = SimEngine::new(
            &trace,
            &policy,
            small_exec(2),
            RuntimeModel::gllm(),
            2048,
            16,
            1024,
            &cfg,
        )
        .run();
        assert!(out.trace.is_enabled());
        assert!(out.trace.stage_busy_total() > 0.0);
        let doc = out.trace.to_chrome_trace_string();
        assert!(doc.contains("\"traceEvents\""));
        // Default config records nothing (zero-cost when off).
        let off = run(&trace, &policy, small_exec(2), 2048);
        assert!(off.trace.events().is_empty());
    }
}
