//! A model deployed on a cluster.

use gllm_model::{ClusterSpec, ModelConfig, PipelinePartition};
use serde::{Deserialize, Serialize};

/// One model served on one cluster: everything the engine needs to size the
/// KV cache and partition the layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The transformer being served.
    pub model: ModelConfig,
    /// GPUs and interconnect.
    pub cluster: ClusterSpec,
    /// KV block size in tokens (vLLM default 16).
    pub block_size: usize,
    /// Per-batch sequence cap (vLLM's `--max-num-seqs`, paper: 1024).
    pub max_seqs_per_batch: usize,
}

impl Deployment {
    /// A deployment with the paper's engine defaults.
    pub fn new(model: ModelConfig, cluster: ClusterSpec) -> Self {
        Self { model, cluster, block_size: 16, max_seqs_per_batch: 1024 }
    }

    /// Even layer partition across the cluster's GPUs (pipeline mode).
    pub fn partition(&self) -> PipelinePartition {
        PipelinePartition::even(self.model.num_layers, self.cluster.num_gpus)
    }

    /// KV token capacity under pipeline parallelism.
    pub fn pp_kv_tokens(&self) -> usize {
        self.cluster.pp_kv_token_capacity(&self.model, &self.partition())
    }

    /// KV token capacity under tensor parallelism.
    pub fn tp_kv_tokens(&self) -> usize {
        self.cluster.tp_kv_token_capacity(&self.model)
    }

    /// KV blocks for the given parallelism's token capacity.
    pub fn kv_blocks(&self, tokens: usize) -> usize {
        (tokens / self.block_size).max(1)
    }

    /// The context length at which one token's attention-score FLOPs equal
    /// its dense-projection FLOPs (`params_per_layer / (2 × q_dim)`): the
    /// natural `quad_ref` for context-aware throttling.
    pub fn quad_ref_tokens(&self) -> f64 {
        self.model.params_per_layer() as f64 / (2.0 * self.model.q_dim() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_main_config_is_feasible() {
        let d = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
        assert_eq!(d.partition().depth(), 4);
        assert!(d.pp_kv_tokens() > 10_000);
        assert!(d.tp_kv_tokens() > 10_000);
        assert!(d.kv_blocks(d.pp_kv_tokens()) > 600);
    }

    #[test]
    fn defaults_match_paper_settings() {
        let d = Deployment::new(ModelConfig::tiny(), ClusterSpec::intra_node_l20(4));
        assert_eq!(d.block_size, 16);
        assert_eq!(d.max_seqs_per_batch, 1024);
    }
}
