//! Deterministic discrete-event queue.
//!
//! Events are ordered by virtual time with a monotone sequence number as the
//! tie-breaker, so simulations are bit-reproducible regardless of how many
//! events share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events the serving simulation processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Request `trace_index` arrives.
    Arrival {
        /// Index into the trace's request list.
        trace_index: usize,
    },
    /// Micro-batch `batch` finished executing on `stage`.
    StageDone {
        /// Batch id.
        batch: u64,
        /// Pipeline stage index.
        stage: usize,
    },
    /// Micro-batch `batch`'s activations arrived at `stage` (post-comm).
    BatchReady {
        /// Batch id.
        batch: u64,
        /// Pipeline stage index.
        stage: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq). `total_cmp` is a total
        // order, so the hottest comparator in the simulator has no panic
        // path; push() guarantees times are finite, non-negative and
        // normalised (no -0.0), which makes total_cmp agree with the
        // numeric order.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of events ordered by `(time, insertion order)`. Generic over
/// the event payload so the unified and disaggregated engines each bring
/// their own event vocabulary.
#[derive(Debug)]
pub struct EventQueue<E = Event> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with room for `capacity` pending events, so bulk
    /// seeding (one arrival event per trace request) does not reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(capacity), next_seq: 0 }
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        // Normalise -0.0 so Ord (total_cmp) and the numeric order agree on
        // every admitted time.
        let time = if time == 0.0 { 0.0 } else { time };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, Event::Arrival { trace_index: 2 });
        q.push(1.0, Event::Arrival { trace_index: 1 });
        q.push(3.0, Event::Arrival { trace_index: 3 });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::Arrival { trace_index: 10 });
        q.push(1.0, Event::Arrival { trace_index: 11 });
        q.push(1.0, Event::Arrival { trace_index: 12 });
        let order: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::Arrival { trace_index } => trace_index,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![10, 11, 12]);
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, Event::Arrival { trace_index: 0 });
    }

    #[test]
    fn negative_zero_is_normalised_to_zero() {
        let mut q = EventQueue::new();
        q.push(-0.0, Event::Arrival { trace_index: 0 });
        q.push(0.0, Event::Arrival { trace_index: 1 });
        // Both are time 0.0; insertion order decides.
        let (t0, e0) = q.pop().expect("first");
        let (t1, e1) = q.pop().expect("second");
        assert!(t0 == 0.0 && t0.is_sign_positive());
        assert!(t1 == 0.0 && t1.is_sign_positive());
        assert_eq!(e0, Event::Arrival { trace_index: 0 });
        assert_eq!(e1, Event::Arrival { trace_index: 1 });
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q: EventQueue = EventQueue::with_capacity(16);
        q.push(2.0, Event::Arrival { trace_index: 2 });
        q.push(1.0, Event::Arrival { trace_index: 1 });
        q.reserve(100);
        assert_eq!(q.pop().map(|(t, _)| t), Some(1.0));
        assert_eq!(q.pop().map(|(t, _)| t), Some(2.0));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, Event::StageDone { batch: 1, stage: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
