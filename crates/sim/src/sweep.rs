//! Deterministic parallel experiment fan-out.
//!
//! Every figure and table in the reproduction is a sweep: N independent
//! `(trace, system, deployment, config)` simulations whose results are
//! reduced into one JSON artifact. Simulations share no mutable state, so
//! they can run on worker threads — but the *artifact* must stay
//! bit-identical to a serial run. This module guarantees that by
//! construction: workers pull job indices from an atomic counter, tag each
//! result with the index it came from, and [`parallel_map`] merges results
//! into their slots **in job-index order**. Thread scheduling can change
//! which worker runs which job, never what the merged vector contains.
//!
//! This is the one sanctioned home for thread spawning in the simulation
//! layer — `gllm-lint`'s sim-determinism check flags thread use anywhere
//! else under `crates/sim`, `crates/core` or `crates/metrics`.

use std::sync::atomic::{AtomicUsize, Ordering};

use gllm_model::CostModel;
use gllm_workload::Trace;

use crate::deployment::Deployment;
use crate::engine::EngineConfig;
use crate::experiment::{run_experiment_with, RunResult};
use crate::systems::SystemConfig;

/// Number of worker threads to use by default: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f(index, &items[index])` for every item, fanning the calls across
/// `jobs` worker threads, and return the results **in item order** — the
/// output is byte-for-byte what a `items.iter().enumerate().map(f)` loop
/// produces, regardless of how the OS schedules the workers.
///
/// `jobs <= 1` short-circuits to the serial loop (no threads spawned).
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let workers = jobs.min(items.len());
    let next = AtomicUsize::new(0);
    // Each worker collects (index, result) pairs; after the scope joins,
    // results are placed into their slots by index. The merge order is a
    // function of the job list alone, never of thread timing.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let collected: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        mine.push((i, f(i, &items[i])));
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    for (i, r) in collected.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "job {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} never ran")))
        .collect()
}

/// One simulation in a sweep: everything [`run_experiment_with`] needs,
/// borrowed so job lists are cheap to build.
pub struct ExperimentJob<'a> {
    /// Workload to replay.
    pub trace: &'a Trace,
    /// System under test.
    pub system: &'a SystemConfig,
    /// Model-on-cluster deployment.
    pub deployment: &'a Deployment,
    /// Engine configuration.
    pub cfg: &'a EngineConfig,
    /// Optional cost-model hook (ablation benches inject MoE variance or
    /// strip the attention term). `None` means no adjustment.
    pub tweak: Option<&'a (dyn Fn(&mut CostModel) + Sync)>,
}

/// Run every job, fanned across `jobs` threads, returning results in job
/// order — bit-identical to running the jobs serially in a loop.
pub fn run_experiments(jobs_list: &[ExperimentJob<'_>], jobs: usize) -> Vec<RunResult> {
    parallel_map(jobs_list, jobs, |_, job| {
        let noop: &dyn Fn(&mut CostModel) = &|_| {};
        let tweak: &dyn Fn(&mut CostModel) = match job.tweak {
            Some(t) => t,
            None => noop,
        };
        run_experiment_with(job.trace, job.system, job.deployment, job.cfg, tweak)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gllm_model::{ClusterSpec, ModelConfig};
    use gllm_workload::Dataset;

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let serial = parallel_map(&items, 1, |i, &x| (i, x * x));
        let fanned = parallel_map(&items, 8, |i, &x| (i, x * x));
        assert_eq!(serial, fanned);
        assert_eq!(fanned[41], (41, 41 * 41));
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn fanned_experiments_match_serial_bitwise() {
        let trace = Trace::paper_online(Dataset::ShareGpt, 2.0, 21);
        let d = Deployment::new(ModelConfig::qwen2_5_32b(), ClusterSpec::intra_node_l20(4));
        let cfg = EngineConfig {
            record_token_trace: false,
            record_utilization: false,
            ..EngineConfig::default()
        };
        let systems = SystemConfig::paper_main();
        let job_list: Vec<ExperimentJob> = systems
            .iter()
            .map(|s| ExperimentJob {
                trace: &trace,
                system: s,
                deployment: &d,
                cfg: &cfg,
                tweak: None,
            })
            .collect();
        let serial = run_experiments(&job_list, 1);
        let fanned = run_experiments(&job_list, 8);
        assert_eq!(serial.len(), fanned.len());
        for (a, b) in serial.iter().zip(&fanned) {
            assert_eq!(a.system, b.system);
            assert_eq!(a.report, b.report, "{}: report diverged under fan-out", a.system);
            assert_eq!(a.end_time_s.to_bits(), b.end_time_s.to_bits());
            assert_eq!(a.sched_iterations, b.sched_iterations);
            assert_eq!(a.preemptions, b.preemptions);
        }
    }
}
