//! Property-based tests of the serving simulation: for arbitrary (bounded)
//! workloads and any scheduling policy, the engine must conserve work and
//! memory — every admissible request finishes with exactly its output
//! length, the KV cache returns to empty, and runs are deterministic.

use gllm_metrics::ServingReport;
use gllm_model::{CostModel, GpuSpec, LinkSpec, ModelConfig, PipelinePartition};
use gllm_sim::engine::{EngineConfig, ExecutionModel, SimEngine};
use gllm_sim::runtime_model::RuntimeModel;
use gllm_sim::SystemConfig;
use gllm_workload::{Request, Trace};
use proptest::prelude::*;

fn exec(stages: usize) -> ExecutionModel {
    let model = ModelConfig::qwen2_5_14b();
    ExecutionModel::Pipeline {
        cost: CostModel::new(model.clone(), GpuSpec::l20_48g()),
        partition: PipelinePartition::even(model.num_layers, stages),
        link: LinkSpec::pcie(),
    }
}

/// An arbitrary bounded trace: up to 24 requests over up to 20 seconds.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0.0f64..20.0, 1usize..600, 1usize..40), 1..24).prop_map(|rows| {
        let mut rows = rows;
        rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        Trace {
            requests: rows
                .into_iter()
                .enumerate()
                .map(|(id, (arrival_s, prompt_len, output_len))| Request {
                    id: id as u64,
                    arrival_s,
                    prompt_len,
                    output_len,
                })
                .collect(),
        }
    })
}

fn policies() -> Vec<SystemConfig> {
    vec![
        SystemConfig::gllm(),
        SystemConfig::vllm(),
        SystemConfig::td_pipe(),
        SystemConfig::orca(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Work conservation: with ample KV, every request finishes with its
    /// exact output length and the cache is returned, for every policy.
    #[test]
    fn every_policy_conserves_work_and_memory(trace in arb_trace(), stages in 1usize..5) {
        for sys in policies() {
            let policy = sys.policy.build();
            let out = SimEngine::new(
                &trace, policy.as_ref(), exec(stages), RuntimeModel::gllm(),
                4096, 16, 1024, &EngineConfig::default(),
            ).run();
            let report = ServingReport::from_recorder(&out.recorder);
            prop_assert_eq!(report.finished_requests, trace.len(), "{} stranded work", sys.name);
            prop_assert_eq!(out.unfinished, 0);
            prop_assert_eq!(out.final_kv_free_rate, 1.0, "{} leaked KV", sys.name);
            let produced: usize =
                out.recorder.timelines().iter().map(|(_, t)| t.output_tokens).sum();
            let expected: usize = trace.requests.iter().map(|r| r.output_len).sum();
            prop_assert_eq!(produced, expected, "{} token count drifted", sys.name);
        }
    }

    /// Under a *tiny* KV cache the engine may preempt and recompute, but
    /// it still must not wedge, leak or abort admissible requests.
    #[test]
    fn tiny_kv_cache_still_drains(
        mut trace in arb_trace(),
        blocks in 8usize..24,
    ) {
        // Keep every request individually admissible.
        let cap = blocks * 16;
        for r in trace.requests.iter_mut() {
            r.prompt_len = r.prompt_len.min(cap / 4).max(1);
            r.output_len = r.output_len.min(cap / 8).max(1);
        }
        let sys = SystemConfig::vllm();
        let policy = sys.policy.build();
        let out = SimEngine::new(
            &trace, policy.as_ref(), exec(2), RuntimeModel::vllm(),
            blocks, 16, 1024, &EngineConfig::default(),
        ).run();
        let report = ServingReport::from_recorder(&out.recorder);
        prop_assert_eq!(report.finished_requests + out.aborted, trace.len());
        prop_assert_eq!(out.unfinished, 0);
        prop_assert_eq!(out.final_kv_free_rate, 1.0);
    }

    /// Determinism: identical inputs give bit-identical results, and CPP
    /// never changes *what* is produced (only when).
    #[test]
    fn runs_are_deterministic_and_cpp_conserves_tokens(trace in arb_trace()) {
        let sys = SystemConfig::gllm();
        let run = |cpp: bool| {
            let policy = sys.policy.build();
            SimEngine::new(
                &trace, policy.as_ref(), exec(4), RuntimeModel::gllm(),
                4096, 16, 1024,
                &EngineConfig { enable_cpp: cpp, ..Default::default() },
            ).run()
        };
        let a = run(false);
        let b = run(false);
        prop_assert_eq!(
            ServingReport::from_recorder(&a.recorder),
            ServingReport::from_recorder(&b.recorder)
        );
        let c = run(true);
        let count = |o: &gllm_sim::engine::SimOutput| -> usize {
            o.recorder.timelines().iter().map(|(_, t)| t.output_tokens).sum()
        };
        prop_assert_eq!(count(&a), count(&c));
        prop_assert_eq!(ServingReport::from_recorder(&c.recorder).finished_requests, trace.len());
    }
}
