//! Offline shim for the `criterion` crate.
//!
//! Keeps the bench harness API (`Criterion`, `BenchmarkGroup`, `Bencher`,
//! `criterion_group!`/`criterion_main!`) but replaces the statistical
//! machinery with a simple calibrated timing loop: warm up briefly,
//! choose an iteration count targeting a fixed measurement window, then
//! report the mean time per iteration on stdout.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement window.
const MEASURE_TARGET: Duration = Duration::from_millis(200);
/// Warm-up budget before calibration.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// How a batched setup routine amortizes its setup cost (shim: ignored,
/// every batch is one iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Fresh state for every call.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// (iterations, elapsed) of the measured window.
    measured: Option<(u64, Duration)>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the iteration count.
        let mut iters_per_window = 1u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_TARGET {
            for _ in 0..iters_per_window {
                std::hint::black_box(routine());
            }
            if iters_per_window < u64::MAX / 2 {
                iters_per_window *= 2;
            }
        }
        let elapsed_warm = warm_start.elapsed();
        let total_warm_iters = iters_per_window.saturating_sub(1).max(1);
        let per_iter = elapsed_warm.as_secs_f64() / total_warm_iters as f64;
        let target = (MEASURE_TARGET.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 10_000_000).max(self.sample_size as u64);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.measured = Some((iters, start.elapsed()));
    }

    /// Measure `routine` with per-batch `setup` state excluded from setup
    /// cost amortization decisions (shim: setup is simply untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        // Calibrate roughly: run until the measured time hits the target
        // or we reach a sane iteration cap.
        let cap = 1_000_000u64;
        while total < MEASURE_TARGET && iters < cap {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((iters.max(1), total));
    }
}

fn report(group: Option<&str>, name: &str, measured: Option<(u64, Duration)>) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    match measured {
        Some((iters, elapsed)) if iters > 0 => {
            let per = elapsed.as_secs_f64() / iters as f64;
            let (val, unit) = if per >= 1.0 {
                (per, "s")
            } else if per >= 1e-3 {
                (per * 1e3, "ms")
            } else if per >= 1e-6 {
                (per * 1e6, "µs")
            } else {
                (per * 1e9, "ns")
            };
            println!("{label:<48} {val:>10.3} {unit}/iter  ({iters} iters)");
        }
        _ => println!("{label:<48} (no measurement)"),
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { measured: None, sample_size: self.sample_size };
        f(&mut b);
        report(Some(&self.name), name, b.measured);
        self
    }

    /// Lower bound on measured iterations (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Finish the group (no-op beyond matching upstream's API).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self, sample_size: 1 }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { measured: None, sample_size: 1 };
        f(&mut b);
        report(None, name, b.measured);
        self
    }

    /// Match upstream's builder used by `criterion_group!` configs.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export mirroring upstream's `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_something() {
        let mut b = Bencher { measured: None, sample_size: 1 };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        let (iters, elapsed) = b.measured.expect("measured");
        assert!(iters >= 1);
        assert!(elapsed > Duration::ZERO);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut b = Bencher { measured: None, sample_size: 1 };
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 64]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        let (iters, _) = b.measured.expect("measured");
        assert_eq!(setups, iters);
    }
}
