//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait with range / tuple / `prop_map` / `collection::vec` combinators,
//! deterministic case generation, and the `proptest!` / `prop_assert*`
//! macros. Unlike upstream there is **no shrinking**: a failing case
//! panics with the generated inputs visible in the assertion message, and
//! generation is seeded per test name so failures reproduce exactly.

pub mod test_runner {
    /// Run configuration (`ProptestConfig` upstream).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the shim trims that to keep the
            // seed suite fast while still exploring the input space.
            Self { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator, seeded from the test name so
    /// every run of a given test sees the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (rejection sampling; `bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as i64) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Include the upper endpoint occasionally so `..=1.0`
                    // actually exercises the boundary.
                    if rng.below(64) == 0 {
                        return hi;
                    }
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
    );
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of values from `element`, with `len` in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test (plain `assert!` — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that runs `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let __strategy = ($($strat,)+);
            for _ in 0..__cfg.cases {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..2_000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
            let n = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec((0u8..10, 0.0f64..1.0), 1..20);
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_multiple_args(xs in crate::collection::vec(0u8..3, 1..50), n in 1usize..5) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            prop_assert!(xs.iter().all(|&x| x < 3));
            prop_assert!(n >= 1 && n < 5);
        }
    }

    proptest! {
        #[test]
        fn macro_defaults_and_mut_patterns(mut v in crate::collection::vec(0u32..100, 1..10)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (1usize..5).prop_map(|n| n * 2);
        let mut rng = crate::test_runner::TestRng::from_name("map");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.is_multiple_of(2) && (2..10).contains(&v));
        }
    }
}
