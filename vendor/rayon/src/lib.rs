//! Offline shim for the `rayon` crate.
//!
//! `par_iter()` / `par_iter_mut()` return the corresponding **sequential**
//! std slice iterators, so every downstream adaptor (`zip`, `map`,
//! `enumerate`, `collect`, `for_each`, …) is just the std `Iterator`
//! machinery. Results are identical to parallel execution for the
//! data-parallel element-wise loops this workspace runs; there is simply
//! no thread pool in this offline environment.

pub mod prelude {
    /// `&collection → par_iter()` (sequential in this shim).
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Iterate shared references "in parallel".
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// `&mut collection → par_iter_mut()` (sequential in this shim).
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Iterate exclusive references "in parallel".
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn zip_across_par_iters() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let s: i32 = a.par_iter().zip(b.par_iter()).map(|(x, y)| x * y).sum();
        assert_eq!(s, 10 + 40 + 90);
    }
}
