//! Offline shim for the `crossbeam` crate: MPMC channels
//! (`channel::unbounded`) built on `Mutex` + `Condvar`, plus a
//! polling-based [`select!`] macro covering the `recv(..) -> ..` /
//! `default(timeout)` arm shapes this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    // Re-export so `crossbeam::channel::select!` resolves like upstream.
    pub use crate::select;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like upstream.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel empty right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Send, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            let none_left = st.senders == 0;
            drop(st);
            if none_left {
                self.shared.ready.notify_all();
            }
        }
    }

    /// The receiving half; cloneable (MPMC — each message goes to one
    /// receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Block up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").receivers += 1;
            Self { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

/// Polling-based `select!`: tries each `recv` arm in order; a message or
/// a disconnection makes an arm ready. With no ready arm it parks briefly
/// and retries, firing the `default(timeout)` arm when the timeout
/// elapses. Semantics match upstream closely enough for multiplexing
/// loops; fairness is by arm order rather than random.
#[macro_export]
macro_rules! select {
    (
        $(recv($rx:expr) -> $res:pat => $body:expr,)+
        default($timeout:expr) => $dbody:expr $(,)?
    ) => {{
        let __deadline = ::std::time::Instant::now() + $timeout;
        'select: loop {
            $(
                // One match ties the Ok type to the receiver so the
                // disconnected arm's Result infers without annotations.
                let __polled = match ($rx).try_recv() {
                    Ok(__v) => ::std::option::Option::Some(
                        ::std::result::Result::Ok(__v),
                    ),
                    Err($crate::channel::TryRecvError::Disconnected) => {
                        ::std::option::Option::Some(::std::result::Result::Err(
                            $crate::channel::RecvError,
                        ))
                    }
                    Err($crate::channel::TryRecvError::Empty) => {
                        ::std::option::Option::None
                    }
                };
                if let ::std::option::Option::Some(__r) = __polled {
                    let $res = __r;
                    $body;
                    break 'select;
                }
            )+
            if ::std::time::Instant::now() >= __deadline {
                $dbody;
                break 'select;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(100));
        }
    }};
    (
        $(recv($rx:expr) -> $res:pat => $body:expr),+ $(,)?
    ) => {{
        'select: loop {
            $(
                let __polled = match ($rx).try_recv() {
                    Ok(__v) => ::std::option::Option::Some(
                        ::std::result::Result::Ok(__v),
                    ),
                    Err($crate::channel::TryRecvError::Disconnected) => {
                        ::std::option::Option::Some(::std::result::Result::Err(
                            $crate::channel::RecvError,
                        ))
                    }
                    Err($crate::channel::TryRecvError::Empty) => {
                        ::std::option::Option::None
                    }
                };
                if let ::std::option::Option::Some(__r) = __polled {
                    let $res = __r;
                    $body;
                    break 'select;
                }
            )+
            ::std::thread::sleep(::std::time::Duration::from_micros(100));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn drop_of_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_prefers_ready_arm_and_falls_to_default() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        let mut hit = 0;
        tx_a.send(5).unwrap();
        crate::select! {
            recv(rx_a) -> msg => { assert_eq!(msg, Ok(5)); hit = 1; },
            recv(rx_b) -> _msg => { hit = 2; },
            default(Duration::from_millis(1)) => { hit = 3; },
        }
        assert_eq!(hit, 1);
        crate::select! {
            recv(rx_a) -> _msg => { hit = 1; },
            recv(rx_b) -> _msg => { hit = 2; },
            default(Duration::from_millis(1)) => { hit = 3; },
        }
        assert_eq!(hit, 3);
    }

    #[test]
    fn select_sees_disconnection_as_ready() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        let mut disconnected = false;
        crate::select! {
            recv(rx) -> msg => { disconnected = msg.is_err(); },
            default(Duration::from_millis(50)) => { },
        }
        assert!(disconnected);
    }
}
